#!/usr/bin/env python3
"""Deep dive: the resolution model on a missing-soname migration.

Migrates an MVAPICH2 1.2 binary from Ranger to India, where the MVAPICH2
1.7 series renamed ``libmpich`` -- the binary's library is simply absent.
Walks through what FEAM does about it: the bundle's library records, the
recursive copy-usability decisions, the staged files, and the generated
activation script.

Run:  python examples/resolve_missing_libraries.py
"""

from repro.core import Feam
from repro.sites import build_paper_sites
from repro.toolchain.compilers import Language


def main() -> None:
    sites = {s.name: s for s in build_paper_sites(cached=False)}
    ranger, india = sites["ranger"], sites["india"]

    stack = ranger.find_stack("mvapich2-1.2-gnu")
    app = ranger.compile_mpi_program("mvapp", Language.C, stack,
                                     payload_size=400_000)
    ranger.machine.fs.write("/home/user/mvapp", app.image, mode=0o755)
    print(f"built mvapp at ranger with {stack.spec}")
    print(f"linked against: {', '.join(app.needed)}\n")

    feam = Feam()
    bundle = feam.run_source_phase(ranger, "/home/user/mvapp",
                                   env=ranger.env_with_stack(stack))
    print("source-phase bundle:")
    for record in bundle.libraries:
        status = "copied" if record.copied else "described only"
        glibc = (f", needs GLIBC_{record.required_glibc}"
                 if record.required_glibc else "")
        print(f"  {record.soname:<22} {status}{glibc}")
    print(f"  total: {bundle.copy_bytes / 1e6:.1f} MB\n")

    india.machine.fs.write("/home/user/mvapp", app.image, mode=0o755)

    basic = feam.run_target_phase(india, binary_path="/home/user/mvapp",
                                  staging_tag="mv-basic")
    print(f"basic prediction (no bundle): "
          f"{'READY' if basic.ready else 'NOT READY'}")
    print(f"  missing: {', '.join(basic.prediction.missing_libraries)}\n")

    extended = feam.run_target_phase(india, binary_path="/home/user/mvapp",
                                     bundle=bundle, staging_tag="mv-ext")
    print(f"extended prediction (with bundle): "
          f"{'READY' if extended.ready else 'NOT READY'}")
    if extended.resolution is not None:
        print("resolution decisions:")
        for decision in extended.resolution.decisions:
            verdict = "stage copy" if decision.usable else "UNRESOLVABLE"
            print(f"  {decision.soname:<22} {verdict}: {decision.reason}")
        staged_dir = extended.resolution.staging_dir
        print(f"\nstaged files under {staged_dir}:")
        if india.machine.fs.is_dir(staged_dir):
            for name in india.machine.fs.listdir(staged_dir):
                size = india.machine.fs.size(f"{staged_dir}/{name}")
                print(f"  {name} ({size / 1e6:.1f} MB)")
        print("\nactivation script handed to the user:")
        print(extended.resolution.activation_script())

    if extended.ready:
        run_stack = india.stack_by_prefix(extended.selected_stack_prefix)
        result = india.run_with_retries("mvapp", app.image, run_stack,
                                        env=extended.run_environment)
        print(f"actual execution with staged copies: "
              f"{'SUCCESS' if result.ok else f'FAILED ({result.failure})'}")


if __name__ == "__main__":
    main()
