#!/usr/bin/env python3
"""Tour of the emulated Unix tools over a simulated binary.

Compiles an MPI application at a simulated site and prints what each of
FEAM's information sources sees: ``objdump -p``, ``readelf -d``,
``readelf -V``, ``readelf -p .comment``, ``nm -D``, ``ldd`` (with and
without the MPI stack loaded), ``ldd -r``, and ``ldconfig -p``.

Everything shown is parsed from genuine ELF bytes in the site's virtual
filesystem.  Run:  python examples/inspect_with_tools.py
"""

from repro.elf.render import (
    render_objdump_private,
    render_readelf_comment,
    render_readelf_dynamic,
    render_readelf_versions,
)
from repro.sites import build_paper_sites
from repro.sysmodel.ldconfig import read_cache, render_ldconfig_p
from repro.toolchain.compilers import Language


def banner(title: str) -> None:
    print(f"\n$ {title}")
    print("-" * (len(title) + 2))


def main() -> None:
    india = next(s for s in build_paper_sites(cached=False)
                 if s.name == "india")
    stack = india.find_stack("mvapich2-1.7a2-intel")
    app = india.compile_mpi_program(
        "wavesolver", Language.FORTRAN, stack,
        glibc_ceiling=(2, 4), payload_size=250_000)
    india.machine.fs.write("/home/user/wavesolver", app.image, mode=0o755)
    toolbox = india.toolbox()
    elf = india.machine.read_elf("/home/user/wavesolver")

    banner("objdump -p wavesolver")
    print(render_objdump_private(elf, "wavesolver"))

    banner("readelf -d wavesolver")
    print(render_readelf_dynamic(elf))

    banner("readelf -V wavesolver")
    print(render_readelf_versions(elf))

    banner("readelf -p .comment wavesolver")
    print(render_readelf_comment(elf))

    banner("nm -D wavesolver")
    print(toolbox.nm_render("/home/user/wavesolver"))

    banner("ldd wavesolver            # login environment, no stack loaded")
    print(toolbox.ldd("/home/user/wavesolver").render())

    banner("module load mvapich2/1.7a2-intel; ldd wavesolver")
    env = india.env_with_stack(stack)
    print(toolbox.ldd("/home/user/wavesolver", env).render())

    banner("ldd -r wavesolver         # symbol-level check")
    result, missing = toolbox.ldd_r("/home/user/wavesolver", env)
    print(f"{len(result.entries)} libraries resolved, "
          f"{len(missing)} undefined symbols")

    banner("ldconfig -p | head")
    entries = read_cache(india.machine.fs)
    print("\n".join(render_ldconfig_p(entries).splitlines()[:10]))


if __name__ == "__main__":
    main()
