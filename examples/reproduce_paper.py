#!/usr/bin/env python3
"""Reproduce the paper's full evaluation (Section VI).

Builds the five Table II sites, compiles the 110 NPB + 147 SPEC MPI2007
test binaries, migrates each to every site with a matching MPI
implementation, forms basic and extended predictions, executes with the
paper's five-retry methodology, applies resolution, and prints Tables
III and IV plus the in-text measurements -- measured values next to the
published ones.

Takes about half a minute.  Run:  python examples/reproduce_paper.py
"""

import time

from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.tables import (
    render_intext,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


def main() -> None:
    print(render_table1())
    print(render_table2())

    print("running the evaluation (compile matrix + migrations)...\n")
    start = time.time()
    result = run_experiment(ExperimentConfig(), progress=True)
    print(f"\n{len(result.corpus.binaries)} binaries, "
          f"{len(result.records)} migrations evaluated "
          f"in {time.time() - start:.0f} s (wall)\n")

    print(render_table3(result))
    print()
    print(render_table4(result))
    print()
    print(render_intext(result))


if __name__ == "__main__":
    main()
