#!/usr/bin/env python3
"""Describe a real binary on this machine with FEAM's BDC.

Runs the Binary Description Component against an actual ELF binary on the
host (default ``/bin/ls``), prints the paper's Figure 3 information, then
resolves the binary's dependencies with our own dynamic-loader model over
the real filesystem and cross-checks the result against the system's real
``ldd``.

Run:  python examples/describe_host_binary.py [path-to-binary]
"""

import shutil
import subprocess
import sys

from repro.core.description import BinaryDescriptionComponent
from repro.host import host_machine, host_toolbox


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "/bin/ls"
    toolbox = host_toolbox()
    machine = toolbox.machine

    print(f"host: {machine.hostname} ({machine.arch}, "
          f"{machine.distro.family} {machine.distro.version})\n")

    bdc = BinaryDescriptionComponent(toolbox)
    try:
        description = bdc.describe(path)
    except Exception as exc:
        print(f"cannot describe {path}: {exc}")
        return 1

    print(f"binary description of {path} (Figure 3 information):")
    print(f"  format:         {description.file_format} "
          f"({description.isa_name}, {description.bits}-bit)")
    print(f"  dynamic:        {description.is_dynamic}")
    print(f"  required glibc: {description.required_glibc}")
    print(f"  mpi impl:       {description.mpi_implementation or '(not an MPI binary)'}")
    print(f"  toolchain:      {description.build_compiler_hint or '(no .comment)'}")
    print("  needed:")
    for soname in description.needed:
        print(f"    {soname}")

    # Resolve with OUR loader model against the real filesystem.
    print("\nresolution by our ld.so model (real filesystem):")
    report = machine.loader.resolve(machine.fs.read(path), machine.env,
                                    origin=path)
    for entry in report.entries:
        print(f"  {entry.soname:<28} => {entry.path or 'NOT FOUND'}")
    for error in report.version_errors:
        print(f"  version error: {error.message()}")
    print(f"  verdict: {'loads' if report.ok else 'WILL NOT LOAD'}")

    # Cross-check against the real ldd.
    if shutil.which("ldd"):
        out = subprocess.run(["ldd", path], capture_output=True,
                             text=True).stdout
        real_missing = [line.split("=>")[0].strip()
                        for line in out.splitlines() if "not found" in line]
        ours_missing = report.missing_sonames
        agree = set(real_missing) == set(ours_missing)
        print(f"\nreal ldd reports {len(real_missing)} missing; "
              f"our model reports {len(ours_missing)} missing "
              f"-> {'AGREE' if agree else 'DISAGREE'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
