#!/usr/bin/env python3
"""Quickstart: predict whether a binary will run at another site.

Builds an MPI Fortran application at UVa's Fir cluster, migrates it to
XSEDE Ranger, and runs both FEAM phases: the source phase at the
guaranteed execution environment (Fir, where the binary runs), and the
target phase at Ranger.  Prints FEAM's verdict, the per-determinant
detail, and -- when FEAM says "ready" -- actually executes the binary in
the environment FEAM composed.

Run:  python examples/quickstart.py
"""

from repro.core import Feam
from repro.sites import build_paper_sites
from repro.toolchain.compilers import Language


def main() -> None:
    print("building the five Table II sites...")
    sites = {s.name: s for s in build_paper_sites(cached=False)}
    fir, ranger = sites["fir"], sites["ranger"]

    # A scientist compiles their application at Fir with Open MPI + Intel.
    stack = fir.find_stack("openmpi-1.4-intel")
    app = fir.compile_mpi_program(
        "mysolver", Language.FORTRAN, stack,
        glibc_ceiling=(2, 3), payload_size=800_000)
    fir.machine.fs.write("/home/user/mysolver", app.image, mode=0o755)
    print(f"compiled mysolver at fir with {stack.spec} "
          f"({app.size / 1e6:.1f} MB)")

    feam = Feam()

    # Source phase at the guaranteed execution environment.
    bundle = feam.run_source_phase(
        fir, "/home/user/mysolver", env=fir.env_with_stack(stack))
    print(f"source phase: described {len(bundle.libraries)} libraries, "
          f"copied {bundle.copied_count} "
          f"({bundle.copy_bytes / 1e6:.1f} MB bundle)")

    # Migrate the binary and the bundle to Ranger; run the target phase.
    ranger.machine.fs.write("/home/user/mysolver", app.image, mode=0o755)
    report = feam.run_target_phase(
        ranger, binary_path="/home/user/mysolver", bundle=bundle,
        staging_tag="quickstart")

    print()
    print(ranger.machine.fs.read_text(report.output_path))

    if report.ready:
        stack_at_ranger = ranger.stack_by_prefix(
            report.selected_stack_prefix)
        result = ranger.run_with_retries(
            "mysolver", app.image, stack_at_ranger,
            env=report.run_environment)
        print(f"actual execution at ranger: "
              f"{'SUCCESS' if result.ok else f'FAILED ({result.failure})'}")
    else:
        print("FEAM predicts the binary is not ready at ranger; "
              "see the reasons above.")


if __name__ == "__main__":
    main()
