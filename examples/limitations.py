#!/usr/bin/env python3
"""Where FEAM's prediction model is blind -- demonstrated live.

The paper reports >90% accuracy; this example shows the three mechanisms
behind the remaining errors, each reproduced end-to-end:

1. **System errors** -- daemon spawn failures and time-outs strike after
   every determinant passed (the paper's own stated limitation).
2. **Compute-node divergence** -- FEAM's discovery runs on the login
   node; when compute images have drifted, "ready" binaries still die.
3. **Static binaries** -- with no DT_NEEDED entries, Table I's
   identification cannot see the MPI implementation at all.

Run:  python examples/limitations.py
"""

from repro.core import Feam
from repro.mpi.implementations import open_mpi
from repro.mpi.stack import Interconnect
from repro.sites.scheduler import SchedulerFlavor
from repro.sites.site import Site, SiteSpec, StackRequest
from repro.sysmodel.distro import CENTOS_5_6
from repro.toolchain.compilers import CompilerFamily, Language, RuntimeDep


def make_site(name, **overrides) -> Site:
    spec = dict(
        name=name, display_name=name, organization="demo",
        site_type="Cluster", cores=128, arch="x86_64",
        distro=CENTOS_5_6, libc_version="2.5",
        system_gnu_version="4.1.2", vendor_compilers=(),
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),),
        interconnect=Interconnect.INFINIBAND,
        module_system="modules", scheduler_flavor=SchedulerFlavor.PBS)
    spec.update(overrides)
    return Site(SiteSpec(**spec), seed=777)


def main() -> None:
    feam = Feam()
    donor = make_site("donor")
    stack = donor.find_stack("openmpi-1.4-gnu")

    print("=" * 68)
    print("1. system errors strike after a correct READY verdict")
    print("=" * 68)
    target = make_site("flaky-target")
    app = donor.compile_mpi_program("app-sys", Language.C, stack)
    target.machine.fs.write("/home/user/app-sys", app.image, mode=0o755)
    report = feam.run_target_phase(target, binary_path="/home/user/app-sys",
                                   staging_tag="sys")
    print(f"FEAM verdict: {'READY' if report.ready else 'NOT READY'} "
          f"(every determinant passed)")
    run_stack = target.stack_by_prefix(report.selected_stack_prefix)
    result = target.run_with_retries(
        "app-sys", app.image, run_stack,
        env=report.run_environment,
        curse_probability=1.0)  # force the unlucky pair
    print(f"actual outcome: {result.failure}")
    print("-> unpredictable by design; the paper: 'Our model was unable "
          "to\n   predict failures due to system errors'\n")

    print("=" * 68)
    print("2. compute-node divergence defeats login-node discovery")
    print("=" * 68)
    diverged = make_site(
        "diverged",
        compute_node_missing=("/usr/lib64/libz.so.1",
                              "/usr/lib64/libz.so.1.2.3"))
    app2 = donor.compile_mpi_program(
        "app-z", Language.C, stack, extra_deps=(RuntimeDep("libz.so.1"),))
    diverged.machine.fs.write("/home/user/app-z", app2.image, mode=0o755)
    report2 = feam.run_target_phase(diverged, binary_path="/home/user/app-z",
                                    staging_tag="div")
    print(f"FEAM verdict: {'READY' if report2.ready else 'NOT READY'} "
          f"(libz.so.1 is present on the login node)")
    run_stack2 = diverged.stack_by_prefix(report2.selected_stack_prefix)
    result2 = diverged.run_with_retries(
        "app-z", app2.image, run_stack2, env=report2.run_environment)
    print(f"actual outcome: {result2.failure}")
    print("-> FEAM has no access to compute-node filesystems\n")

    print("=" * 68)
    print("3. static binaries hide their MPI implementation")
    print("=" * 68)
    static_donor = make_site(
        "static-donor",
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU,
                             static_libs=True),))
    sstack = static_donor.find_stack("openmpi-1.4-gnu")
    app3 = static_donor.compile_mpi_program("app-static", Language.C,
                                            sstack, static=True)
    target3 = make_site("static-target")
    target3.machine.fs.write("/home/user/app-static", app3.image,
                             mode=0o755)
    report3 = feam.run_target_phase(
        target3, binary_path="/home/user/app-static", staging_tag="st")
    print(f"FEAM verdict: {'READY' if report3.ready else 'NOT READY'}")
    print(f"identified MPI implementation: "
          f"{report3.prediction.selected_stack or '(none -- no NEEDED entries)'}")
    print("-> Table I's identification reads link-level dependencies; a\n"
          "   static binary has none, so no stack is tested or selected")


if __name__ == "__main__":
    main()
