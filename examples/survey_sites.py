#!/usr/bin/env python3
"""Survey every site for a community binary.

The paper's motivating scenario: a scientist receives a community code as
a binary (no recompilation possible) and wants quick access to whichever
computing site can run it.  FEAM surveys all five paper sites and prints
a readiness matrix -- basic prediction (binary only) next to extended
prediction (with the source-phase bundle) -- plus actual execution as
ground truth.

Run:  python examples/survey_sites.py
"""

from repro.core import Feam
from repro.sites import build_paper_sites
from repro.toolchain.compilers import Language


def main() -> None:
    sites = {s.name: s for s in build_paper_sites(cached=False)}
    home = sites["india"]

    # The community code: MVAPICH2 + GNU Fortran, built at India.
    stack = home.find_stack("mvapich2-1.7a2-gnu")
    app = home.compile_mpi_program(
        "communitycode", Language.FORTRAN, stack,
        glibc_ceiling=(2, 4), payload_size=1_500_000)
    home.machine.fs.write("/home/user/communitycode", app.image, mode=0o755)
    print(f"community binary built at india with {stack.spec}\n")

    feam = Feam()
    bundle = feam.run_source_phase(
        home, "/home/user/communitycode", env=home.env_with_stack(stack))

    header = (f"{'site':<12}{'basic':>8}{'extended':>10}{'actual':>9}"
              f"  notes")
    print(header)
    print("-" * len(header))
    for name, target in sites.items():
        if name == home.name:
            print(f"{name:<12}{'--':>8}{'--':>10}{'home':>9}  "
                  f"guaranteed execution environment")
            continue
        matching = target.stacks_of_kind(stack.spec.kind)
        if not matching:
            print(f"{name:<12}{'--':>8}{'--':>10}{'--':>9}  "
                  f"no {stack.spec.kind.value} implementation")
            continue
        target.machine.fs.write("/home/user/communitycode", app.image,
                                mode=0o755)
        basic = feam.run_target_phase(
            target, binary_path="/home/user/communitycode",
            staging_tag="survey-basic")
        extended = feam.run_target_phase(
            target, binary_path="/home/user/communitycode", bundle=bundle,
            staging_tag="survey-ext")
        # Ground truth with FEAM's configuration (or the naive stack).
        if extended.selected_stack_prefix is not None:
            run_stack = target.stack_by_prefix(
                extended.selected_stack_prefix)
            env = (extended.run_environment
                   or target.env_with_stack(run_stack))
        else:
            run_stack, env = matching[0], None
        actual = target.run_with_retries(
            "communitycode", app.image, run_stack, env=env)
        note = "; ".join(extended.prediction.reasons) or "ready"
        print(f"{name:<12}"
              f"{'ready' if basic.ready else 'no':>8}"
              f"{'ready' if extended.ready else 'no':>10}"
              f"{'ok' if actual.ok else 'fail':>9}  {note[:60]}")

    print()
    print("extended predictions use the source-phase bundle: missing "
          "libraries are\nresolved by staging copies, and hello-world "
          "probes expose ABI mismatches\nbefore any real job is queued.")


if __name__ == "__main__":
    main()
