#!/usr/bin/env python3
"""Define your own computing site and predict readiness there.

The catalog's five sites reproduce the paper, but the public API lets a
downstream user describe any site: this example builds a hypothetical
new cluster ("cedar": RHEL 6, glibc 2.12, Open MPI 1.4 + MPICH2 1.4,
Environment Modules, SLURM) and checks which of three differently built
binaries FEAM predicts will run there.

Run:  python examples/custom_site.py
"""

from repro.core import Feam
from repro.mpi.implementations import mpich2, open_mpi
from repro.mpi.stack import Interconnect
from repro.sites import build_paper_sites
from repro.sites.scheduler import SchedulerFlavor
from repro.sites.site import Site, SiteSpec, StackRequest
from repro.sysmodel.distro import RHEL_6_1
from repro.toolchain.compilers import CompilerFamily, Language, intel


def build_cedar() -> Site:
    spec = SiteSpec(
        name="cedar",
        display_name="Cedar (custom)",
        organization="Example University",
        site_type="Cluster",
        cores=2_048,
        arch="x86_64",
        distro=RHEL_6_1,
        libc_version="2.12",
        system_gnu_version="4.4.5",
        vendor_compilers=(intel("12.0"),),
        stacks=(
            StackRequest(open_mpi("1.4"), CompilerFamily.GNU),
            StackRequest(open_mpi("1.4"), CompilerFamily.INTEL),
            StackRequest(mpich2("1.4"), CompilerFamily.GNU),
        ),
        interconnect=Interconnect.INFINIBAND,
        module_system="modules",
        scheduler_flavor=SchedulerFlavor.SLURM,
    )
    return Site(spec, seed=2026)


def main() -> None:
    cedar = build_cedar()
    print(f"built {cedar.spec.display_name}: "
          f"{len(cedar.stacks)} MPI stacks, glibc "
          f"{cedar.libc.version_string}, "
          f"{cedar.scheduler.flavor.value} scheduler")
    print("the user supplies the submission script format "
          "(FEAM's only required site input):")
    print(cedar.scheduler.parallel_template())

    donors = {s.name: s for s in build_paper_sites(cached=False)}
    feam = Feam()

    candidates = [
        ("india", "openmpi-1.4-gnu", Language.FORTRAN, (2, 3)),
        ("ranger", "mvapich2-1.2-intel", Language.C, (2, 3)),
        ("fir", "mpich2-1.3-intel", Language.C, (2, 4)),
    ]
    for source_name, stack_slug, language, ceiling in candidates:
        source = donors[source_name]
        try:
            stack = source.find_stack(stack_slug)
        except KeyError:
            print(f"\n{source_name} has no {stack_slug}; skipping")
            continue
        name = f"app-{stack_slug}"
        app = source.compile_mpi_program(name, language, stack,
                                         glibc_ceiling=ceiling)
        path = f"/home/user/{name}"
        source.machine.fs.write(path, app.image, mode=0o755)
        bundle = feam.run_source_phase(source, path,
                                       env=source.env_with_stack(stack))
        cedar.machine.fs.write(path, app.image, mode=0o755)
        report = feam.run_target_phase(cedar, binary_path=path,
                                       bundle=bundle, staging_tag=name)
        verdict = "READY" if report.ready else "NOT READY"
        reasons = "; ".join(report.prediction.reasons) or "-"
        print(f"\n{name} (built at {source_name}): {verdict}")
        print(f"  reasons: {reasons}")
        if report.prediction.selected_stack is not None:
            print(f"  selected stack: "
                  f"{report.prediction.selected_stack.label}")


if __name__ == "__main__":
    main()
