# Convenience targets for the FEAM reproduction.

PYTHON ?= python3

.PHONY: install test ci bench tables report examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

tables:
	$(PYTHON) -m repro all

report:
	$(PYTHON) -m repro report

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
