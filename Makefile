# Convenience targets for the FEAM reproduction.

PYTHON ?= python3

.PHONY: install test ci bench bench-matrix perf-gate fleet-gate \
	telemetry-gate history-gate alert-gate persist-gate chaos serve \
	slo trace tables report examples clean

# Run-ledger directory used by the history gate (wiped per run).
HISTORY_LEDGER ?= .ci-runs
# Sim ratios are deterministic per seed: two identical matrix runs
# compare at exactly x1.00, and the flaky chaos profile at seed 7 with
# 2 binaries lands at x1.06, so 1.03 separates them with margin on
# both sides.  Wall-clock rows never gate (see repro.obs.compare.gate).
HISTORY_FAIL_ABOVE ?= 1.03

# Wall-time budget (seconds) for the 1,000-site fleet evaluation.
FLEET_BUDGET ?= 60

# Persistent-cache directory used by the persist gate (wiped per run).
PERSIST_CACHE ?= .ci-persist-cache

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

ci:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-matrix:
	PYTHONPATH=src $(PYTHON) benchmarks/emit_bench.py BENCH_matrix.json \
		benchmarks/BENCH_history.jsonl

perf-gate: bench-matrix
	PYTHONPATH=src $(PYTHON) benchmarks/check_regression.py

fleet-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/emit_bench.py \
		--fleet fleet:n=1000,seed=7 --budget-seconds $(FLEET_BUDGET) \
		BENCH_fleet.json benchmarks/BENCH_history.jsonl

telemetry-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/telemetry_gate.py \
		--fleet fleet:n=1000,seed=7 --binaries 4

alert-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/alert_gate.py

# Cold fill -> fresh-process warm start (>=90% disk hits, >=5x faster,
# byte-identical grid) -> byte-flipped record quarantined with outcomes
# unchanged -> `feam cache verify` red on corruption, green after
# `feam cache compact`.
persist-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/persist_gate.py \
		--cache-dir $(PERSIST_CACHE)

# Two fresh-process matrix runs must land two ledger entries and
# compare clean; the flaky chaos run must then trip the same gate.
history-gate:
	rm -rf $(HISTORY_LEDGER)
	PYTHONPATH=src $(PYTHON) -m repro feam matrix --seed 7 \
		--binaries 2 --ledger $(HISTORY_LEDGER) > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro feam matrix --seed 7 \
		--binaries 2 --ledger $(HISTORY_LEDGER) > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro feam runs --ledger $(HISTORY_LEDGER)
	PYTHONPATH=src $(PYTHON) -m repro feam compare -2 -1 \
		--ledger $(HISTORY_LEDGER) --fail-above $(HISTORY_FAIL_ABOVE)
	PYTHONPATH=src $(PYTHON) -m repro feam drift --ledger $(HISTORY_LEDGER)
	PYTHONPATH=src $(PYTHON) -m repro feam chaos --profile flaky \
		--seed 7 --binaries 2 --ledger $(HISTORY_LEDGER) > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro feam compare -2 -1 \
		--ledger $(HISTORY_LEDGER) \
		--fail-above $(HISTORY_FAIL_ABOVE); \
	test $$? -eq 3

chaos:
	PYTHONPATH=src $(PYTHON) -m repro feam chaos \
		--profile benchmarks/chaos_flaky.txt --seed 7 \
		--summary-out chaos_summary.json

serve:
	PYTHONPATH=src $(PYTHON) -m repro feam serve

slo:
	PYTHONPATH=src $(PYTHON) -m repro feam slo

trace:
	PYTHONPATH=src $(PYTHON) -m repro feam trace --trace-out trace.jsonl

tables:
	$(PYTHON) -m repro all

report:
	$(PYTHON) -m repro report

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
