"""Deterministic compile-failure rules.

The paper notes that "some benchmarks would not compile with certain MPI
stack combinations" without enumerating them (Section VI.A).  These rules
encode the era-typical failure causes so the compile matrix produces a
test set of the paper's shape:

* NPB 2.4's strict-F77 sources and 2002-era makefiles fail with the
  Intel 12 compiler;
* the old MVAPICH2 1.2 build on Ranger cannot link the large BT/SP
  pseudo-applications;
* PGI cannot build the C benchmarks' GNU-isms (IS) nor the heavily
  templated C++ of 126.lammps, and PGI 7.2 predates the F90 features of
  115.fds4;
* g77 (GNU 3.4 era) cannot compile Fortran-90 sources at all.

Because the paper's exact failure list is unknown, the builder additionally
trims the surviving set down to the published counts (110 NPB / 147 SPEC)
with a seeded, deterministic selection; see
:class:`repro.corpus.builder.CorpusConfig`.
"""

from __future__ import annotations

from typing import Optional

from repro.corpus.benchmarks import Benchmark, Suite
from repro.mpi.implementations import MpiImplementationKind
from repro.mpi.stack import MpiStackSpec
from repro.toolchain.compilers import CompilerFamily, Language


def compile_failure_reason(benchmark: Benchmark,
                           stack: MpiStackSpec) -> Optional[str]:
    """Why this (benchmark, stack) combination fails to compile, or None."""
    compiler = stack.compiler
    # Fortran-90 sources need a real F90 compiler; GNU < 4.0 ships g77.
    if (benchmark.needs_f90
            and compiler.family is CompilerFamily.GNU
            and compiler.version_tuple < (4, 0)):
        return (f"{benchmark} is Fortran 90; g77 ({compiler.version}) "
                f"only supports FORTRAN 77")
    # NPB 2.4 strict-F77 sources break under the Intel 12 front end.
    if (benchmark.suite is Suite.NPB
            and benchmark.language is Language.FORTRAN
            and compiler.family is CompilerFamily.INTEL
            and compiler.version_tuple >= (12,)):
        return (f"NPB 2.4 {benchmark.name.upper()} does not compile with "
                f"Intel {compiler.version} (strict F77 diagnostics)")
    # MVAPICH2 1.2 cannot link the large NPB pseudo-applications.
    if (benchmark.suite is Suite.NPB
            and benchmark.name in ("bt", "sp")
            and stack.kind is MpiImplementationKind.MVAPICH2
            and stack.release.version_tuple < (1, 7)):
        return (f"NPB {benchmark.name.upper()} fails to link against "
                f"MVAPICH2 {stack.release.version} (relocation overflow)")
    if compiler.family is CompilerFamily.PGI:
        # PGI chokes on the GNU-isms in the C sort kernel...
        if benchmark.suite is Suite.NPB and benchmark.name == "is":
            return "NPB IS uses GNU C extensions PGI rejects"
        # ...on heavily templated C++...
        if benchmark.language is Language.CXX:
            return (f"{benchmark} C++ templates are rejected by pgCC "
                    f"{compiler.version}")
        # ...and PGI 7.x predates fds4's Fortran-2003 features.
        if (benchmark.name == "115.fds4"
                and compiler.version_tuple < (10,)):
            return (f"115.fds4 needs F2003 features absent from PGI "
                    f"{compiler.version}")
    return None


def compile_succeeds(benchmark: Benchmark, stack: MpiStackSpec) -> bool:
    """Does this combination compile?"""
    return compile_failure_reason(benchmark, stack) is None
