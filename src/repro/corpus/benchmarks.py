"""The benchmarks of the paper's test set (Section VI.A).

From NPB 2.4: four kernels (IS integer sort, EP embarrassingly parallel,
CG conjugate gradient, MG multi-grid) and three pseudo-applications (BT
block-tridiagonal, SP scalar penta-diagonal, LU lower-upper Gauss-Seidel).

From SPEC MPI2007: 104.milc (quantum chromodynamics, C), 107.leslie3d and
115.fds4 (computational fluid dynamics, Fortran), 122.tachyon (parallel
ray tracing, C), 126.lammps (molecular dynamics, C++), 127.GAPgeofem
(weather/geophysics FEM, Fortran+C) and 129.tera_tf (3D Eulerian
hydrodynamics, Fortran 90).

Each benchmark carries the attributes that matter for migration:

* ``language`` decides the compiler runtime footprint (libgfortran vs
  libstdc++ vs none) and which MPI wrapper libraries are linked;
* ``glibc_ceiling`` is the newest C-library feature level the code uses --
  a binary built on a newer-glibc site references
  ``min(site glibc, ceiling)`` and refuses to load anywhere older;
* ``payload_size`` drives binary and bundle sizes;
* ``needs_f90`` marks Fortran-90 sources that the g77-era GNU 3.4
  toolchain cannot build.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.toolchain.compilers import Language, RuntimeDep


class Suite(enum.Enum):
    """Benchmark suite identity."""

    NPB = "NAS"
    SPEC = "SPEC"

    @property
    def full_name(self) -> str:
        return {"NAS": "NAS Parallel Benchmarks 2.4",
                "SPEC": "SPEC MPI2007"}[self.value]


@dataclasses.dataclass(frozen=True)
class Benchmark:
    """One benchmark application."""

    name: str
    suite: Suite
    language: Language
    description: str
    glibc_ceiling: tuple[int, ...] = (2, 3)
    payload_size: int = 400_000
    extra_deps: tuple[RuntimeDep, ...] = ()
    needs_f90: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.suite.value.lower()}.{self.name}"

    def __str__(self) -> str:
        return self.qualified_name


_F = Language.FORTRAN
_C = Language.C
_CXX = Language.CXX

NPB_BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark("is", Suite.NPB, _C, "integer sort kernel",
              glibc_ceiling=(2, 3), payload_size=140_000),
    Benchmark("ep", Suite.NPB, _F, "embarrassingly parallel kernel",
              glibc_ceiling=(2, 4), payload_size=160_000),
    Benchmark("cg", Suite.NPB, _F, "conjugate gradient kernel",
              glibc_ceiling=(2, 3), payload_size=220_000),
    Benchmark("mg", Suite.NPB, _F, "multi-grid on a sequence of meshes",
              glibc_ceiling=(2, 3), payload_size=260_000),
    Benchmark("bt", Suite.NPB, _F, "block tridiagonal solver",
              glibc_ceiling=(2, 3), payload_size=540_000),
    Benchmark("sp", Suite.NPB, _F, "scalar penta-diagonal solver",
              glibc_ceiling=(2, 3), payload_size=480_000),
    Benchmark("lu", Suite.NPB, _F, "lower-upper Gauss-Seidel solver",
              glibc_ceiling=(2, 4), payload_size=520_000),
)

SPEC_BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark("104.milc", Suite.SPEC, _C, "quantum chromodynamics",
              glibc_ceiling=(2, 4), payload_size=900_000,
              extra_deps=(RuntimeDep("libz.so.1"),)),
    Benchmark("107.leslie3d", Suite.SPEC, _F, "computational fluid dynamics",
              glibc_ceiling=(2, 3, 4), payload_size=700_000, needs_f90=True),
    Benchmark("115.fds4", Suite.SPEC, _F, "fire dynamics CFD",
              glibc_ceiling=(2, 7), payload_size=1_600_000, needs_f90=True),
    Benchmark("122.tachyon", Suite.SPEC, _C, "parallel ray tracing",
              glibc_ceiling=(2, 3), payload_size=480_000),
    Benchmark("126.lammps", Suite.SPEC, _CXX, "molecular dynamics",
              glibc_ceiling=(2, 4), payload_size=2_800_000),
    Benchmark("127.GAPgeofem", Suite.SPEC, _F, "geophysics finite elements",
              glibc_ceiling=(2, 5), payload_size=1_100_000, needs_f90=True),
    Benchmark("129.tera_tf", Suite.SPEC, _F, "3D Eulerian hydrodynamics",
              glibc_ceiling=(2, 7), payload_size=820_000, needs_f90=True),
)

ALL_BENCHMARKS: tuple[Benchmark, ...] = NPB_BENCHMARKS + SPEC_BENCHMARKS


def benchmark(qualified_name: str) -> Benchmark:
    """Look up a benchmark by qualified name, e.g. ``"nas.bt"``."""
    for b in ALL_BENCHMARKS:
        if b.qualified_name == qualified_name:
            return b
    raise KeyError(f"unknown benchmark: {qualified_name!r}")
