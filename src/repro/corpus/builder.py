"""The compile matrix: building the paper's test set.

For every site, every installed MPI stack and every benchmark, the builder
compiles the benchmark natively (through the stack's wrapper, against the
site's C library), validates that the binary runs at its build site (the
paper discarded "binaries [that] would not run at the site where they were
compiled"), installs it into the build site's filesystem, and records its
ground-truth provenance.

Because the paper does not enumerate its build failures beyond the rules
modelled in :mod:`repro.corpus.rules`, the surviving set is finally trimmed
to the published sizes (110 NPB / 147 SPEC) by dropping the combinations
with the highest seeded hash -- deterministic, documented, and disabled by
setting :attr:`CorpusConfig.target_counts` to None.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional

from repro.corpus.benchmarks import (
    ALL_BENCHMARKS,
    Benchmark,
    Suite,
)
from repro.corpus.rules import compile_failure_reason
from repro.mpi.runtime import BuildProvenance
from repro.mpi.stack import MpiStackInstall, MpiStackSpec
from repro.sites.site import Site
from repro.util.hashing import stable_hash

BINDIR_TEMPLATE = "/home/user/benchmarks/{suite}/bin"


@dataclasses.dataclass(frozen=True)
class CorpusConfig:
    """Knobs of the corpus build."""

    seed: int = 20130101
    #: Per-suite probability that a (binary, site) pair persistently fails
    #: with a system error.  SPEC jobs are larger and longer-running, so
    #: they hit daemon/communication time-outs more often -- this is the
    #: unpredictable-failure rate that bounds FEAM's achievable accuracy
    #: (Table III: extended accuracy 99% NAS vs 93% SPEC).
    curse_probability: dict[Suite, float] = dataclasses.field(
        default_factory=lambda: {Suite.NPB: 0.012, Suite.SPEC: 0.06})
    #: Published test-set sizes to trim to (None disables trimming).
    target_counts: Optional[dict[Suite, int]] = dataclasses.field(
        default_factory=lambda: {Suite.NPB: 110, Suite.SPEC: 147})
    #: Attempts for the build-site validation run.
    validation_attempts: int = 3

    def curse_for(self, suite: Suite) -> float:
        return self.curse_probability.get(suite, 0.0)


@dataclasses.dataclass(frozen=True)
class CompiledBinary:
    """One test-set binary with its ground-truth provenance."""

    benchmark: Benchmark
    build_site: str
    stack_slug: str
    stack_spec: MpiStackSpec
    image: bytes
    #: Path where the binary is installed at its build site.
    path: str

    @property
    def binary_id(self) -> str:
        """Unique id: benchmark @ site / stack."""
        return f"{self.benchmark.qualified_name}@{self.build_site}/{self.stack_slug}"

    @property
    def suite(self) -> Suite:
        return self.benchmark.suite

    @property
    def provenance(self) -> BuildProvenance:
        return BuildProvenance(
            stack=self.stack_spec, build_site=self.build_site,
            binary_name=self.binary_id, suite=self.suite.value)

    @property
    def size(self) -> int:
        return len(self.image)


@dataclasses.dataclass
class SkippedCombination:
    """A combination excluded from the test set, with its cause."""

    benchmark: Benchmark
    build_site: str
    stack_slug: str
    stage: str  # "compile" | "local-run" | "trim"
    reason: str


@dataclasses.dataclass
class Corpus:
    """The materialised test set."""

    binaries: list[CompiledBinary]
    skipped: list[SkippedCombination]
    config: CorpusConfig

    def of_suite(self, suite: Suite) -> list[CompiledBinary]:
        return [b for b in self.binaries if b.suite is suite]

    def counts(self) -> dict[Suite, int]:
        return {suite: len(self.of_suite(suite)) for suite in Suite}

    def find(self, binary_id: str) -> CompiledBinary:
        for b in self.binaries:
            if b.binary_id == binary_id:
                return b
        raise KeyError(f"no such binary in corpus: {binary_id!r}")


def _install_path(binary: Benchmark, stack_slug: str) -> str:
    bindir = BINDIR_TEMPLATE.format(suite=binary.suite.value.lower())
    return posixpath.join(bindir, f"{binary.name}.{stack_slug}")


def _compile_one(site: Site, stack: MpiStackInstall,
                 benchmark: Benchmark) -> CompiledBinary:
    linked = site.compile_mpi_program(
        name=benchmark.qualified_name,
        language=benchmark.language,
        stack=stack,
        glibc_ceiling=benchmark.glibc_ceiling,
        payload_size=benchmark.payload_size,
        extra_deps=benchmark.extra_deps)
    path = _install_path(benchmark, stack.spec.slug)
    site.machine.fs.write(path, linked.image, mode=0o755)
    return CompiledBinary(
        benchmark=benchmark, build_site=site.name,
        stack_slug=stack.spec.slug, stack_spec=stack.spec,
        image=linked.image, path=path)


def build_corpus(sites: list[Site],
                 config: Optional[CorpusConfig] = None) -> Corpus:
    """Compile the full matrix and validate binaries at their build sites."""
    cfg = config or CorpusConfig()
    binaries: list[CompiledBinary] = []
    skipped: list[SkippedCombination] = []

    for site in sites:
        for stack in site.stacks:
            for benchmark in ALL_BENCHMARKS:
                reason = compile_failure_reason(benchmark, stack.spec)
                if reason is not None:
                    skipped.append(SkippedCombination(
                        benchmark, site.name, stack.spec.slug,
                        "compile", reason))
                    continue
                compiled = _compile_one(site, stack, benchmark)
                # The paper discarded binaries that would not run at the
                # site where they were compiled.
                result = site.run_with_retries(
                    f"validate:{compiled.binary_id}",
                    compiled.image, stack,
                    provenance=compiled.provenance,
                    curse_probability=cfg.curse_for(benchmark.suite),
                    attempts=cfg.validation_attempts)
                if not result.ok:
                    site.machine.fs.remove(compiled.path)
                    skipped.append(SkippedCombination(
                        benchmark, site.name, stack.spec.slug,
                        "local-run", str(result.failure)))
                    continue
                binaries.append(compiled)

    if cfg.target_counts:
        binaries = _trim(binaries, skipped, cfg, sites)
    return Corpus(binaries=binaries, skipped=skipped, config=cfg)


def _trim(binaries: list[CompiledBinary],
          skipped: list[SkippedCombination],
          cfg: CorpusConfig, sites: list[Site]) -> list[CompiledBinary]:
    """Deterministically drop surplus combinations to the published counts."""
    sites_by_name = {s.name: s for s in sites}
    kept: list[CompiledBinary] = []
    for suite in Suite:
        members = [b for b in binaries if b.suite is suite]
        target = cfg.target_counts.get(suite) if cfg.target_counts else None
        if target is None or len(members) <= target:
            kept.extend(members)
            continue
        members.sort(key=lambda b: stable_hash(cfg.seed, "trim", b.binary_id))
        for dropped in members[target:]:
            sites_by_name[dropped.build_site].machine.fs.remove(dropped.path)
            skipped.append(SkippedCombination(
                dropped.benchmark, dropped.build_site, dropped.stack_slug,
                "trim",
                "dropped to match the published test-set size "
                f"({target} {suite.value} binaries)"))
        kept.extend(members[:target])
    order = {b.binary_id: i for i, b in enumerate(binaries)}
    kept.sort(key=lambda b: order[b.binary_id])
    return kept
