"""Benchmark corpus: the paper's test set.

The evaluation compiled the NAS Parallel Benchmarks (NPB 2.4, MPI
reference implementation) and SPEC MPI2007 with every MPI stack at every
site, discarding combinations that failed to compile or failed to run at
their build site, yielding 110 NPB and 147 SPEC binaries (Section VI.A).

* :mod:`repro.corpus.benchmarks` -- the 7 NPB kernels/pseudo-applications
  and 7 SPEC codes used, with their languages, C-library feature levels
  and link footprints.
* :mod:`repro.corpus.rules` -- the deterministic compile-failure rules
  standing in for the paper's unexplained build failures.
* :mod:`repro.corpus.builder` -- the compile matrix: benchmark x site x
  stack -> installed binaries with ground-truth provenance.
"""

from repro.corpus.benchmarks import (
    Benchmark,
    NPB_BENCHMARKS,
    SPEC_BENCHMARKS,
    Suite,
)
from repro.corpus.builder import CompiledBinary, Corpus, CorpusConfig, build_corpus
from repro.corpus.rules import compile_succeeds, compile_failure_reason

__all__ = [
    "Benchmark",
    "CompiledBinary",
    "Corpus",
    "CorpusConfig",
    "NPB_BENCHMARKS",
    "SPEC_BENCHMARKS",
    "Suite",
    "build_corpus",
    "compile_failure_reason",
    "compile_succeeds",
]
