"""Content-addressed byte interning.

Source-phase bundles carry copies of multi-megabyte shared libraries, and
most binaries built at a site share the same libraries.  Interning by
SHA-256 makes every equal copy one Python ``bytes`` object, which keeps a
full-corpus experiment (hundreds of bundles) within a few hundred MB.
"""

from __future__ import annotations

import hashlib


class BlobStore:
    """A content-addressed store of immutable byte strings."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def intern(self, data: bytes) -> bytes:
        """Return the canonical object for *data*."""
        key = hashlib.sha256(data).hexdigest()
        existing = self._blobs.get(key)
        if existing is not None:
            return existing
        self._blobs[key] = data
        return data

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())


#: Process-wide store used by the BDC's copy gathering.
GLOBAL_BLOBS = BlobStore()


def intern_bytes(data: bytes) -> bytes:
    """Intern *data* in the global store."""
    return GLOBAL_BLOBS.intern(data)
