"""Shared utilities: stable hashing and deterministic random draws."""

from repro.util.hashing import stable_hash, stable_uniform

__all__ = ["stable_hash", "stable_uniform"]
