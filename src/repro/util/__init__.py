"""Shared utilities: stable hashing, deterministic draws, JSONL I/O."""

from repro.util.hashing import stable_hash, stable_uniform
from repro.util.jsonl import JsonlAppender, read_jsonl, write_jsonl

__all__ = ["stable_hash", "stable_uniform",
           "JsonlAppender", "read_jsonl", "write_jsonl"]
