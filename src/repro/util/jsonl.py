"""Shared JSONL plumbing: torn-tail-tolerant reads, flushed appends.

Three subsystems grew the same idiom independently -- the matrix
journal (:class:`repro.core.resilience.MatrixJournal`), the wide-event
sink (:class:`repro.obs.wide.WideEventSink`) and now the run ledger
(:mod:`repro.obs.ledger`): append one JSON object per line, flush per
line so a killed process loses at most the in-flight record, and on
read tolerate a torn final line (the kill may have landed mid-write).
This module is the single home for that idiom.

* :func:`dump_line` -- the canonical serialisation (sorted keys, one
  line) every producer uses, so byte-identical records stay
  byte-identical on disk.
* :func:`parse_jsonl` / :func:`read_jsonl` -- decode JSONL back into
  records, skipping undecodable or non-object lines unless *strict*.
  An optional *check* callback vets each decoded record (e.g. the wide
  reader's refuse-newer-schema rule) and may raise ``ValueError`` or
  return ``False`` to skip the record.
* :func:`write_jsonl` -- whole-file rewrite (used by readers that
  compact, e.g. the ledger's oldest-run eviction).
* :func:`write_jsonl_atomic` -- the same rewrite via a temporary file
  and ``os.replace``, so a reader (or a kill) mid-rewrite sees either
  the old segment or the new one, never a half-written file.
* :func:`cap_jsonl` -- the shared size-cap/compaction step: rewrite a
  stream in place keeping the newest records under a count and/or byte
  cap, oldest evicted first, with a counter hook for the eviction
  tally.  Both the run ledger's oldest-run eviction and the persistent
  cache's segment compaction are this one helper.
* :class:`JsonlAppender` -- the thread-safe append-mode writer:
  open-append, write + flush per record, count what was written.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Iterable, Optional

#: Signature of the per-record vet hook: ``check(lineno, record)`` may
#: raise ``ValueError`` (always fatal) or return False to skip.
CheckFn = Callable[[int, dict], Optional[bool]]


def dump_line(record: dict) -> str:
    """One record as its canonical JSONL line (no trailing newline)."""
    return json.dumps(record, sort_keys=True)


def parse_jsonl(text: str, strict: bool = False,
                check: Optional[CheckFn] = None,
                label: str = "JSONL") -> list[dict]:
    """Decode JSONL *text* into records, tolerating a torn tail.

    Undecodable lines and non-object lines are skipped (the torn tail
    of a killed run) unless *strict*, in which case they raise
    ``ValueError`` naming the line.  *check* sees every decoded record
    and may raise ``ValueError`` (fatal regardless of *strict*) or
    return ``False`` to drop the record; *label* names the stream in
    error messages (``"wide-event line 3: invalid JSON"``).
    """
    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if strict:
                raise ValueError(f"{label} line {lineno}: invalid JSON")
            continue  # torn tail of a killed run
        if not isinstance(record, dict):
            if strict:
                raise ValueError(f"{label} line {lineno}: not an object")
            continue
        if check is not None and check(lineno, record) is False:
            continue
        records.append(record)
    return records


def read_jsonl(path: str, strict: bool = False,
               check: Optional[CheckFn] = None,
               label: str = "JSONL") -> list[dict]:
    """Load a JSONL file (torn-tail tolerant; see :func:`parse_jsonl`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read(), strict=strict, check=check,
                           label=label)


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Rewrite *path* with *records* as JSONL; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(dump_line(record) + "\n")
            count += 1
    return count


def write_jsonl_atomic(path: str, records: Iterable[dict]) -> int:
    """Rewrite *path* with *records* via temp-file + atomic rename.

    A reader that races the rewrite (or a kill that lands mid-write)
    sees either the complete old file or the complete new one.  The
    temporary file lives next to *path* so ``os.replace`` never
    crosses a filesystem boundary.
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    count = 0
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(dump_line(record) + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
    return count


def cap_jsonl(path: str, records: list, *,
              max_records: Optional[int] = None,
              max_bytes: Optional[int] = None,
              counter: Optional[str] = None,
              always_rewrite: bool = False) -> int:
    """Size-cap a JSONL stream in place, oldest records evicted first.

    *records* is the stream's current content, oldest first (usually
    from :func:`read_jsonl`).  The newest records that fit under
    *max_records* and/or *max_bytes* (serialized line bytes including
    newlines) survive; the rest are evicted and counted on the obs
    counter named by *counter* (a no-op when no collector is
    installed).  The file is only rewritten when something was evicted
    -- the common under-cap append stays a single flushed write --
    unless *always_rewrite* forces the rewrite (compaction passes use
    this to drop superseded or corrupt lines even when the cap holds).
    Rewrites are atomic (:func:`write_jsonl_atomic`).  Returns how
    many records were evicted.
    """
    survivors = list(records)
    evicted = 0
    if max_records is not None and len(survivors) > max_records:
        evicted += len(survivors) - max_records
        survivors = survivors[len(survivors) - max_records:]
    if max_bytes is not None:
        sizes = [len(dump_line(record)) + 1 for record in survivors]
        total = sum(sizes)
        drop = 0
        while drop < len(survivors) and total > max_bytes:
            total -= sizes[drop]
            drop += 1
        if drop:
            evicted += drop
            survivors = survivors[drop:]
    if evicted or always_rewrite:
        write_jsonl_atomic(path, survivors)
    if evicted and counter is not None:
        from repro import obs
        obs.counter(counter).inc(evicted)
    return evicted


class JsonlAppender:
    """Thread-safe append-mode JSONL writer, flushed per record.

    The write discipline every checkpoint/telemetry stream shares: the
    file is opened for append (an existing stream is extended, never
    truncated), each record is written and flushed as one line, and
    ``written`` counts this writer's contributions.  A process killed
    mid-:meth:`append` leaves at most one torn line, which the readers
    above skip.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.written = 0

    def append(self, record: dict) -> None:
        """Write one record as a flushed JSONL line."""
        self.append_line(dump_line(record))

    def append_line(self, line: str) -> None:
        """Write one pre-serialized line, flushed.

        The persistent cache uses this to write lines it has already
        serialized (its per-record checksum covers the exact bytes),
        including deliberately torn lines under chaos fault injection.
        """
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
