"""Stable hashing for deterministic simulation draws.

Python's built-in ``hash`` is salted per process, so every stochastic
element of the simulation (system errors, ABI-mismatch outcomes,
misconfigured stacks) instead derives from SHA-256 over a key tuple.  The
same (seed, key...) always produces the same draw, in any process, which
makes the whole evaluation reproducible bit-for-bit and lets the paper's
"five execution attempts spaced in time" behave consistently.
"""

from __future__ import annotations

import hashlib
from typing import Union

_Part = Union[str, int, float, bytes, bool, None]


def _encode(part: _Part) -> bytes:
    if isinstance(part, bytes):
        return b"b:" + part
    if isinstance(part, bool):
        return b"o:" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i:" + str(part).encode()
    if isinstance(part, float):
        return b"f:" + repr(part).encode()
    if part is None:
        return b"n:"
    return b"s:" + str(part).encode("utf-8")


def stable_hash(*parts: _Part) -> int:
    """A 64-bit hash of the key tuple, stable across processes."""
    h = hashlib.sha256()
    for part in parts:
        h.update(_encode(part))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")


def stable_uniform(*parts: _Part) -> float:
    """A deterministic draw in [0, 1) keyed by the tuple."""
    return stable_hash(*parts) / 2.0 ** 64


def stable_digest(*parts: _Part) -> str:
    """A full hex SHA-256 digest of the key tuple.

    The content-address used by the evaluation engine for environment
    fingerprints and bundle identities: collision-resistant (unlike the
    64-bit :func:`stable_hash`) and printable.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(_encode(part))
        h.update(b"\x1f")
    return h.hexdigest()


def content_digest(data: bytes) -> str:
    """The hex SHA-256 content-address of a byte string (e.g. an ELF image)."""
    return hashlib.sha256(data).hexdigest()
