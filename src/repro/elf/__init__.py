"""ELF binary format substrate.

A from-scratch implementation of the parts of the ELF object-file format
that FEAM's analysis depends on:

* :mod:`repro.elf.constants` -- file-format constants (classes, machines,
  section/dynamic/version tags).
* :mod:`repro.elf.structs` -- typed views of ELF structures.
* :mod:`repro.elf.reader` -- parse ELF images into :class:`ElfFile`.
* :mod:`repro.elf.writer` -- serialize a synthetic-but-valid ELF image from
  a :class:`BinarySpec` description (used by the toolchain simulator to
  produce genuine on-disk binaries without a compiler).
* :mod:`repro.elf.highlevel` -- one-call description of a binary
  (:func:`describe_elf`), the information FEAM's Binary Description
  Component consumes.

The reader handles both ELF32 and ELF64 in either byte order, and parses
real system binaries (cross-validated against binutils in the test suite)
as well as images produced by :mod:`repro.elf.writer`.
"""

from repro.elf.constants import (
    ElfClass,
    ElfData,
    ElfMachine,
    ElfType,
)
from repro.elf.reader import ElfError, ElfFile, parse_elf
from repro.elf.structs import (
    DynamicInfo,
    SymbolVersion,
    VersionDefinition,
    VersionRequirement,
)
from repro.elf.writer import BinarySpec, write_elf
from repro.elf.highlevel import BinaryInfo, describe_elf

__all__ = [
    "BinaryInfo",
    "BinarySpec",
    "DynamicInfo",
    "ElfClass",
    "ElfData",
    "ElfError",
    "ElfFile",
    "ElfMachine",
    "ElfType",
    "SymbolVersion",
    "VersionDefinition",
    "VersionRequirement",
    "describe_elf",
    "parse_elf",
    "write_elf",
]
