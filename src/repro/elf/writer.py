"""ELF image writer.

:func:`write_elf` serializes a :class:`BinarySpec` into a structurally valid
ELF image: file header, program headers (PT_LOAD + PT_DYNAMIC), a ``.text``
payload, ``.dynstr``, GNU ``.gnu.version_r``/``.gnu.version_d`` symbol
versioning sections, the ``.dynamic`` section, a ``.comment`` section and a
section-header table.

The toolchain simulator uses this to produce the binaries and shared
libraries that populate the simulated sites, so FEAM's analysis pipeline
(our objdump/readelf/ldd equivalents) parses *genuine on-disk ELF
structures*, not a side-channel description.  Images round-trip through
:mod:`repro.elf.reader` and are recognisable by real binutils.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Mapping, Optional, Sequence

from repro.elf.constants import (
    EI_NIDENT,
    ELF_MAGIC,
    PF_R,
    PF_W,
    PF_X,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
    VER_DEF_CURRENT,
    VER_FLG_BASE,
    VER_NEED_CURRENT,
    DynamicTag,
    ElfClass,
    ElfData,
    ElfMachine,
    ElfType,
    SectionType,
    SegmentType,
    elf_hash,
)


@dataclasses.dataclass(frozen=True)
class BinarySpec:
    """Description of an ELF image to synthesize.

    Parameters mirror what a compiler/linker decides: target machine and
    word size, object type, the shared libraries linked against
    (``needed``), per-library symbol-version requirements
    (``version_requirements``, e.g. ``{"libc.so.6": ("GLIBC_2.3.4",)}``),
    the soname and version definitions when building a shared library, the
    toolchain banner strings recorded in ``.comment``, and the size of the
    code payload (which dominates the on-disk size -- used for the paper's
    bundle-size measurements).
    """

    machine: ElfMachine = ElfMachine.X86_64
    elf_class: ElfClass = ElfClass.ELF64
    data: ElfData = ElfData.LSB
    etype: ElfType = ElfType.EXEC
    needed: tuple[str, ...] = ()
    soname: Optional[str] = None
    rpath: Optional[str] = None
    runpath: Optional[str] = None
    version_requirements: Mapping[str, Sequence[str]] = dataclasses.field(
        default_factory=dict)
    version_definitions: tuple[str, ...] = ()
    comment: tuple[str, ...] = ()
    payload_size: int = 4096
    statically_linked: bool = False
    #: Extra entropy for the payload (build paths/timestamps make real
    #: builds of the same source at different sites byte-distinct).
    payload_seed: str = ""
    #: Dynamic symbols (exports/imports with version names); emitted as
    #: .dynsym + .gnu.version.  Versions named here must appear in
    #: version_definitions (for exports) or version_requirements (for
    #: imports).  Note that the *first* version definition is the BASE
    #: (versym index 1 = *global*): a symbol versioned with it reads back
    #: as unversioned, exactly as real readers display VER_NDX_GLOBAL.
    symbols: tuple = ()

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        if self.statically_linked and (self.needed or self.soname):
            raise ValueError(
                "statically linked images cannot have NEEDED entries or a soname")


class _StringTable:
    """Incremental string table builder (offset 0 is the empty string)."""

    def __init__(self) -> None:
        self._buf = bytearray(b"\x00")
        self._offsets: dict[str, int] = {"": 0}

    def add(self, text: str) -> int:
        if text in self._offsets:
            return self._offsets[text]
        offset = len(self._buf)
        self._buf += text.encode("utf-8") + b"\x00"
        self._offsets[text] = offset
        return offset

    def bytes(self) -> bytes:
        return bytes(self._buf)


def _payload_bytes(spec: BinarySpec) -> bytes:
    """Deterministic pseudo-code payload; varies with the spec contents.

    Uses a seeded PCG64 stream (vectorized -- payloads are generated lazily
    every time a simulated site reads a binary, so this is on the hot path
    for multi-megabyte library files).
    """
    if spec.payload_size == 0:
        return b""
    import numpy as np

    seed_src = (
        f"{spec.machine}|{spec.etype}|{spec.soname}|{','.join(spec.needed)}|"
        f"{','.join(spec.comment)}|{spec.payload_seed}"
    ).encode()
    seed = elf_hash(seed_src) or 1
    return np.random.Generator(np.random.PCG64(seed)).bytes(spec.payload_size)


def write_elf(spec: BinarySpec) -> bytes:
    """Serialize *spec* into a valid ELF image.

    The layout is sequential: header, program headers, ``.text``,
    ``.dynstr``, version sections, ``.dynamic``, ``.comment``,
    ``.shstrtab``, section-header table.  The single PT_LOAD maps the whole
    file at vaddr 0 so file offsets double as virtual addresses, which keeps
    the dynamic entries trivially consistent.
    """
    is64 = spec.elf_class is ElfClass.ELF64
    prefix = spec.data.struct_prefix

    ehsize = 64 if is64 else 52
    phentsize = 56 if is64 else 32
    shentsize = 64 if is64 else 40
    dyn_fmt = prefix + ("qQ" if is64 else "iI")
    dyn_entsize = struct.calcsize(dyn_fmt)

    dynstr = _StringTable()
    shstr = _StringTable()

    dynamic = not spec.statically_linked

    # Pre-intern all dynstr strings so the table is complete before layout.
    needed_offs = [dynstr.add(n) for n in spec.needed]
    soname_off = dynstr.add(spec.soname) if spec.soname else None
    rpath_off = dynstr.add(spec.rpath) if spec.rpath else None
    runpath_off = dynstr.add(spec.runpath) if spec.runpath else None
    verneed_items = [
        (dynstr.add(filename), [(dynstr.add(v), v) for v in versions])
        for filename, versions in spec.version_requirements.items()
        if versions
    ]
    verdef_items = [(dynstr.add(v), v) for v in spec.version_definitions]
    symbol_items = [(dynstr.add(sym.name), sym) for sym in spec.symbols] \
        if dynamic else []
    dynstr_bytes = dynstr.bytes() if dynamic else b""

    # Global symbol-version indices: verdef entries occupy 1..N (the base
    # definition is index 1, like real libraries); vernaux entries
    # continue from there (always >= 2).  A name may exist on both sides
    # (libc both defines and requires GLIBC_PRIVATE), so defined and
    # undefined symbols resolve through separate maps.
    verdef_index_by_name: dict[str, int] = {}
    for i, (_off, name) in enumerate(verdef_items):
        verdef_index_by_name.setdefault(name, i + 1)
    next_index = max(2, len(verdef_items) + 1)
    vernaux_index: dict[tuple[int, str], int] = {}
    vernaux_index_by_name: dict[str, int] = {}
    for file_off, versions in verneed_items:
        for _name_off, name in versions:
            vernaux_index[(file_off, name)] = next_index
            vernaux_index_by_name.setdefault(name, next_index)
            next_index += 1

    # -- build the variable-size section bodies ------------------------------

    payload = _payload_bytes(spec)

    verneed_body = b""
    if verneed_items:
        need_fmt = prefix + "HHIII"
        aux_fmt = prefix + "IHHII"
        parts = []
        for i, (file_off, versions) in enumerate(verneed_items):
            aux_parts = []
            for j, (name_off, name) in enumerate(versions):
                vna_next = struct.calcsize(aux_fmt) if j + 1 < len(versions) else 0
                aux_parts.append(struct.pack(
                    aux_fmt, elf_hash(name), 0,
                    vernaux_index[(file_off, name)], name_off, vna_next))
            aux_blob = b"".join(aux_parts)
            vn_next = (struct.calcsize(need_fmt) + len(aux_blob)
                       if i + 1 < len(verneed_items) else 0)
            parts.append(struct.pack(
                need_fmt, VER_NEED_CURRENT, len(versions), file_off,
                struct.calcsize(need_fmt), vn_next))
            parts.append(aux_blob)
        verneed_body = b"".join(parts)

    verdef_body = b""
    if verdef_items:
        def_fmt = prefix + "HHHHIII"
        aux_fmt = prefix + "II"
        parts = []
        for i, (name_off, name) in enumerate(verdef_items):
            flags = VER_FLG_BASE if i == 0 else 0
            record = struct.calcsize(def_fmt) + struct.calcsize(aux_fmt)
            vd_next = record if i + 1 < len(verdef_items) else 0
            parts.append(struct.pack(
                def_fmt, VER_DEF_CURRENT, flags, i + 1, 1,
                elf_hash(name), struct.calcsize(def_fmt), vd_next))
            parts.append(struct.pack(aux_fmt, name_off, 0))
        verdef_body = b"".join(parts)

    dynsym_body = b""
    versym_body = b""
    sym_entsize = 24 if is64 else 16
    if symbol_items:
        from repro.elf.constants import (
            SHN_UNDEF,
            STB_GLOBAL,
            STT_FUNC,
            VER_NDX_GLOBAL,
        )
        st_info = (STB_GLOBAL << 4) | STT_FUNC
        sym_parts = [b"\x00" * sym_entsize]  # the mandatory null symbol
        ver_parts = [struct.pack(prefix + "H", 0)]
        for name_off, sym in symbol_items:
            shndx = 1 if sym.defined else SHN_UNDEF  # .text or UNDEF
            if is64:
                sym_parts.append(struct.pack(
                    prefix + "IBBHQQ", name_off, st_info, 0, shndx, 0, 0))
            else:
                sym_parts.append(struct.pack(
                    prefix + "IIIBBH", name_off, 0, 0, st_info, 0, shndx))
            if sym.version is None:
                index = VER_NDX_GLOBAL
            elif sym.defined:
                index = verdef_index_by_name.get(
                    sym.version, vernaux_index_by_name.get(sym.version))
            else:
                index = vernaux_index_by_name.get(
                    sym.version, verdef_index_by_name.get(sym.version))
            if index is None:
                raise ValueError(
                    f"symbol {sym.name!r} references version "
                    f"{sym.version!r} which is neither defined nor "
                    f"required")
            ver_parts.append(struct.pack(prefix + "H", index))
        dynsym_body = b"".join(sym_parts)
        versym_body = b"".join(ver_parts)

    comment_body = b"".join(
        c.encode("utf-8") + b"\x00" for c in spec.comment)

    # -- layout ---------------------------------------------------------------

    phnum = 2 if dynamic else 1
    offset = ehsize + phnum * phentsize

    def place(size: int, align: int = 8) -> int:
        nonlocal offset
        if align > 1:
            offset = (offset + align - 1) // align * align
        start = offset
        offset += size
        return start

    text_off = place(len(payload), 16)
    dynstr_off = place(len(dynstr_bytes), 1) if dynamic else 0
    dynsym_off = place(len(dynsym_body), 8) if dynsym_body else 0
    versym_off = place(len(versym_body), 2) if versym_body else 0
    verneed_off = place(len(verneed_body), 8) if verneed_body else 0
    verdef_off = place(len(verdef_body), 8) if verdef_body else 0

    # Dynamic entries (built after we know the section addresses).
    dyn_entries: list[tuple[int, int]] = []
    if dynamic:
        for off in needed_offs:
            dyn_entries.append((DynamicTag.NEEDED, off))
        if soname_off is not None:
            dyn_entries.append((DynamicTag.SONAME, soname_off))
        if rpath_off is not None:
            dyn_entries.append((DynamicTag.RPATH, rpath_off))
        if runpath_off is not None:
            dyn_entries.append((DynamicTag.RUNPATH, runpath_off))
        dyn_entries.append((DynamicTag.STRTAB, dynstr_off))
        dyn_entries.append((DynamicTag.STRSZ, len(dynstr_bytes)))
        if dynsym_body:
            dyn_entries.append((DynamicTag.SYMTAB, dynsym_off))
            dyn_entries.append((DynamicTag.SYMENT, sym_entsize))
            dyn_entries.append((DynamicTag.VERSYM, versym_off))
        if verneed_body:
            dyn_entries.append((DynamicTag.VERNEED, verneed_off))
            dyn_entries.append((DynamicTag.VERNEEDNUM, len(verneed_items)))
        if verdef_body:
            dyn_entries.append((DynamicTag.VERDEF, verdef_off))
            dyn_entries.append((DynamicTag.VERDEFNUM, len(verdef_items)))
        dyn_entries.append((DynamicTag.NULL, 0))
    dynamic_body = b"".join(
        struct.pack(dyn_fmt, tag, value) for tag, value in dyn_entries)
    dynamic_off = place(len(dynamic_body), 8) if dynamic else 0

    comment_off = place(len(comment_body), 1) if comment_body else 0

    # -- section table --------------------------------------------------------

    @dataclasses.dataclass
    class _Sec:
        name: str
        sh_type: int
        flags: int
        offset: int
        size: int
        link: int = 0
        info: int = 0
        addralign: int = 1
        entsize: int = 0
        addr_is_offset: bool = True

    sections: list[_Sec] = [
        _Sec("", SectionType.NULL, 0, 0, 0, addr_is_offset=False)]
    sections.append(_Sec(".text", SectionType.PROGBITS,
                         SHF_ALLOC | SHF_EXECINSTR, text_off, len(payload),
                         addralign=16))
    dynstr_index = verneed_index = verdef_index = None
    if dynamic:
        dynstr_index = len(sections)
        sections.append(_Sec(".dynstr", SectionType.STRTAB, SHF_ALLOC,
                             dynstr_off, len(dynstr_bytes)))
        if dynsym_body:
            dynsym_index = len(sections)
            sections.append(_Sec(
                ".dynsym", SectionType.DYNSYM, SHF_ALLOC,
                dynsym_off, len(dynsym_body), link=dynstr_index,
                info=1, addralign=8, entsize=sym_entsize))
            sections.append(_Sec(
                ".gnu.version", SectionType.GNU_VERSYM, SHF_ALLOC,
                versym_off, len(versym_body), link=dynsym_index,
                addralign=2, entsize=2))
        if verneed_body:
            verneed_index = len(sections)
            sections.append(_Sec(
                ".gnu.version_r", SectionType.GNU_VERNEED, SHF_ALLOC,
                verneed_off, len(verneed_body), link=dynstr_index,
                info=len(verneed_items), addralign=8))
        if verdef_body:
            verdef_index = len(sections)
            sections.append(_Sec(
                ".gnu.version_d", SectionType.GNU_VERDEF, SHF_ALLOC,
                verdef_off, len(verdef_body), link=dynstr_index,
                info=len(verdef_items), addralign=8))
        sections.append(_Sec(
            ".dynamic", SectionType.DYNAMIC, SHF_ALLOC | SHF_WRITE,
            dynamic_off, len(dynamic_body), link=dynstr_index,
            addralign=8, entsize=dyn_entsize))
    if comment_body:
        sections.append(_Sec(".comment", SectionType.PROGBITS, 0,
                             comment_off, len(comment_body),
                             addr_is_offset=False))

    for sec in sections:
        shstr.add(sec.name)
    shstrtab_name_added = shstr.add(".shstrtab")
    del shstrtab_name_added
    shstrtab_bytes = shstr.bytes()
    shstrtab_off = place(len(shstrtab_bytes), 1)
    shstrndx = len(sections)
    sections.append(_Sec(".shstrtab", SectionType.STRTAB, 0,
                         shstrtab_off, len(shstrtab_bytes),
                         addr_is_offset=False))

    shoff = place(len(sections) * shentsize, 8)
    file_size = offset

    # -- serialize ------------------------------------------------------------

    image = bytearray(file_size)

    ident = bytearray(EI_NIDENT)
    ident[:4] = ELF_MAGIC
    ident[4] = int(spec.elf_class)
    ident[5] = int(spec.data)
    ident[6] = 1  # EV_CURRENT
    ident[7] = 0  # ELFOSABI_NONE (System V)

    if is64:
        hdr_fmt = prefix + "HHIQQQIHHHHHH"
    else:
        hdr_fmt = prefix + "HHIIIIIHHHHHH"
    entry = text_off if spec.etype is ElfType.EXEC else 0
    header = struct.pack(
        hdr_fmt, int(spec.etype), int(spec.machine), 1, entry,
        ehsize, shoff, 0, ehsize, phentsize, phnum, shentsize,
        len(sections), shstrndx)
    image[:EI_NIDENT] = ident
    image[EI_NIDENT:EI_NIDENT + len(header)] = header

    # Program headers.
    def pack_phdr(p_type: int, flags: int, seg_off: int, size: int,
                  align: int) -> bytes:
        if is64:
            return struct.pack(prefix + "IIQQQQQQ", p_type, flags, seg_off,
                               seg_off, seg_off, size, size, align)
        return struct.pack(prefix + "IIIIIIII", p_type, seg_off, seg_off,
                           seg_off, size, size, flags, align)

    ph_blob = pack_phdr(SegmentType.LOAD, PF_R | PF_X, 0, file_size, 0x1000)
    if dynamic:
        ph_blob += pack_phdr(SegmentType.DYNAMIC, PF_R | PF_W,
                             dynamic_off, len(dynamic_body), 8)
    image[ehsize:ehsize + len(ph_blob)] = ph_blob

    # Section bodies.
    image[text_off:text_off + len(payload)] = payload
    if dynamic:
        image[dynstr_off:dynstr_off + len(dynstr_bytes)] = dynstr_bytes
        if dynsym_body:
            image[dynsym_off:dynsym_off + len(dynsym_body)] = dynsym_body
            image[versym_off:versym_off + len(versym_body)] = versym_body
        if verneed_body:
            image[verneed_off:verneed_off + len(verneed_body)] = verneed_body
        if verdef_body:
            image[verdef_off:verdef_off + len(verdef_body)] = verdef_body
        image[dynamic_off:dynamic_off + len(dynamic_body)] = dynamic_body
    if comment_body:
        image[comment_off:comment_off + len(comment_body)] = comment_body
    image[shstrtab_off:shstrtab_off + len(shstrtab_bytes)] = shstrtab_bytes

    # Section headers.
    blob = bytearray()
    for sec in sections:
        addr = sec.offset if (sec.flags & SHF_ALLOC) else 0
        if is64:
            blob += struct.pack(
                prefix + "IIQQQQIIQQ", shstr.add(sec.name), int(sec.sh_type),
                sec.flags, addr, sec.offset, sec.size, sec.link, sec.info,
                sec.addralign, sec.entsize)
        else:
            blob += struct.pack(
                prefix + "IIIIIIIIII", shstr.add(sec.name), int(sec.sh_type),
                sec.flags, addr, sec.offset, sec.size, sec.link, sec.info,
                sec.addralign, sec.entsize)
    image[shoff:shoff + len(blob)] = blob

    return bytes(image)
