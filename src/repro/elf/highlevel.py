"""High-level binary description.

:func:`describe_elf` condenses a parsed ELF image into the
:class:`BinaryInfo` record FEAM's Binary Description Component consumes:
file format, ISA and word length, dynamic-link status, the NEEDED list, the
soname (with embedded version when the object is a shared library), the
*required C library version* (the newest GLIBC version referenced, per the
paper's Section V.A), and the toolchain banner from ``.comment``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.elf.constants import ElfData, ElfMachine, ElfType
from repro.elf.reader import ElfFile, parse_elf
from repro.elf.structs import SymbolVersion, VersionRequirement


@dataclasses.dataclass(frozen=True)
class BinaryInfo:
    """Condensed description of an application binary or shared library."""

    file_format: str
    machine: ElfMachine
    isa_name: str
    bits: int
    endianness: ElfData
    etype: ElfType
    is_dynamic: bool
    is_shared_library: bool
    soname: Optional[str]
    needed: tuple[str, ...]
    rpath: Optional[str]
    runpath: Optional[str]
    version_requirements: tuple[VersionRequirement, ...]
    version_definitions: tuple[str, ...]
    required_glibc: Optional[SymbolVersion]
    comment: tuple[str, ...]
    size: int

    @property
    def required_glibc_components(self) -> tuple[int, ...]:
        """Numeric components of the required GLIBC version (or empty)."""
        if self.required_glibc is None:
            return ()
        return self.required_glibc.components


def required_glibc_version(elf: ElfFile) -> Optional[SymbolVersion]:
    """The newest GLIBC version referenced or defined by *elf*.

    The paper computes an application's *required C library version* as the
    newest version listed under the "Version Definitions" and "Version
    References" sections of the ``objdump -p`` output; this is that
    computation over the parsed verneed/verdef data.
    """
    candidates: list[SymbolVersion] = []
    for req in elf.version_requirements:
        candidates.extend(v for v in req.versions if v.is_glibc())
    for vdef in elf.version_definitions:
        if vdef.name.is_glibc():
            candidates.append(vdef.name)
    if not candidates:
        return None
    return max(candidates, key=lambda v: v.components)


def describe_elf(data: bytes) -> BinaryInfo:
    """Parse and condense an ELF image into a :class:`BinaryInfo`.

    Raises :class:`repro.elf.reader.ElfError` for non-ELF input.
    """
    return describe_parsed(parse_elf(data))


def describe_parsed(elf: ElfFile) -> BinaryInfo:
    """Condense an already-parsed (possibly detached) :class:`ElfFile`."""
    verdef_names = tuple(d.name.name for d in elf.version_definitions)
    return BinaryInfo(
        file_format=f"elf{elf.header.bits}",
        machine=elf.header.machine,
        isa_name=elf.header.machine.display_name,
        bits=elf.header.bits,
        endianness=elf.header.data,
        etype=elf.header.etype,
        is_dynamic=elf.is_dynamic,
        is_shared_library=elf.is_shared_library,
        soname=elf.dynamic.soname,
        needed=elf.dynamic.needed,
        rpath=elf.dynamic.rpath,
        runpath=elf.dynamic.runpath,
        version_requirements=elf.version_requirements,
        version_definitions=verdef_names,
        required_glibc=required_glibc_version(elf),
        comment=elf.comment,
        size=elf.size,
    )
