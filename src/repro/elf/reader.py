"""ELF image parser.

:func:`parse_elf` decodes an ELF image (bytes) into an :class:`ElfFile`
object exposing the header, section table, program headers, dynamic section,
GNU symbol-versioning data and the ``.comment`` section -- i.e. exactly the
information FEAM's Binary Description Component extracts with ``objdump -p``
and ``readelf -p .comment``.

Both ELF32 and ELF64 images in either byte order are supported.  The parser
is deliberately forgiving about sections it does not understand, but strict
about malformed structures in the sections it does parse: corrupt offsets
raise :class:`ElfError` rather than yielding silently wrong descriptions.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.elf.constants import (
    EI_CLASS,
    EI_DATA,
    EI_NIDENT,
    EI_OSABI,
    ELF_MAGIC,
    DynamicTag,
    ElfClass,
    ElfData,
    ElfMachine,
    ElfType,
    SectionType,
    SegmentType,
)
from repro.elf.structs import (
    DynamicEntry,
    DynamicInfo,
    ElfHeader,
    ProgramHeader,
    SectionHeader,
    SymbolVersion,
    VersionDefinition,
    VersionRequirement,
)


class ElfError(ValueError):
    """Raised when an image is not valid ELF or is structurally corrupt."""


def _read_cstr(data: bytes, offset: int) -> str:
    """Read a NUL-terminated string from *data* at *offset*."""
    if offset < 0 or offset >= len(data):
        raise ElfError(f"string offset {offset:#x} outside image")
    end = data.find(b"\x00", offset)
    if end < 0:
        end = len(data)
    return data[offset:end].decode("utf-8", errors="replace")


class ElfFile:
    """A parsed ELF image.

    Attributes of interest to FEAM:

    * :attr:`header` -- machine, class (bitness), file type.
    * :attr:`dynamic` -- DT_NEEDED list, DT_SONAME, rpath/runpath.
    * :attr:`version_requirements` -- verneed: versions required per library.
    * :attr:`version_definitions` -- verdef: versions this object defines.
    * :attr:`comment` -- toolchain identification strings.
    """

    def __init__(self, data: bytes):
        self._data = data
        self._size = len(data)
        self.header = self._parse_header()
        prefix = self.header.data.struct_prefix
        self._prefix = prefix
        self._is64 = self.header.elf_class is ElfClass.ELF64
        self.program_headers = self._parse_program_headers()
        self.sections = self._parse_sections()
        self._by_name = {s.name: s for s in self.sections}
        self.dynamic = self._parse_dynamic()
        self._version_names_by_index: dict[int, str] = {}
        self.version_requirements = self._parse_verneed()
        self.version_definitions = self._parse_verdef()
        self.symbols = self._parse_symbols()
        self.comment = self._parse_comment()

    # -- basic properties ---------------------------------------------------

    @property
    def data(self) -> bytes:
        """The raw image (empty after :meth:`detach`)."""
        return self._data

    @property
    def size(self) -> int:
        """Size in bytes of the parsed image (survives :meth:`detach`)."""
        return self._size

    def detach(self) -> "ElfFile":
        """Drop the raw image to save memory.

        All parsed attributes remain valid; only :attr:`data` and
        :meth:`section_data` become unavailable.  Used by the loader's
        parse cache, which would otherwise pin every multi-megabyte
        library image in memory.
        """
        self._data = b""
        return self

    @property
    def is_dynamic(self) -> bool:
        """True when the object has a dynamic section (is dynamically linked)."""
        return bool(self.dynamic.entries)

    @property
    def is_shared_library(self) -> bool:
        """True when this looks like a shared library (ET_DYN with a soname).

        Position-independent executables are also ET_DYN; the presence of a
        DT_SONAME is the discriminator FEAM relies on.
        """
        return self.header.etype is ElfType.DYN and self.dynamic.soname is not None

    def section(self, name: str) -> Optional[SectionHeader]:
        """Look up a section header by name, or None."""
        return self._by_name.get(name)

    def section_data(self, section: SectionHeader) -> bytes:
        """Raw contents of *section*."""
        if section.sh_type == SectionType.NOBITS:
            return b""
        end = section.offset + section.size
        if section.offset < 0 or end > len(self._data):
            raise ElfError(f"section {section.name!r} extends outside image")
        return self._data[section.offset:end]

    # -- header -------------------------------------------------------------

    def _parse_header(self) -> ElfHeader:
        data = self._data
        if len(data) < EI_NIDENT:
            raise ElfError("image shorter than e_ident")
        if data[:4] != ELF_MAGIC:
            raise ElfError("bad ELF magic")
        try:
            elf_class = ElfClass(data[EI_CLASS])
            byte_order = ElfData(data[EI_DATA])
        except ValueError as exc:
            raise ElfError(f"bad e_ident: {exc}") from exc
        if elf_class is ElfClass.NONE or byte_order is ElfData.NONE:
            raise ElfError("ELFCLASSNONE/ELFDATANONE image")
        prefix = byte_order.struct_prefix
        if elf_class is ElfClass.ELF64:
            fmt = prefix + "HHIQQQIHHHHHH"
        else:
            fmt = prefix + "HHIIIIIHHHHHH"
        size = struct.calcsize(fmt)
        if len(data) < EI_NIDENT + size:
            raise ElfError("image shorter than ELF header")
        fields = struct.unpack_from(fmt, data, EI_NIDENT)
        (etype, machine, _version, entry, phoff, shoff, flags,
         ehsize, phentsize, phnum, shentsize, shnum, shstrndx) = fields
        try:
            etype_enum = ElfType(etype)
        except ValueError as exc:
            raise ElfError(f"unknown e_type {etype}") from exc
        try:
            machine_enum = ElfMachine(machine)
        except ValueError:
            machine_enum = ElfMachine.NONE
        return ElfHeader(
            elf_class=elf_class,
            data=byte_order,
            osabi=data[EI_OSABI],
            etype=etype_enum,
            machine=machine_enum,
            entry=entry,
            phoff=phoff,
            shoff=shoff,
            flags=flags,
            ehsize=ehsize,
            phentsize=phentsize,
            phnum=phnum,
            shentsize=shentsize,
            shnum=shnum,
            shstrndx=shstrndx,
        )

    # -- program headers ----------------------------------------------------

    def _parse_program_headers(self) -> tuple[ProgramHeader, ...]:
        hdr = self.header
        if hdr.phnum == 0 or hdr.phoff == 0:
            return ()
        if self._is64:
            fmt = self._prefix + "IIQQQQQQ"
        else:
            fmt = self._prefix + "IIIIIIII"
        size = struct.calcsize(fmt)
        if hdr.phentsize < size:
            raise ElfError("phentsize smaller than Phdr")
        out = []
        for i in range(hdr.phnum):
            off = hdr.phoff + i * hdr.phentsize
            if off + size > len(self._data):
                raise ElfError("program header table extends outside image")
            fields = struct.unpack_from(fmt, self._data, off)
            if self._is64:
                p_type, flags, offset, vaddr, paddr, filesz, memsz, align = fields
            else:
                p_type, offset, vaddr, paddr, filesz, memsz, flags, align = fields
            out.append(ProgramHeader(
                p_type=p_type, flags=flags, offset=offset, vaddr=vaddr,
                paddr=paddr, filesz=filesz, memsz=memsz, align=align,
            ))
        return tuple(out)

    # -- sections -----------------------------------------------------------

    def _parse_sections(self) -> tuple[SectionHeader, ...]:
        hdr = self.header
        if hdr.shnum == 0 or hdr.shoff == 0:
            return ()
        if self._is64:
            fmt = self._prefix + "IIQQQQIIQQ"
        else:
            fmt = self._prefix + "IIIIIIIIII"
        size = struct.calcsize(fmt)
        if hdr.shentsize < size:
            raise ElfError("shentsize smaller than Shdr")
        raw = []
        for i in range(hdr.shnum):
            off = hdr.shoff + i * hdr.shentsize
            if off + size > len(self._data):
                raise ElfError("section header table extends outside image")
            fields = struct.unpack_from(fmt, self._data, off)
            (name_off, sh_type, flags, addr, offset,
             sh_size, link, info, addralign, entsize) = fields
            raw.append((name_off, sh_type, flags, addr, offset,
                        sh_size, link, info, addralign, entsize))
        # Resolve names via the section-header string table.
        names = [""] * len(raw)
        if 0 < hdr.shstrndx < len(raw):
            str_off = raw[hdr.shstrndx][4]
            str_size = raw[hdr.shstrndx][5]
            if str_off + str_size <= len(self._data):
                table = self._data[str_off:str_off + str_size]
                for i, entry in enumerate(raw):
                    name_off = entry[0]
                    if name_off < len(table):
                        end = table.find(b"\x00", name_off)
                        if end < 0:
                            end = len(table)
                        names[i] = table[name_off:end].decode(
                            "utf-8", errors="replace")
        return tuple(
            SectionHeader(
                name=names[i], sh_type=entry[1], flags=entry[2],
                addr=entry[3], offset=entry[4], size=entry[5],
                link=entry[6], info=entry[7], addralign=entry[8],
                entsize=entry[9],
            )
            for i, entry in enumerate(raw)
        )

    # -- dynamic section ----------------------------------------------------

    def _dynamic_region(self) -> Optional[bytes]:
        """Locate the dynamic section bytes (by section, else PT_DYNAMIC)."""
        sec = self.section(".dynamic")
        if sec is not None and sec.size:
            return self.section_data(sec)
        for ph in self.program_headers:
            if ph.p_type == SegmentType.DYNAMIC and ph.filesz:
                end = ph.offset + ph.filesz
                if end > len(self._data):
                    raise ElfError("PT_DYNAMIC extends outside image")
                return self._data[ph.offset:end]
        return None

    def _dynstr_table(self) -> Optional[bytes]:
        """Locate the dynamic string table bytes."""
        sec = self.section(".dynstr")
        if sec is not None and sec.size:
            return self.section_data(sec)
        return None

    def _parse_dynamic(self) -> DynamicInfo:
        region = self._dynamic_region()
        if region is None:
            return DynamicInfo()
        if self._is64:
            fmt = self._prefix + "qQ"
        else:
            fmt = self._prefix + "iI"
        size = struct.calcsize(fmt)
        entries = []
        for off in range(0, len(region) - size + 1, size):
            tag, value = struct.unpack_from(fmt, region, off)
            if tag == DynamicTag.NULL:
                break
            entries.append(DynamicEntry(tag=tag, value=value))
        strtab = self._dynstr_table()

        def lookup(value: int) -> str:
            if strtab is None:
                raise ElfError("dynamic entry references missing .dynstr")
            if value >= len(strtab):
                raise ElfError(f"dynstr offset {value:#x} outside table")
            end = strtab.find(b"\x00", value)
            if end < 0:
                end = len(strtab)
            return strtab[value:end].decode("utf-8", errors="replace")

        needed = []
        soname = rpath = runpath = None
        for entry in entries:
            if entry.tag == DynamicTag.NEEDED:
                needed.append(lookup(entry.value))
            elif entry.tag == DynamicTag.SONAME:
                soname = lookup(entry.value)
            elif entry.tag == DynamicTag.RPATH:
                rpath = lookup(entry.value)
            elif entry.tag == DynamicTag.RUNPATH:
                runpath = lookup(entry.value)
        return DynamicInfo(
            needed=tuple(needed),
            soname=soname,
            rpath=rpath,
            runpath=runpath,
            entries=tuple(entries),
        )

    # -- GNU symbol versioning ----------------------------------------------

    def _strtab_for(self, section: SectionHeader) -> bytes:
        """String table linked from *section* (sh_link), with fallback."""
        if 0 <= section.link < len(self.sections):
            linked = self.sections[section.link]
            if linked.sh_type == SectionType.STRTAB:
                return self.section_data(linked)
        table = self._dynstr_table()
        if table is None:
            raise ElfError(f"no string table for section {section.name!r}")
        return table

    def _parse_verneed(self) -> tuple[VersionRequirement, ...]:
        sec = next(
            (s for s in self.sections if s.sh_type == SectionType.GNU_VERNEED),
            None,
        )
        if sec is None:
            return ()
        data = self.section_data(sec)
        strtab = self._strtab_for(sec)

        def strg(off: int) -> str:
            return _read_cstr(strtab, off)

        fmt_need = self._prefix + "HHIII"
        fmt_aux = self._prefix + "IHHII"
        need_size = struct.calcsize(fmt_need)
        aux_size = struct.calcsize(fmt_aux)
        out: list[VersionRequirement] = []
        offset = 0
        for _ in range(sec.info or 0x10000):  # sh_info = number of verneeds
            if offset + need_size > len(data):
                break
            _vn_version, vn_cnt, vn_file, vn_aux, vn_next = struct.unpack_from(
                fmt_need, data, offset)
            filename = strg(vn_file)
            versions = []
            aux_off = offset + vn_aux
            for _ in range(vn_cnt):
                if aux_off + aux_size > len(data):
                    raise ElfError("verneed aux extends outside section")
                _hash, _flags, vna_other, vna_name, vna_next = \
                    struct.unpack_from(fmt_aux, data, aux_off)
                version_name = strg(vna_name)
                versions.append(SymbolVersion(version_name))
                self._version_names_by_index[vna_other & 0x7FFF] = \
                    version_name
                if vna_next == 0:
                    break
                aux_off += vna_next
            out.append(VersionRequirement(
                filename=filename, versions=tuple(versions)))
            if vn_next == 0:
                break
            offset += vn_next
        return tuple(out)

    def _parse_verdef(self) -> tuple[VersionDefinition, ...]:
        sec = next(
            (s for s in self.sections if s.sh_type == SectionType.GNU_VERDEF),
            None,
        )
        if sec is None:
            return ()
        data = self.section_data(sec)
        strtab = self._strtab_for(sec)

        fmt_def = self._prefix + "HHHHIII"
        fmt_aux = self._prefix + "II"
        def_size = struct.calcsize(fmt_def)
        aux_size = struct.calcsize(fmt_aux)
        out: list[VersionDefinition] = []
        offset = 0
        for _ in range(sec.info or 0x10000):  # sh_info = number of verdefs
            if offset + def_size > len(data):
                break
            (_version, vd_flags, vd_ndx, vd_cnt, _hash,
             vd_aux, vd_next) = struct.unpack_from(fmt_def, data, offset)
            names = []
            aux_off = offset + vd_aux
            for _ in range(vd_cnt):
                if aux_off + aux_size > len(data):
                    raise ElfError("verdef aux extends outside section")
                vda_name, vda_next = struct.unpack_from(fmt_aux, data, aux_off)
                names.append(_read_cstr(strtab, vda_name))
                if vda_next == 0:
                    break
                aux_off += vda_next
            if names:
                self._version_names_by_index[vd_ndx & 0x7FFF] = names[0]
                out.append(VersionDefinition(
                    name=SymbolVersion(names[0]),
                    is_base=bool(vd_flags & 0x1),
                    parents=tuple(names[1:]),
                ))
            if vd_next == 0:
                break
            offset += vd_next
        return tuple(out)

    # -- dynamic symbols ------------------------------------------------------

    def _parse_symbols(self):
        """Parse .dynsym with .gnu.version symbol-version annotations."""
        from repro.elf.structs import DynamicSymbol

        sec = next(
            (s for s in self.sections if s.sh_type == SectionType.DYNSYM),
            None)
        if sec is None or sec.entsize == 0:
            return ()
        data = self.section_data(sec)
        strtab = self._strtab_for(sec)
        count = len(data) // sec.entsize
        versym_sec = next(
            (s for s in self.sections
             if s.sh_type == SectionType.GNU_VERSYM), None)
        versym: tuple[int, ...] = ()
        if versym_sec is not None and versym_sec.entsize:
            vdata = self.section_data(versym_sec)
            versym = struct.unpack_from(
                self._prefix + "H" * (len(vdata) // 2), vdata)
        if self._is64:
            fmt = self._prefix + "IBBHQQ"
        else:
            fmt = self._prefix + "IIIBBH"
        out = []
        for i in range(1, count):  # skip the null symbol
            fields = struct.unpack_from(fmt, data, i * sec.entsize)
            if self._is64:
                name_off, _info, _other, shndx, _value, _size = fields
            else:
                name_off, _value, _size, _info, _other, shndx = fields
            name = _read_cstr(strtab, name_off)
            if not name:
                continue
            version = None
            if i < len(versym):
                index = versym[i] & 0x7FFF
                if index > 1:  # 0 = local, 1 = global/unversioned
                    version = self._version_names_by_index.get(index)
            out.append(DynamicSymbol(name=name, defined=shndx != 0,
                                     version=version))
        return tuple(out)

    @property
    def exported_symbols(self) -> tuple:
        """Symbols this object defines (nm -D --defined-only)."""
        return tuple(s for s in self.symbols if s.defined)

    @property
    def imported_symbols(self) -> tuple:
        """Symbols this object needs from elsewhere."""
        return tuple(s for s in self.symbols if not s.defined)

    # -- .comment -----------------------------------------------------------

    def _parse_comment(self) -> tuple[str, ...]:
        sec = self.section(".comment")
        if sec is None:
            return ()
        raw = self.section_data(sec)
        parts = [p.decode("utf-8", errors="replace")
                 for p in raw.split(b"\x00")]
        # Deduplicate while preserving order (GCC repeats its banner once
        # per translation unit).
        seen: dict[str, None] = {}
        for part in parts:
            part = part.strip()
            if part:
                seen.setdefault(part)
        return tuple(seen)


def parse_elf(data: bytes) -> ElfFile:
    """Parse an ELF image from bytes.

    Raises :class:`ElfError` when the image is not valid ELF.
    """
    return ElfFile(data)


def is_elf(data: bytes) -> bool:
    """Quick check: does *data* start with the ELF magic?"""
    return data[:4] == ELF_MAGIC
