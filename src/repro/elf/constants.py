"""ELF file-format constants.

Only the subset needed to describe dynamically linked application binaries
is defined: identification bytes, object classes, data encodings, machine
architectures, section types, program-header types, dynamic-section tags,
and GNU symbol-versioning tags.

Values follow the System V ABI and the GNU extensions as implemented by
glibc/binutils.
"""

from __future__ import annotations

import enum

#: The four magic bytes at the start of every ELF file.
ELF_MAGIC = b"\x7fELF"

#: Size of the e_ident identification array.
EI_NIDENT = 16

# Offsets into e_ident.
EI_CLASS = 4
EI_DATA = 5
EI_VERSION = 6
EI_OSABI = 7
EI_ABIVERSION = 8


class ElfClass(enum.IntEnum):
    """Object file class: word size of the target architecture."""

    NONE = 0
    ELF32 = 1
    ELF64 = 2

    @property
    def bits(self) -> int:
        """Word length in bits (32 or 64)."""
        if self is ElfClass.ELF32:
            return 32
        if self is ElfClass.ELF64:
            return 64
        raise ValueError("ELFCLASSNONE has no word length")


class ElfData(enum.IntEnum):
    """Data encoding: byte order of the target architecture."""

    NONE = 0
    LSB = 1  # little-endian (2's complement)
    MSB = 2  # big-endian (2's complement)

    @property
    def struct_prefix(self) -> str:
        """:mod:`struct` byte-order prefix for this encoding."""
        if self is ElfData.LSB:
            return "<"
        if self is ElfData.MSB:
            return ">"
        raise ValueError("ELFDATANONE has no byte order")


class ElfType(enum.IntEnum):
    """Object file type (e_type)."""

    NONE = 0
    REL = 1
    EXEC = 2
    DYN = 3
    CORE = 4


class ElfMachine(enum.IntEnum):
    """Machine architecture (e_machine); the subset FEAM encounters."""

    NONE = 0
    SPARC = 2
    X86 = 3  # EM_386
    MIPS = 8
    PPC = 20
    PPC64 = 21
    S390 = 22
    ARM = 40
    SPARCV9 = 43
    IA_64 = 50
    X86_64 = 62
    AARCH64 = 183
    RISCV = 243

    @property
    def display_name(self) -> str:
        """Conventional architecture string (as printed by objdump)."""
        return _MACHINE_NAMES[self]


_MACHINE_NAMES = {
    ElfMachine.NONE: "none",
    ElfMachine.SPARC: "sparc",
    ElfMachine.X86: "i386",
    ElfMachine.MIPS: "mips",
    ElfMachine.PPC: "powerpc",
    ElfMachine.PPC64: "powerpc64",
    ElfMachine.S390: "s390",
    ElfMachine.ARM: "arm",
    ElfMachine.SPARCV9: "sparcv9",
    ElfMachine.IA_64: "ia64",
    ElfMachine.X86_64: "x86-64",
    ElfMachine.AARCH64: "aarch64",
    ElfMachine.RISCV: "riscv",
}


class SectionType(enum.IntEnum):
    """Section types (sh_type); the subset we read and write."""

    NULL = 0
    PROGBITS = 1
    SYMTAB = 2
    STRTAB = 3
    RELA = 4
    HASH = 5
    DYNAMIC = 6
    NOTE = 7
    NOBITS = 8
    REL = 9
    DYNSYM = 11
    # GNU extensions for symbol versioning.
    GNU_VERDEF = 0x6FFFFFFD
    GNU_VERNEED = 0x6FFFFFFE
    GNU_VERSYM = 0x6FFFFFFF


class SegmentType(enum.IntEnum):
    """Program-header (segment) types (p_type)."""

    NULL = 0
    LOAD = 1
    DYNAMIC = 2
    INTERP = 3
    NOTE = 4
    PHDR = 6
    GNU_EH_FRAME = 0x6474E550
    GNU_STACK = 0x6474E551
    GNU_RELRO = 0x6474E552
    GNU_PROPERTY = 0x6474E553


class DynamicTag(enum.IntEnum):
    """Dynamic-section entry tags (d_tag); the subset FEAM inspects."""

    NULL = 0
    NEEDED = 1
    PLTRELSZ = 2
    PLTGOT = 3
    HASH = 4
    STRTAB = 5
    SYMTAB = 6
    RELA = 7
    RELASZ = 8
    RELAENT = 9
    STRSZ = 10
    SYMENT = 11
    INIT = 12
    FINI = 13
    SONAME = 14
    RPATH = 15
    SYMBOLIC = 16
    REL = 17
    RELSZ = 18
    RELENT = 19
    PLTREL = 20
    DEBUG = 21
    TEXTREL = 22
    JMPREL = 23
    BIND_NOW = 24
    INIT_ARRAY = 25
    FINI_ARRAY = 26
    INIT_ARRAYSZ = 27
    FINI_ARRAYSZ = 28
    RUNPATH = 29
    FLAGS = 30
    GNU_HASH = 0x6FFFFEF5
    VERSYM = 0x6FFFFFF0
    VERDEF = 0x6FFFFFFC
    VERDEFNUM = 0x6FFFFFFD
    VERNEED = 0x6FFFFFFE
    VERNEEDNUM = 0x6FFFFFFF


# Section flags (sh_flags).
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

# Segment flags (p_flags).
PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

# Version-structure revision numbers.
VER_NEED_CURRENT = 1
VER_DEF_CURRENT = 1

# Special symbol-version indices in .gnu.version.
VER_NDX_LOCAL = 0
VER_NDX_GLOBAL = 1

# Symbol table constants.
SHN_UNDEF = 0
STB_GLOBAL = 1
STT_FUNC = 2

# vd_flags values.
VER_FLG_BASE = 0x1
VER_FLG_WEAK = 0x2


def elf_hash(name: str | bytes) -> int:
    """The classic System V ELF hash, used for version-name hashes.

    This is the ``elf_hash`` function from the SysV ABI; glibc stores the
    hash of each version name in verneed/verdef auxiliary entries.
    """
    if isinstance(name, str):
        name = name.encode("ascii")
    h = 0
    for byte in name:
        h = (h << 4) + byte
        g = h & 0xF0000000
        if g:
            h ^= g >> 24
        h &= ~g & 0xFFFFFFFF
    return h & 0xFFFFFFFF
