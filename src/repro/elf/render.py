"""Faithful text renderings of binutils output.

FEAM's implementation parses the *output* of ``objdump -p``,
``readelf -d``, ``readelf -V`` and ``readelf -p .comment``; this module
renders a parsed :class:`~repro.elf.reader.ElfFile` back into those
formats closely enough that text written by the emulation is
recognisable -- and parseable -- by someone who knows the real tools.

(The structured API in :mod:`repro.tools.toolbox` is what FEAM's
components consume; these renderers feed the human-facing report files
and the tests that pin our output against real binutils.)
"""

from __future__ import annotations

from repro.elf.constants import DynamicTag, elf_hash
from repro.elf.reader import ElfFile

_TAG_LABELS = {
    DynamicTag.NEEDED: "NEEDED",
    DynamicTag.SONAME: "SONAME",
    DynamicTag.RPATH: "RPATH",
    DynamicTag.RUNPATH: "RUNPATH",
    DynamicTag.STRTAB: "STRTAB",
    DynamicTag.STRSZ: "STRSZ",
    DynamicTag.SYMTAB: "SYMTAB",
    DynamicTag.SYMENT: "SYMENT",
    DynamicTag.VERSYM: "VERSYM",
    DynamicTag.VERNEED: "VERNEED",
    DynamicTag.VERNEEDNUM: "VERNEEDNUM",
    DynamicTag.VERDEF: "VERDEF",
    DynamicTag.VERDEFNUM: "VERDEFNUM",
}


def render_objdump_private(elf: ElfFile, filename: str = "a.out") -> str:
    """``objdump -p`` style output."""
    arch = elf.header.machine.display_name
    lines = [f"{filename}:     file format elf{elf.header.bits}-{arch}",
             ""]
    if elf.dynamic.entries:
        lines.append("Dynamic Section:")
        for soname in elf.dynamic.needed:
            lines.append(f"  NEEDED               {soname}")
        if elf.dynamic.soname:
            lines.append(f"  SONAME               {elf.dynamic.soname}")
        if elf.dynamic.rpath:
            lines.append(f"  RPATH                {elf.dynamic.rpath}")
        if elf.dynamic.runpath:
            lines.append(f"  RUNPATH              {elf.dynamic.runpath}")
    if elf.version_definitions:
        lines.append("")
        lines.append("Version definitions:")
        for index, vdef in enumerate(elf.version_definitions, start=1):
            flags = "0x01" if vdef.is_base else "0x00"
            lines.append(f"{index} {flags} 0x{elf_hash(vdef.name.name):08x} "
                         f"{vdef.name.name}")
    if elf.version_requirements:
        lines.append("")
        lines.append("Version References:")
        for req in elf.version_requirements:
            lines.append(f"  required from {req.filename}:")
            for i, version in enumerate(req.versions, start=2):
                lines.append(f"    0x{elf_hash(version.name):08x} "
                             f"0x00 {i:02d} {version.name}")
    return "\n".join(lines) + "\n"


def render_readelf_dynamic(elf: ElfFile) -> str:
    """``readelf -d`` style output."""
    entries = elf.dynamic.entries
    if not entries:
        return "There is no dynamic section in this file.\n"
    lines = [f"Dynamic section contains {len(entries) + 1} entries:",
             "  Tag        Type                         Name/Value"]
    strtab_lookup = {
        DynamicTag.NEEDED: lambda v: f"Shared library: [{v}]",
        DynamicTag.SONAME: lambda v: f"Library soname: [{v}]",
        DynamicTag.RPATH: lambda v: f"Library rpath: [{v}]",
        DynamicTag.RUNPATH: lambda v: f"Library runpath: [{v}]",
    }
    needed_iter = iter(elf.dynamic.needed)
    for entry in entries:
        tag = entry.tag_enum
        label = _TAG_LABELS.get(tag, f"0x{entry.tag:x}")
        if tag is DynamicTag.NEEDED:
            value = strtab_lookup[tag](next(needed_iter, "?"))
        elif tag is DynamicTag.SONAME and elf.dynamic.soname:
            value = strtab_lookup[tag](elf.dynamic.soname)
        elif tag is DynamicTag.RPATH and elf.dynamic.rpath:
            value = strtab_lookup[tag](elf.dynamic.rpath)
        elif tag is DynamicTag.RUNPATH and elf.dynamic.runpath:
            value = strtab_lookup[tag](elf.dynamic.runpath)
        else:
            value = f"0x{entry.value:x}"
        lines.append(f" 0x{entry.tag:016x} ({label:<12}) {value}")
    lines.append(f" 0x{0:016x} ({'NULL':<12}) 0x0")
    return "\n".join(lines) + "\n"


def render_readelf_versions(elf: ElfFile) -> str:
    """``readelf -V`` style output."""
    lines = []
    if elf.version_definitions:
        lines.append(f"Version definitions section contains "
                     f"{len(elf.version_definitions)} entries:")
        for index, vdef in enumerate(elf.version_definitions, start=1):
            flags = "BASE" if vdef.is_base else "none"
            lines.append(f"  {index:03d}: Rev: 1  Flags: {flags}  "
                         f"Index: {index}  Name: {vdef.name.name}")
        lines.append("")
    if elf.version_requirements:
        lines.append(f"Version needs section contains "
                     f"{len(elf.version_requirements)} entries:")
        for req in elf.version_requirements:
            lines.append(f"  Version: 1  File: {req.filename}  "
                         f"Cnt: {len(req.versions)}")
            for version in req.versions:
                lines.append(f"    Name: {version.name}  Flags: none")
        lines.append("")
    if not lines:
        return "No version information found in this file.\n"
    return "\n".join(lines).rstrip("\n") + "\n"


def render_readelf_comment(elf: ElfFile) -> str:
    """``readelf -p .comment`` style output."""
    if not elf.comment:
        return "section '.comment' was not dumped because it does not exist\n"
    lines = ["String dump of section '.comment':"]
    offset = 0
    for comment in elf.comment:
        lines.append(f"  [{offset:6x}]  {comment}")
        offset += len(comment) + 1
    return "\n".join(lines) + "\n"
