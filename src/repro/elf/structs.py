"""Typed views of ELF structures.

These dataclasses mirror the on-disk structures closely enough to round-trip
through :mod:`repro.elf.writer` and :mod:`repro.elf.reader`, while exposing
decoded (string) fields rather than string-table offsets.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from repro.elf.constants import (
    DynamicTag,
    ElfClass,
    ElfData,
    ElfMachine,
    ElfType,
    SectionType,
    SegmentType,
)


@dataclasses.dataclass(frozen=True)
class ElfHeader:
    """Decoded ELF file header (Ehdr)."""

    elf_class: ElfClass
    data: ElfData
    osabi: int
    etype: ElfType
    machine: ElfMachine
    entry: int
    phoff: int
    shoff: int
    flags: int
    ehsize: int
    phentsize: int
    phnum: int
    shentsize: int
    shnum: int
    shstrndx: int

    @property
    def bits(self) -> int:
        """Word length of the target architecture (32 or 64)."""
        return self.elf_class.bits


@dataclasses.dataclass(frozen=True)
class SectionHeader:
    """Decoded section header (Shdr) with its name resolved."""

    name: str
    sh_type: int
    flags: int
    addr: int
    offset: int
    size: int
    link: int
    info: int
    addralign: int
    entsize: int

    @property
    def type_enum(self) -> Optional[SectionType]:
        """The section type as a :class:`SectionType`, if known."""
        try:
            return SectionType(self.sh_type)
        except ValueError:
            return None


@dataclasses.dataclass(frozen=True)
class ProgramHeader:
    """Decoded program header (Phdr)."""

    p_type: int
    flags: int
    offset: int
    vaddr: int
    paddr: int
    filesz: int
    memsz: int
    align: int

    @property
    def type_enum(self) -> Optional[SegmentType]:
        """The segment type as a :class:`SegmentType`, if known."""
        try:
            return SegmentType(self.p_type)
        except ValueError:
            return None


@dataclasses.dataclass(frozen=True)
class DynamicEntry:
    """A raw dynamic-section entry (d_tag, d_val)."""

    tag: int
    value: int

    @property
    def tag_enum(self) -> Optional[DynamicTag]:
        """The tag as a :class:`DynamicTag`, if known."""
        try:
            return DynamicTag(self.tag)
        except ValueError:
            return None


@dataclasses.dataclass(frozen=True)
class SymbolVersion:
    """A dotted version name such as ``GLIBC_2.12`` or ``OMPI_1.4``.

    Comparable within the same namespace by numeric components, which is how
    FEAM computes the *required C library version* of a binary.
    """

    name: str

    _PATTERN = re.compile(r"^(?P<ns>[A-Za-z_][A-Za-z0-9_+-]*?)_(?P<ver>[0-9][0-9.]*)$")

    @property
    def namespace(self) -> Optional[str]:
        """Version namespace, e.g. ``GLIBC`` for ``GLIBC_2.12``."""
        m = self._PATTERN.match(self.name)
        return m.group("ns") if m else None

    @property
    def components(self) -> tuple[int, ...]:
        """Numeric version components, e.g. ``(2, 12)`` for ``GLIBC_2.12``."""
        m = self._PATTERN.match(self.name)
        if not m:
            return ()
        return tuple(int(part) for part in m.group("ver").split(".") if part)

    def is_glibc(self) -> bool:
        """True when this version ref names the GNU C library."""
        return self.namespace == "GLIBC"

    def __lt__(self, other: "SymbolVersion") -> bool:
        if self.namespace != other.namespace:
            return str(self.name) < str(other.name)
        return self.components < other.components


@dataclasses.dataclass(frozen=True)
class VersionRequirement:
    """A verneed entry: versions required from one shared library file."""

    filename: str
    versions: tuple[SymbolVersion, ...]


@dataclasses.dataclass(frozen=True)
class VersionDefinition:
    """A verdef entry: a version this object defines (for shared libraries)."""

    name: SymbolVersion
    is_base: bool = False
    parents: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class DynamicSymbol:
    """One entry of the dynamic symbol table (.dynsym).

    ``version`` is the resolved symbol-version name from ``.gnu.version``
    (None for unversioned/global symbols); ``defined`` distinguishes
    exports (st_shndx != SHN_UNDEF) from imports.
    """

    name: str
    defined: bool
    version: Optional[str] = None

    def render(self) -> str:
        """``nm -D`` style line."""
        kind = "T" if self.defined else "U"
        suffix = f"@{self.version}" if self.version else ""
        address = f"{0:016x}" if self.defined else " " * 16
        return f"{address} {kind} {self.name}{suffix}"


@dataclasses.dataclass(frozen=True)
class DynamicInfo:
    """Decoded view of the dynamic section relevant to FEAM."""

    needed: tuple[str, ...] = ()
    soname: Optional[str] = None
    rpath: Optional[str] = None
    runpath: Optional[str] = None
    entries: tuple[DynamicEntry, ...] = ()
