"""Counters, gauges and fixed-bucket histograms.

The :class:`MetricsRegistry` is the numerical side of the observability
layer: it absorbs the evaluation engine's cache hit/miss tallies
(mirrored as ``engine.cache.*`` counters next to the legacy
:class:`~repro.core.engine.CacheStats`) and extends them with
histograms over per-cell costs, per-site worker busy time, resolution
staging volumes and anything else the instrumentation observes.

Histograms are cheap by construction: a fixed bucket ladder (powers-of-
ten decades split at 1/2/5), a running count/sum/min/max, and quantile
*estimates* read off the cumulative bucket counts -- p50/p95 are bucket
upper bounds, not exact order statistics, which keeps ``observe`` O(len
(buckets)) with no sample retention.

All instruments are thread-safe; the null registry used when no
collector is installed absorbs every call through shared no-op
instances.
"""

from __future__ import annotations

import threading
from typing import Optional

#: Default histogram ladder: 1/2/5 per decade from 1 ms to 1000 s.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)
    for base in (1.0, 2.0, 5.0)
) + (1000.0,)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with p50/p95/max summaries."""

    __slots__ = ("name", "buckets", "_lock", "_counts",
                 "count", "total", "min", "max")

    def __init__(self, name: str,
                 buckets: Optional[tuple[float, ...]] = None) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        self._lock = threading.Lock()
        # One count per bucket upper bound, plus the overflow bucket.
        self._counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate.

        Returns the upper bound of the bucket holding the q-th
        observation, clamped into ``[min, max]`` so a single sample
        (or any bucket coarser than the data) reports an observed
        value, never an edge the data never reached; observations
        beyond the last bucket edge land in the overflow bucket and
        report the true ``max``.  ``q`` is clamped to ``[0, 1]``;
        an empty histogram returns ``None``.
        """
        q = min(1.0, max(0.0, q))
        with self._lock:
            if self.count == 0:
                return None
            # rank >= 1: q=0 still selects the first observation.
            rank = max(1.0, q * self.count)
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if i < len(self.buckets):
                        estimate = self.buckets[i]
                        if self.max is not None:
                            estimate = min(estimate, self.max)
                        if self.min is not None:
                            estimate = max(estimate, self.min)
                        return estimate
                    return self.max
            return self.max

    def bucket_counts(self) -> list[tuple[Optional[float], int]]:
        """Cumulative (upper_bound, count) pairs, Prometheus-style.

        One entry per bucket edge plus a trailing ``(None, count)``
        overflow entry (the ``+Inf`` bucket); counts are cumulative,
        so the last entry always equals ``count``.
        """
        with self._lock:
            pairs: list[tuple[Optional[float], int]] = []
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, self._counts):
                cumulative += bucket_count
                pairs.append((bound, cumulative))
            pairs.append((None, self.count))
            return pairs

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Named instruments, created on first use, rendered sorted."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  buckets: Optional[tuple[float, ...]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets)
            return instrument

    # -- views ---------------------------------------------------------------------

    def instruments(self) -> tuple[dict, dict, dict]:
        """Shallow copies of the (counters, gauges, histograms) maps.

        The instrument objects themselves are shared (and individually
        thread-safe); the copies mean iteration never races instrument
        creation.  The Prometheus exposition reads raw bucket counts
        through this, which ``to_dict`` summaries do not carry.
        """
        with self._lock:
            return (dict(self._counters), dict(self._gauges),
                    dict(self._histograms))

    def absorb_cache_stats(self, stats, prefix: str = "engine.cache") -> None:
        """Mirror a :class:`~repro.core.engine.CacheStats` snapshot.

        Sets ``<prefix>.<layer>.<hits|misses>`` counters to the
        snapshot's tallies (used when stats were accumulated outside an
        installed collector and need to be surfaced afterwards).
        """
        for layer in ("description", "discovery", "evaluation"):
            for word in ("hits", "misses"):
                counter = self.counter(f"{prefix}.{layer}.{word}")
                with counter._lock:
                    counter._value = getattr(stats, f"{layer}_{word}")

    def to_dict(self) -> dict:
        """A JSON-ready snapshot of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value
                         for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(histograms.items())},
        }

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (the ``feam stats`` output).

        With *limit*, each section shows at most that many rows (name
        order) and closes with an explicit "... and K more" footer --
        a fleet run mints hundreds of instruments, and an uncapped
        dump buries the interesting ones.
        """
        snapshot = self.to_dict()
        lines: list[str] = []

        def footer(total: int) -> None:
            if limit is not None and total > limit:
                lines.append(f"  ... and {total - limit} more row(s) "
                             f"(raise --top to see them)")

        def capped(section: dict) -> list:
            items = list(section.items())
            return items[:limit] if limit is not None else items

        if snapshot["counters"]:
            lines.append("counters:")
            width = max(len(n) for n in snapshot["counters"])
            for name, value in capped(snapshot["counters"]):
                lines.append(f"  {name:<{width}}  {value}")
            footer(len(snapshot["counters"]))
        if snapshot["gauges"]:
            lines.append("gauges:")
            width = max(len(n) for n in snapshot["gauges"])
            for name, value in capped(snapshot["gauges"]):
                lines.append(f"  {name:<{width}}  {value:.3f}")
            footer(len(snapshot["gauges"]))
        if snapshot["histograms"]:
            lines.append("histograms:")
            for name, summary in capped(snapshot["histograms"]):
                lines.append(
                    f"  {name}  count={summary['count']} "
                    f"mean={_fmt(summary['mean'])} p50={_fmt(summary['p50'])} "
                    f"p95={_fmt(summary['p95'])} max={_fmt(summary['max'])}")
            footer(len(snapshot["histograms"]))
        return "\n".join(lines) if lines else "(no metrics collected)"


def _fmt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.4g}"


class _NullInstrument:
    """Absorbs counter/gauge/histogram calls when nothing is installed."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The no-collector registry: every instrument is the shared no-op."""

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None) -> _NullInstrument:
        return NULL_INSTRUMENT

    def absorb_cache_stats(self, stats, prefix: str = "engine.cache") -> None:
        pass

    def instruments(self) -> tuple[dict, dict, dict]:
        return {}, {}, {}

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render(self, limit=None) -> str:
        return "(no metrics collected)"
