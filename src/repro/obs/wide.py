"""Wide events: one flat, schema-versioned record per evaluated cell.

At paper scale a span tree per cell is affordable; at fleet scale
(thousands of cells per run) it is not, and most triage questions --
"which cells degraded, on which sites, how slow were they" -- never
need the tree.  A *wide event* collapses everything the engine knows
about one finished cell into a single flat record: identity (site,
binary, content group), verdict (outcome word, per-determinant
verdicts), provenance (cache layers hit, retries, fault kind, breaker
state, resume/steal/worker facts), and both clocks (simulated FEAM
seconds and real wall seconds).  Wide events are the always-on layer;
full span trees are kept only for the cells the tail sampler elects
(:mod:`repro.obs.sampling`).

The :class:`WideEventSink` buffers records in a bounded ring (oldest
records drop once the ring is full, counted in ``obs.wide.dropped``)
and optionally streams each record to a JSONL file as it is emitted,
flushed per line like :class:`~repro.core.resilience.MatrixJournal`,
so a killed run loses at most the in-flight cell.  :func:`parse_jsonl`
/ :func:`read_jsonl` tolerate a torn final line the same way the
journal loader does.

The record layout is versioned: every record carries ``"schema":
SCHEMA_VERSION``.  Consumers (``feam query``, the telemetry gate)
should ignore unknown fields and refuse records from a *newer* schema
rather than misread them.

This module is part of the strictly-lower ``repro.obs`` layer: it
never imports from ``repro.core``.  The engine side that knows how to
flatten a matrix cell into a record lives in
:func:`repro.core.engine.wide_record`.
"""

from __future__ import annotations

import collections
import threading
from typing import Iterable, Optional

from repro.util import jsonl as _jsonl

#: Version of the wide-event record layout.  Bump when a field changes
#: meaning or disappears; adding fields is backwards-compatible.
SCHEMA_VERSION = 1

#: Fields every schema-1 record carries (pinned by tests so producers
#: and consumers cannot silently drift apart).
CORE_FIELDS = (
    "schema", "site", "binary", "outcome", "ready", "faulted",
    "sim_seconds", "wall_seconds", "worker",
)


class WideEventSink:
    """A bounded, thread-safe buffer of wide-event records.

    *ring_size* bounds memory: once full, the oldest record is evicted
    per emit (``dropped`` counts evictions).  With *path*, every record
    is also appended to a JSONL file and flushed immediately, so the
    on-disk stream is complete even when the ring is not.

    Counters/gauges (no-ops when no collector is installed):

    * ``obs.wide.emitted`` -- records emitted;
    * ``obs.wide.dropped`` -- records evicted from the ring;
    * ``obs.wide.lag`` (gauge) -- records currently buffered in the
      ring and not yet drained by :meth:`drain` (how far a consumer
      that reads the ring is behind the producer).
    """

    def __init__(self, ring_size: int = 65536,
                 path: Optional[str] = None) -> None:
        self.ring_size = max(1, int(ring_size))
        self._ring: collections.deque = collections.deque(
            maxlen=self.ring_size)
        self._lock = threading.Lock()
        self.path = path
        self._appender = (_jsonl.JsonlAppender(path)
                          if path is not None else None)
        self.emitted = 0
        self.dropped = 0

    def emit(self, record: dict) -> None:
        """Buffer one record (and stream it to the file, if any)."""
        record.setdefault("schema", SCHEMA_VERSION)
        with self._lock:
            evicted = len(self._ring) == self.ring_size
            self._ring.append(record)
            self.emitted += 1
            if evicted:
                self.dropped += 1
            if self._appender is not None:
                self._appender.append(record)
            buffered = len(self._ring)
        from repro import obs
        obs.counter("obs.wide.emitted").inc()
        if evicted:
            obs.counter("obs.wide.dropped").inc()
        obs.gauge("obs.wide.lag").set(buffered)

    def events(self) -> list[dict]:
        """A snapshot of the buffered records, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> list[dict]:
        """Pop and return every buffered record (resets the lag gauge)."""
        with self._lock:
            drained = list(self._ring)
            self._ring.clear()
        from repro import obs
        obs.gauge("obs.wide.lag").set(0)
        return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        with self._lock:
            if self._appender is not None:
                self._appender.close()
                self._appender = None

    def __enter__(self) -> "WideEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def export_jsonl(self) -> str:
        """The buffered records as JSONL text (oldest first)."""
        return "".join(_jsonl.dump_line(record) + "\n"
                       for record in self.events())

    def write_jsonl(self, path: str) -> int:
        """Write the buffered records to *path*; returns the count."""
        return _jsonl.write_jsonl(path, self.events())


def _refuse_newer_schema(lineno: int, record: dict) -> None:
    schema = record.get("schema", SCHEMA_VERSION)
    if isinstance(schema, int) and schema > SCHEMA_VERSION:
        raise ValueError(
            f"wide-event line {lineno}: schema {schema} is newer "
            f"than this reader (understands <= {SCHEMA_VERSION})")


def parse_jsonl(text: str, strict: bool = False) -> list[dict]:
    """Decode wide-event JSONL back into records.

    Undecodable lines are skipped (the torn tail of a killed run,
    mirroring ``MatrixJournal.load``) unless *strict*; records from a
    newer schema than this module understands raise ``ValueError``
    either way -- misreading them would be worse than failing.
    """
    return _jsonl.parse_jsonl(text, strict=strict,
                              check=_refuse_newer_schema,
                              label="wide-event")


def read_jsonl(path: str, strict: bool = False) -> list[dict]:
    """Load a wide-event JSONL file (torn-tail tolerant)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read(), strict=strict)


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write *records* to *path* as JSONL; returns the count."""
    return _jsonl.write_jsonl(path, records)
