"""``repro.obs`` -- structured tracing, metrics and events for FEAM.

The observability layer makes every evaluation explainable after the
fact: which determinant fired, what it cost (simulated *and* wall
time), where cache time went, which library copies were staged and why
a cell rendered UNKNOWN.  It is a strict lower layer -- nothing here
imports from the rest of ``repro`` -- and it is *off by default*: the
module-level facade delegates to a process-wide :class:`Collector`
that, until one is installed, is a set of shared null objects whose
per-call cost is a few hundred nanoseconds (pinned by the
micro-benchmark in ``tests/test_obs_tracer.py``).

Usage::

    from repro import obs

    with obs.capture() as collector:
        engine.evaluate_matrix(binaries, sites)
    print(obs.export.render_span_tree(collector.spans))
    print(collector.metrics.render())

Instrumented code calls the facade directly::

    with obs.span("engine.cell", site=site.name) as sp:
        ...
        sp.set_attrs(ready=report.ready)
    obs.counter("engine.cache.evaluation.misses").inc()
    obs.event("resolution.staged", soname=soname, bytes=size)
"""

from __future__ import annotations

import contextlib
import time
from typing import Optional

from repro.obs import export  # noqa: F401  (re-exported submodule)
from repro.obs.events import EventLog, NullEventLog
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracer import NullTracer, Span, Tracer

__all__ = [
    "Collector",
    "alerts",
    "analyze",
    "anomaly",
    "capture",
    "counter",
    "current",
    "event",
    "export",
    "gauge",
    "histogram",
    "install",
    "is_active",
    "metrics",
    "sampling",
    "serve",
    "slo",
    "span",
    "store",
    "uninstall",
    "watch",
    "wide",
]


class Collector:
    """One in-memory observability session: tracer + metrics + events."""

    active = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.tracer = Tracer(clock)
        self.metrics = MetricsRegistry()
        self.events = EventLog(clock)

    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans

    def export_jsonl(self) -> str:
        return export.export_jsonl(self)

    def render_tree(self) -> str:
        return export.render_span_tree(self.tracer.spans)


class _NullCollector:
    """The default: absorbs everything, allocates nothing per call."""

    active = False

    def __init__(self) -> None:
        self.tracer = NullTracer()
        self.metrics = NullMetrics()
        self.events = NullEventLog()

    @property
    def spans(self) -> tuple:
        return ()


_NULL = _NullCollector()
_current = _NULL


def current():
    """The installed collector (the shared null collector by default)."""
    return _current


def is_active() -> bool:
    return _current.active


def install(collector: Collector) -> None:
    """Make *collector* the process-wide observability sink."""
    global _current
    _current = collector


def uninstall() -> None:
    global _current
    _current = _NULL


@contextlib.contextmanager
def capture(collector: Optional[Collector] = None):
    """Install a collector for the duration of a ``with`` block.

    Nests: the previously installed collector (or the null default) is
    restored on exit.
    """
    installed = collector if collector is not None else Collector()
    previous = _current
    install(installed)
    try:
        yield installed
    finally:
        install(previous)


# -- the hot-path facade -----------------------------------------------------------


def span(name: str, parent: Optional[Span] = None, **attrs):
    """Open a span on the installed tracer (no-op span by default)."""
    return _current.tracer.span(name, parent=parent, **attrs)


def event(name: str, **attrs) -> None:
    """Record a discrete event on the installed event log."""
    _current.events.emit(name, **attrs)


def metrics():
    """The installed metrics registry (null registry by default)."""
    return _current.metrics


def counter(name: str):
    return _current.metrics.counter(name)


def gauge(name: str):
    return _current.metrics.gauge(name)


def histogram(name: str):
    return _current.metrics.histogram(name)


# Analysis layers over the collector, importable as ``obs.analyze`` etc.
# (at the bottom: ``slo``, ``serve`` and ``wide`` call back into this
# facade).
from repro.obs import alerts  # noqa: E402,F401
from repro.obs import analyze  # noqa: E402,F401
from repro.obs import anomaly  # noqa: E402,F401
from repro.obs import compare  # noqa: E402,F401
from repro.obs import ledger  # noqa: E402,F401
from repro.obs import sampling  # noqa: E402,F401
from repro.obs import slo  # noqa: E402,F401
from repro.obs import serve  # noqa: E402,F401
from repro.obs import store  # noqa: E402,F401
from repro.obs import watch  # noqa: E402,F401
from repro.obs import wide  # noqa: E402,F401
