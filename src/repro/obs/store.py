"""The queryable wide-event store behind ``feam query``.

A 4,000-cell fleet run emits 4,000 wide events
(:mod:`repro.obs.wide`); post-hoc triage is a filter/aggregate over
that JSONL, not an eyeball pass over the grid::

    feam query wide_events.jsonl --where outcome=unknown --by site --top 20
    feam query wide_events.jsonl --where site=gen-0042 --agg p95:wall_seconds
    feam query wide_events.jsonl --by outcome --agg count --agg p50:sim_seconds

Three small pieces:

* :func:`parse_where` -- ``field OP value`` clauses (``=``, ``!=``,
  ``>``, ``>=``, ``<``, ``<=``).  Equality compares case-insensitively
  on strings (``outcome=UNKNOWN`` matches ``unknown``); ordering
  clauses compare numerically and skip records where the field is
  absent or non-numeric.
* :func:`parse_agg` -- aggregations: ``count`` plus ``min``/``max``/
  ``mean``/``sum``/``p50``/``p95``/``p99`` over any numeric field
  (``p95:wall_seconds``).  Percentiles are exact order statistics --
  the store holds raw records, unlike the fixed-bucket histograms.
* :func:`run_query` -- filter, group by a field (or one global group),
  aggregate, rank by the first aggregation, cap at ``top`` rows.
  :func:`render_result` prints the table with an explicit
  "... and K more rows" footer instead of dumping every group.
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import Optional, Sequence

_WHERE_RE = re.compile(
    r"^(?P<field>[A-Za-z0-9_.\-]+)\s*"
    r"(?P<op>!=|>=|<=|=|>|<)\s*"
    r"(?P<value>.+)$")

_AGG_RE = re.compile(
    r"^(?P<fn>count|sum|min|max|mean|p50|p95|p99)"
    r"(?::(?P<field>[A-Za-z0-9_.\-]+))?$")

_ORDERED_OPS = (">", ">=", "<", "<=")


@dataclasses.dataclass(frozen=True)
class WhereClause:
    """One ``field OP value`` filter."""

    field: str
    op: str
    value: str

    @property
    def name(self) -> str:
        return f"{self.field}{self.op}{self.value}"

    def matches(self, record: dict) -> bool:
        observed = record.get(self.field)
        if self.op in _ORDERED_OPS:
            threshold = _as_number(self.value)
            number = _as_number(observed)
            if threshold is None or number is None:
                return False
            return {
                ">": number > threshold,
                ">=": number >= threshold,
                "<": number < threshold,
                "<=": number <= threshold,
            }[self.op]
        equal = _loosely_equal(observed, self.value)
        return equal if self.op == "=" else not equal


@dataclasses.dataclass(frozen=True)
class Aggregation:
    """One output column: ``count`` or ``fn`` over a numeric field."""

    fn: str
    field: Optional[str] = None

    @property
    def name(self) -> str:
        return self.fn if self.field is None else f"{self.fn}:{self.field}"

    def compute(self, records: Sequence[dict]) -> Optional[float]:
        if self.fn == "count":
            return float(len(records))
        values = sorted(
            number for number in (_as_number(r.get(self.field))
                                  for r in records)
            if number is not None)
        if not values:
            return None
        if self.fn == "sum":
            return float(sum(values))
        if self.fn == "min":
            return values[0]
        if self.fn == "max":
            return values[-1]
        if self.fn == "mean":
            return sum(values) / len(values)
        quantile = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[self.fn]
        # Exact order statistic: the ceil(q*n)-th smallest value.
        rank = max(1, math.ceil(quantile * len(values)))
        return values[rank - 1]


def _as_number(value) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def _loosely_equal(observed, wanted: str) -> bool:
    """Case-insensitive string equality, numeric-aware, None-aware."""
    if observed is None:
        return wanted.lower() in ("none", "null", "")
    if isinstance(observed, bool):
        return wanted.lower() in (("true", "1", "yes") if observed
                                  else ("false", "0", "no"))
    number = _as_number(wanted)
    if isinstance(observed, (int, float)) and number is not None:
        return float(observed) == number
    return str(observed).lower() == wanted.lower()


def parse_where(text: str) -> WhereClause:
    """Parse one ``field OP value`` clause."""
    match = _WHERE_RE.match(text.strip())
    if match is None:
        raise ValueError(
            f"unparsable --where clause {text!r} (expected "
            f"'field=value', 'field!=value' or 'field>=number')")
    return WhereClause(field=match.group("field"), op=match.group("op"),
                      value=match.group("value").strip())


def parse_agg(text: str) -> Aggregation:
    """Parse one aggregation spec (``count`` or ``fn:field``)."""
    match = _AGG_RE.match(text.strip())
    if match is None:
        raise ValueError(
            f"unparsable --agg spec {text!r} (expected 'count' or "
            f"'sum|min|max|mean|p50|p95|p99:field')")
    fn, field = match.group("fn"), match.group("field")
    if fn != "count" and field is None:
        raise ValueError(f"--agg {fn} needs a field: '{fn}:wall_seconds'")
    if fn == "count" and field is not None:
        raise ValueError("--agg count takes no field")
    return Aggregation(fn=fn, field=field)


@dataclasses.dataclass
class QueryResult:
    """Filtered, grouped, aggregated wide events."""

    total: int                      # records in the store
    matched: int                    # records surviving the filters
    by: Optional[str]               # group-by field (None = one group)
    aggs: tuple[Aggregation, ...]
    #: (group value, {agg name: value}, group size), ranked.
    rows: list[tuple[str, dict, int]]
    truncated: int = 0              # rows beyond the --top cap

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "matched": self.matched,
            "by": self.by,
            "aggregations": [agg.name for agg in self.aggs],
            "rows": [{"group": group, "records": size, **values}
                     for group, values, size in self.rows],
            "truncated_rows": self.truncated,
        }


def run_query(records: Sequence[dict],
              where: Sequence[WhereClause] = (),
              by: Optional[str] = None,
              aggs: Sequence[Aggregation] = (),
              top: int = 20) -> QueryResult:
    """Filter *records*, group, aggregate, rank, cap at *top* rows.

    Rows rank by the first aggregation descending (ties broken by
    group value, so results are stable across runs); with no
    aggregations given, ``count`` is implied.
    """
    aggs = tuple(aggs) or (Aggregation(fn="count"),)
    matched = [record for record in records
               if all(clause.matches(record) for clause in where)]
    groups: dict[str, list[dict]] = {}
    if by is None:
        if matched:
            groups["*"] = matched
    else:
        for record in matched:
            key = record.get(by)
            key = "(absent)" if key is None else str(key)
            groups.setdefault(key, []).append(record)

    rows = []
    for group, members in groups.items():
        values = {agg.name: agg.compute(members) for agg in aggs}
        rows.append((group, values, len(members)))
    first = aggs[0].name
    rows.sort(key=lambda row: (
        -(row[1][first] if row[1][first] is not None else float("-inf")),
        row[0]))
    top = max(1, top)
    truncated = max(0, len(rows) - top)
    return QueryResult(total=len(records), matched=len(matched), by=by,
                       aggs=aggs, rows=rows[:top], truncated=truncated)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_result(result: QueryResult,
                  where: Sequence[WhereClause] = ()) -> str:
    """The ``feam query`` table (with the truncation footer)."""
    lines = []
    clause_text = " and ".join(clause.name for clause in where) or "all"
    lines.append(f"wide events: {result.matched}/{result.total} match "
                 f"[{clause_text}]")
    if not result.rows:
        lines.append("(no matching events)")
        return "\n".join(lines)
    group_header = result.by or "group"
    width = max([len(group_header)]
                + [len(group) for group, _, _ in result.rows])
    agg_names = [agg.name for agg in result.aggs]
    header = f"{group_header:<{width}}"
    for name in agg_names:
        header += f"  {name:>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for group, values, _size in result.rows:
        row = f"{group:<{width}}"
        for name in agg_names:
            row += f"  {_fmt(values[name]):>14}"
        lines.append(row)
    if result.truncated:
        lines.append(f"... and {result.truncated} more row(s) "
                     f"(raise --top to see them)")
    return "\n".join(lines)
