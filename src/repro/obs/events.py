"""The event log: discrete facts that are not durations.

Spans time *operations*; events record *moments* -- a determinant
outcome being amended after later evidence, a site's caches being
invalidated, one library copy landing in a staging directory.  Each
event carries a name, a monotonic sequence number (total order across
threads), the emitting thread, the wall-clock offset and free-form
attributes.
"""

from __future__ import annotations

import dataclasses
import threading
import time


@dataclasses.dataclass(frozen=True)
class Event:
    """One discrete observability fact."""

    name: str
    seq: int
    wall: float
    thread: str
    attrs: dict


class EventLog:
    """Append-only, thread-safe event collection."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self.events: list[Event] = []

    def emit(self, name: str, **attrs) -> Event:
        with self._lock:
            self._seq += 1
            event = Event(
                name=name, seq=self._seq, wall=self._clock(),
                thread=threading.current_thread().name, attrs=attrs)
            self.events.append(event)
        return event

    def named(self, name: str) -> list[Event]:
        with self._lock:
            return [e for e in self.events if e.name == name]


class NullEventLog:
    """Absorbs emissions when no collector is installed."""

    events: tuple = ()

    def emit(self, name: str, **attrs) -> None:
        return None

    def named(self, name: str) -> list:
        return []
