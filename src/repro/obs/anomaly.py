"""Statistical anomaly detection over wide-event streams.

Burn-rate alerts (:mod:`repro.obs.alerts`) catch what a threshold
already names; this module catches what no threshold anticipated: a
*content group* whose behaviour left the fleet's envelope.  The
method is the robust median/MAD z-score (Iglewicz--Hoaglin): for each
feature, the per-group means are compared against the median of all
groups, scaled by the median absolute deviation -- both statistics
shrug off the very outliers they are hunting, where a mean/stddev
score would be dragged toward them.

The layer split mirrors the wide-event layer itself: wide events
arrive here as plain dicts and the *extractor* mapping one record to
numeric features is injected by the caller --
``repro.core.engine.anomaly_features`` for real matrix streams
(det_* verdict rates, sim latencies, cache hit rates; never wall
clocks), anything test code likes otherwise.

Determinism: group iteration is sorted, the z-score cutoff carries a
tiny seed-keyed jitter (:func:`repro.util.hashing.stable_uniform`) so
borderline ties resolve identically for identical seeds, and no
statistic reads a wall clock -- same-seed runs produce byte-identical
anomaly (and therefore alert) streams.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.util.hashing import stable_uniform

#: Robust z-score magnitude above which a group is anomalous.  3.5 is
#: the standard Iglewicz--Hoaglin recommendation.
DEFAULT_THRESHOLD = 3.5

#: Fewer groups than this and the median/MAD have no authority; the
#: detector stays silent rather than flagging half the population.
MIN_GROUPS = 4

#: The consistency constant making MAD comparable to a standard
#: deviation under normality (1/1.4826).
_MAD_SCALE = 0.6745


@dataclasses.dataclass(frozen=True)
class Anomaly:
    """One feature of one group outside the fleet envelope."""

    feature: str
    group: str
    value: float
    median: float
    mad: float
    zscore: float
    severity: str                 # "warn", "critical" beyond 2x cutoff

    @property
    def key(self) -> str:
        """The alert dedup key this anomaly raises."""
        return f"anomaly:{self.feature}:{self.group}"

    def to_dict(self) -> dict:
        return {
            "feature": self.feature,
            "group": self.group,
            "value": self.value,
            "median": self.median,
            "mad": self.mad,
            "zscore": self.zscore,
            "severity": self.severity,
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def group_features(records: Sequence[dict],
                   extract: Callable[[dict], dict],
                   group_field: str = "content_group") -> dict:
    """Per-group feature means: ``{group: {feature: mean}}``.

    Groups come from *group_field* (falling back to ``site`` and then
    one global bucket -- old streams without content groups still
    work), features from the injected *extract* callable over each
    record.  A feature absent from a record simply does not enter
    that record's contribution.
    """
    sums: dict[str, dict[str, float]] = {}
    counts: dict[str, dict[str, int]] = {}
    for record in records:
        group = record.get(group_field) or record.get("site") \
            or "(ungrouped)"
        group = str(group)
        features = extract(record)
        group_sums = sums.setdefault(group, {})
        group_counts = counts.setdefault(group, {})
        for feature, value in features.items():
            if not isinstance(value, (int, float)):
                continue
            group_sums[feature] = group_sums.get(feature, 0.0) \
                + float(value)
            group_counts[feature] = group_counts.get(feature, 0) + 1
    return {group: {feature: round(total / counts[group][feature], 9)
                    for feature, total in sorted(features.items())}
            for group, features in sorted(sums.items())}


def robust_zscores(by_group: dict,
                   threshold: float = DEFAULT_THRESHOLD,
                   seed: int = 0,
                   min_groups: int = MIN_GROUPS) -> list[Anomaly]:
    """Median/MAD z-scores over per-group feature means.

    For every feature observed in at least *min_groups* groups:
    ``z = 0.6745 * (x - median) / MAD``.  A zero MAD (more than half
    the groups identical) yields no scale to judge deviation by, so
    the feature is skipped -- a detector with no envelope must stay
    quiet, not page on everything.  The cutoff carries a seed-keyed
    jitter of +-5e-7 so exact-tie comparisons resolve identically for
    identical seeds.
    """
    features: dict[str, list[tuple[str, float]]] = {}
    for group, values in sorted(by_group.items()):
        for feature, value in sorted(values.items()):
            features.setdefault(feature, []).append((group, value))

    anomalies: list[Anomaly] = []
    for feature, pairs in sorted(features.items()):
        if len(pairs) < max(2, min_groups):
            continue
        values = [value for _group, value in pairs]
        median = _median(values)
        mad = _median([abs(value - median) for value in values])
        if mad == 0:
            continue
        cutoff = threshold + (stable_uniform(
            "anomaly-threshold", seed, feature) - 0.5) * 1e-6
        for group, value in pairs:
            zscore = _MAD_SCALE * (value - median) / mad
            if abs(zscore) <= cutoff:
                continue
            anomalies.append(Anomaly(
                feature=feature, group=group,
                value=round(value, 9), median=round(median, 9),
                mad=round(mad, 9), zscore=round(zscore, 6),
                severity=("critical" if abs(zscore) > 2 * cutoff
                          else "warn")))
    anomalies.sort(key=lambda a: (-abs(a.zscore), a.feature, a.group))
    return anomalies


def detect(records: Sequence[dict],
           extract: Callable[[dict], dict],
           threshold: float = DEFAULT_THRESHOLD,
           seed: int = 0,
           group_field: str = "content_group",
           min_groups: int = MIN_GROUPS) -> list[Anomaly]:
    """The full pass: group, aggregate, score.

    *min_groups* overrides :data:`MIN_GROUPS` (tests on tiny fleets);
    everything else is the two stages above composed.
    """
    by_group = group_features(records, extract, group_field=group_field)
    return robust_zscores(by_group, threshold=threshold, seed=seed,
                          min_groups=min_groups)


__all__ = [
    "DEFAULT_THRESHOLD", "MIN_GROUPS", "Anomaly", "group_features",
    "robust_zscores", "detect",
]
