"""Tail-based span sampling: keep the trees that explain something.

Head sampling decides *before* an operation runs whether to trace it;
tail sampling decides *after*, when the outcome is known.  For a fleet
matrix that is the only defensible policy: the interesting cells --
the ones that degraded, faulted, or blew the latency objective -- are
precisely the ones a head sampler would have dropped with probability
(N-1)/N.

The policy here keeps a cell's full span subtree when any of:

* the cell **degraded** -- its verdict is ``unknown`` (at least one
  determinant could not be determined), the fleet's triage signal;
* the cell **faulted** -- it carries failure provenance (injected
  fault, retries exhausted, quarantine);
* the cell **breached the latency SLO** -- its wall time exceeded
  ``latency_slo_seconds`` (the per-cell p95 objective from
  :data:`repro.obs.slo.DEFAULT_RULES`);
* the cell fell in the **seeded head sample** -- a deterministic
  1-in-N draw via :func:`repro.util.hashing.stable_uniform` over
  ``(seed, site, binary)``, so the kept set is byte-identical across
  processes and reruns (the same idiom that makes fleets and fault
  plans reproducible).

Everything else keeps only its wide event
(:mod:`repro.obs.wide`); the spans are discarded through
:meth:`repro.obs.tracer.Tracer.discard_subtrees`.  The drop rate is
provable from counters: ``obs.sampling.kept`` + ``obs.sampling.dropped``
always equals the number of decisions, and ``obs.sampling.kept.<reason>``
breaks the kept set down by cause.

Note the one deliberately non-deterministic clause: the SLO breach
reads the *wall* clock, so a run on a loaded machine may keep more
trees than an idle one.  That is the point of an SLO clause -- but it
is why determinism tests pin ``latency_slo_seconds`` high enough that
only the seeded clauses fire.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.util.hashing import stable_uniform

#: Decision reasons, in evaluation order (first match wins).
REASON_FAULTED = "faulted"
REASON_DEGRADED = "degraded"
REASON_SLO_BREACH = "slo-breach"
REASON_HEAD_SAMPLE = "head-sample"
REASON_DROPPED = "dropped"

KEEP_REASONS = (REASON_FAULTED, REASON_DEGRADED, REASON_SLO_BREACH,
                REASON_HEAD_SAMPLE)


@dataclasses.dataclass(frozen=True)
class SamplingDecision:
    """One cell's verdict: keep its span subtree, or only the wide event."""

    keep: bool
    reason: str

    def __bool__(self) -> bool:
        return self.keep


@dataclasses.dataclass(frozen=True)
class SamplingPolicy:
    """The tail-sampling knobs for one run.

    *seed* keys the deterministic head sample; *head_n* keeps roughly
    one cell in N (0 disables the head sample entirely);
    *latency_slo_seconds* is the wall-clock budget above which a cell's
    tree is always kept (``inf``/very large disables the clause).
    """

    seed: int = 0
    head_n: int = 100
    latency_slo_seconds: float = 2.0

    def head_sampled(self, site: str, binary: str) -> bool:
        """The seeded 1-in-N draw for one cell (process-independent)."""
        if self.head_n <= 0:
            return False
        return stable_uniform(
            "tail-sample", self.seed, site, binary) < 1.0 / self.head_n

    def decide(self, site: str, binary: str, outcome: str,
               faulted: bool,
               wall_seconds: Optional[float] = None) -> SamplingDecision:
        """Keep or drop one finished cell's span subtree.

        *outcome* is the grid word (``ready``/``unknown``/``no``);
        ``unknown`` counts as degraded.  *wall_seconds* may be None for
        cells that never ran (restored from a journal) -- the SLO
        clause then cannot fire.
        """
        if faulted:
            return SamplingDecision(True, REASON_FAULTED)
        if outcome == "unknown":
            return SamplingDecision(True, REASON_DEGRADED)
        if (wall_seconds is not None
                and wall_seconds > self.latency_slo_seconds):
            return SamplingDecision(True, REASON_SLO_BREACH)
        if self.head_sampled(site, binary):
            return SamplingDecision(True, REASON_HEAD_SAMPLE)
        return SamplingDecision(False, REASON_DROPPED)

    @staticmethod
    def from_config(config, seed: int = 0) -> "SamplingPolicy":
        """A policy from :class:`~repro.core.config.FeamConfig` knobs."""
        return SamplingPolicy(
            seed=seed,
            head_n=config.sampling_head_n,
            latency_slo_seconds=config.sampling_latency_slo_seconds)
