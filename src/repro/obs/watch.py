"""The live fleet dashboard behind ``feam watch``.

A 1,000-site matrix takes tens of seconds; ``feam watch`` shows it
moving: cells per second, queue depth, per-shard cache hit rates,
breaker states and a rolling latency histogram, re-rendered in place
every interval.  The data path is *snapshots*, not callbacks: each
frame folds one :func:`sample` of a metrics registry (taken locally
from the installed collector, or fetched from a running ``feam
serve``'s ``/snapshot`` endpoint) against the previous one, so the
renderer works identically attached to a live process, driving its
own run, or replaying recorded samples in tests.

Terminal behaviour degrades honestly: on a TTY the dashboard redraws
in place (cursor-up + erase-line ANSI codes); when stdout is a pipe or
a CI log it prints one plain summary line per interval instead --
``watch`` output must never corrupt a log file with control codes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

#: Bars for the latency histogram / shard sparklines (ASCII-safe).
_BAR = "#"
_SPARK_LEVELS = " .:-=+*#"


def sample(collector) -> dict:
    """One JSON-ready snapshot of a collector's registry.

    The ``metrics`` half is ``MetricsRegistry.to_dict``; ``buckets``
    additionally carries each histogram's cumulative
    ``(upper_bound, count)`` pairs, which the summary dict does not
    (the rolling histogram needs real buckets, not just p50/p95).
    The serving layer's ``/snapshot`` endpoint emits exactly this
    shape, so attach mode and local mode share one renderer.
    """
    metrics = collector.metrics.to_dict()
    buckets: dict[str, list] = {}
    _counters, _gauges, histograms = collector.metrics.instruments()
    for name, histogram in histograms.items():
        buckets[name] = [[bound, count]
                         for bound, count in histogram.bucket_counts()]
    return {"metrics": metrics, "buckets": buckets,
            "spans": len(collector.tracer.snapshot()),
            "events": len(getattr(collector.events, "events", ()))}


@dataclasses.dataclass
class WatchState:
    """Frame-to-frame deltas: the previous sample and elapsed time."""

    previous: Optional[dict] = None
    elapsed: float = 0.0
    frames: int = 0

    def advance(self, snap: dict, interval: float) -> dict:
        """Fold one new sample; returns the previous one (or {})."""
        before = self.previous or {}
        self.previous = snap
        self.elapsed += interval
        self.frames += 1
        return before


def _counter(snap: dict, name: str) -> float:
    return snap.get("metrics", {}).get("counters", {}).get(name, 0)


def _gauge(snap: dict, name: str) -> Optional[float]:
    return snap.get("metrics", {}).get("gauges", {}).get(name)


def _breaker_words(snap: dict) -> dict[str, int]:
    """Breaker-state word -> site count, folded from the state gauges."""
    words = {"closed": 0, "half-open": 0, "open": 0}
    codes = {0: "closed", 1: "half-open", 2: "open"}
    for name, value in snap.get("metrics", {}).get("gauges", {}).items():
        if name.startswith("resilience.breaker.") \
                and name.endswith(".state"):
            word = codes.get(int(value), "open")
            words[word] = words.get(word, 0) + 1
    return words


def _shard_rates(snap: dict) -> dict[str, list[float]]:
    """Per-layer shard hit rates from the per-shard gauges, index order."""
    layers: dict[str, dict[int, float]] = {}
    for name, value in snap.get("metrics", {}).get("gauges", {}).items():
        parts = name.split(".")
        # engine.cache.<layer>.shard.<i>.hit_rate
        if (len(parts) == 6 and parts[:2] == ["engine", "cache"]
                and parts[3] == "shard" and parts[5] == "hit_rate"):
            try:
                index = int(parts[4])
            except ValueError:
                continue
            layers.setdefault(parts[2], {})[index] = float(value)
    return {layer: [rates[i] for i in sorted(rates)]
            for layer, rates in sorted(layers.items())}


def _sparkline(values: Sequence[float]) -> str:
    """Rates in [0,1] as one character each (ASCII ramp)."""
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[max(0, min(top, int(round(v * top))))]
        for v in values)


def _rolling_buckets(snap: dict, before: dict,
                     name: str = "engine.cell.wall_seconds",
                     rows: int = 5) -> list[tuple[str, int]]:
    """The last interval's latency distribution, densest *rows* buckets.

    Cumulative bucket counts are monotonic, so the per-interval
    histogram is the pairwise difference of two snapshots,
    de-cumulated per bucket.
    """
    current = snap.get("buckets", {}).get(name)
    if not current:
        return []
    previous = {pair[0]: pair[1]
                for pair in (before.get("buckets", {}).get(name) or [])}
    deltas: list[tuple[str, int]] = []
    last_cum = 0
    last_prev_cum = 0
    for bound, cumulative in current:
        prev_cum = previous.get(bound, 0)
        count = (cumulative - last_cum) - (prev_cum - last_prev_cum)
        last_cum, last_prev_cum = cumulative, prev_cum
        if count > 0:
            label = "+Inf" if bound is None else (
                f"{bound * 1000:g}ms" if bound < 1 else f"{bound:g}s")
            deltas.append((f"<={label}", count))
    deltas.sort(key=lambda pair: -pair[1])
    return sorted(deltas[:rows], key=lambda pair: pair[0])


def _fmt_rate(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.2f}"


def render_frame(snap: dict, before: dict, interval: float,
                 elapsed: float, total_cells: Optional[int] = None) -> str:
    """One dashboard frame (multi-line, no control codes)."""
    cells = _counter(snap, "cells.evaluated")
    cells_before = _counter(before, "cells.evaluated")
    rate = (cells - cells_before) / interval if interval > 0 else 0.0
    progress = f"{int(cells)}"
    if total_cells:
        progress += f"/{total_cells}"
    lines = [
        f"feam watch  t+{elapsed:6.1f}s   cells {progress}   "
        f"{rate:8.1f} cells/s"
    ]

    queue = _gauge(snap, "engine.matrix.queue_depth")
    steals = _gauge(snap, "engine.matrix.steals")
    util = _gauge(snap, "engine.matrix.worker_utilization")
    lines.append(
        f"pool     queue={int(queue) if queue is not None else 'n/a'}  "
        f"steals={int(steals) if steals is not None else 'n/a'}  "
        f"utilization={_fmt_rate(util)}")

    rates = {layer: _gauge(snap, f"engine.cache.{layer}.hit_rate")
             for layer in ("description", "discovery", "evaluation")}
    lines.append("cache    " + "  ".join(
        f"{layer}={_fmt_rate(rate)}" for layer, rate in rates.items()))
    for layer, shard_rates in _shard_rates(snap).items():
        if shard_rates:
            lines.append(
                f"shards   {layer:<11} [{_sparkline(shard_rates)}] "
                f"min={min(shard_rates):.2f} max={max(shard_rates):.2f}")

    words = _breaker_words(snap)
    if any(words.values()):
        lines.append("breakers " + "  ".join(
            f"{word}={count}" for word, count in words.items()))

    # The alert engine publishes these gauges per evaluation tick
    # (repro.obs.alerts); absent gauges mean no engine ran, and the
    # panel stays hidden rather than claiming "0 firing".
    firing = _gauge(snap, "alerts.firing")
    pending = _gauge(snap, "alerts.pending")
    if firing is not None or pending is not None:
        critical = _gauge(snap, "alerts.firing.critical") or 0
        lines.append(
            f"alerts   firing={int(firing or 0)} "
            f"({int(critical)} critical)  pending={int(pending or 0)}")

    sampling_kept = _counter(snap, "obs.sampling.kept")
    sampling_dropped = _counter(snap, "obs.sampling.dropped")
    wide = _counter(snap, "obs.wide.emitted")
    if wide or sampling_kept or sampling_dropped:
        lines.append(
            f"telemetry wide={int(wide)}  spans kept={int(sampling_kept)}"
            f"  dropped={int(sampling_dropped)}")

    summary = (snap.get("metrics", {}).get("histograms", {})
               .get("engine.cell.wall_seconds"))
    if summary and summary.get("count"):
        p50 = summary.get("p50")
        p95 = summary.get("p95")
        lines.append(
            f"latency  count={summary['count']}  "
            f"p50={_fmt_seconds(p50)}  p95={_fmt_seconds(p95)}  "
            f"max={_fmt_seconds(summary.get('max'))}")
    rolling = _rolling_buckets(snap, before)
    if rolling:
        biggest = max(count for _, count in rolling)
        for label, count in rolling:
            bar = _BAR * max(1, round(24 * count / biggest))
            lines.append(f"  {label:>9}  {bar} {count}")
    return "\n".join(lines)


def render_line(snap: dict, before: dict, interval: float,
                elapsed: float, total_cells: Optional[int] = None) -> str:
    """The non-TTY degradation: one plain summary line per interval."""
    cells = _counter(snap, "cells.evaluated")
    rate = ((cells - _counter(before, "cells.evaluated")) / interval
            if interval > 0 else 0.0)
    queue = _gauge(snap, "engine.matrix.queue_depth")
    progress = f"{int(cells)}"
    if total_cells:
        progress += f"/{total_cells}"
    words = _breaker_words(snap)
    broken = words.get("open", 0) + words.get("half-open", 0)
    return (f"t+{elapsed:.1f}s cells={progress} rate={rate:.1f}/s "
            f"queue={int(queue) if queue is not None else 0} "
            f"breakers_open={broken} "
            f"wide={int(_counter(snap, 'obs.wide.emitted'))}")


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


class InPlaceRenderer:
    """Redraws the dashboard over itself on a TTY.

    Tracks how many lines the previous frame used and moves the cursor
    back up that far before printing the next one, erasing each line
    (frames can shrink).  The first frame prints normally.
    """

    def __init__(self, stream) -> None:
        self._stream = stream
        self._lines = 0

    def draw(self, frame: str) -> None:
        if self._lines:
            self._stream.write(f"\x1b[{self._lines}A")
        lines = frame.split("\n")
        for line in lines:
            self._stream.write("\x1b[2K" + line + "\n")
        # A frame that shrank leaves stale lines below; erase them.
        extra = self._lines - len(lines)
        if extra > 0:
            for _ in range(extra):
                self._stream.write("\x1b[2K\n")
            self._stream.write(f"\x1b[{extra}A")
        self._lines = len(lines)
        self._stream.flush()
