"""Cross-run analysis over ledger manifests: compare and drift.

The ledger (:mod:`repro.obs.ledger`) makes every run durable; this
module makes pairs and windows of runs *comparable*:

* :func:`compare_runs` -- two manifests in, one structured comparison
  out: outcome-flip table (per-cell when both manifests carry the
  ``cell_outcomes`` map, count deltas otherwise), per-determinant
  blocked-cell and sim-latency deltas, per-phase latency ratios with
  the same added/removed/ratio semantics ``feam diff-trace`` uses for
  span buckets, and cache hit-rate / retry / fault drift.
* :func:`gate` -- the regression verdict: every row whose
  current/base latency ratio exceeds ``--fail-above`` (``feam
  compare`` exits 3 on any, per the pinned exit-code contract).
* :func:`drift` -- a rolling baseline over the last N runs of the
  same kind, flagging metrics that left the tolerance band, plus
  optional SLO rules (:mod:`repro.obs.slo`) evaluated against the
  newest manifest's flattened metrics.

Everything here is pure dict-in/dict-out: no engine imports, no I/O.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.obs import slo as slo_mod
from repro.obs.ledger import numeric_metrics

#: Phases whose latency digests the comparison walks (manifest
#: ``phases`` keys are free-form; these orders render first).
_PREFERRED_PHASE_ORDER = ("discover", "describe", "cell.sim",
                          "cell.wall", "worker")


def _ratio(base: Optional[float],
           current: Optional[float]) -> Optional[float]:
    if base is None or current is None or base <= 0:
        return None
    return current / base


def _digest_mean(digest: Optional[dict]) -> Optional[float]:
    if not isinstance(digest, dict):
        return None
    mean = digest.get("mean")
    return float(mean) if isinstance(mean, (int, float)) else None


def _outcome_counts(manifest: dict) -> dict:
    return dict((manifest.get("rollup") or {}).get("outcomes") or {})


def _blocked(det_entry: dict) -> int:
    """Cells where this determinant did not pass (fail + unknown)."""
    outcomes = det_entry.get("outcomes") or {}
    return sum(count for outcome, count in outcomes.items()
               if outcome != "pass")


def compare_runs(base: dict, current: dict) -> dict:
    """Structured comparison of two run manifests (base -> current)."""
    base_roll = base.get("rollup") or {}
    curr_roll = current.get("rollup") or {}

    # Outcome table: counts always, per-cell flips when both runs
    # recorded the (bounded) cell outcome map.
    base_counts = _outcome_counts(base)
    curr_counts = _outcome_counts(current)
    outcomes = []
    for word in sorted(set(base_counts) | set(curr_counts)):
        b, c = base_counts.get(word, 0), curr_counts.get(word, 0)
        outcomes.append({"outcome": word, "base": b, "current": c,
                         "delta": c - b})
    flips = None
    base_cells = base_roll.get("cell_outcomes")
    curr_cells = curr_roll.get("cell_outcomes")
    if isinstance(base_cells, dict) and isinstance(curr_cells, dict):
        flips = []
        for cell in sorted(set(base_cells) | set(curr_cells)):
            before = base_cells.get(cell, "(absent)")
            after = curr_cells.get(cell, "(absent)")
            if before != after:
                flips.append({"cell": cell, "base": before,
                              "current": after})

    # Per-determinant rows: blocked-cell counts and sim latency over
    # the cells each determinant was implicated in.
    base_dets = base_roll.get("determinants") or {}
    curr_dets = curr_roll.get("determinants") or {}
    determinants = []
    for key in sorted(set(base_dets) | set(curr_dets)):
        in_base, in_curr = key in base_dets, key in curr_dets
        b_entry, c_entry = base_dets.get(key, {}), curr_dets.get(key, {})
        b_mean = _digest_mean(b_entry.get("sim"))
        c_mean = _digest_mean(c_entry.get("sim"))
        determinants.append({
            "determinant": key,
            "status": ("common" if in_base and in_curr
                       else "added" if in_curr else "removed"),
            "base_blocked": _blocked(b_entry) if in_base else None,
            "current_blocked": _blocked(c_entry) if in_curr else None,
            "base_sim_mean": b_mean,
            "current_sim_mean": c_mean,
            "sim_ratio": _ratio(b_mean, c_mean),
        })

    # Per-phase latency rows, diff-trace style: ratio when both runs
    # have the phase, added/removed otherwise.
    base_phases = base.get("phases") or {}
    curr_phases = current.get("phases") or {}
    names = [name for name in _PREFERRED_PHASE_ORDER
             if name in base_phases or name in curr_phases]
    names += sorted((set(base_phases) | set(curr_phases)) - set(names))
    phases = []
    for name in names:
        in_base, in_curr = name in base_phases, name in curr_phases
        b_mean = _digest_mean(base_phases.get(name))
        c_mean = _digest_mean(curr_phases.get(name))
        phases.append({
            "phase": name,
            "status": ("common" if in_base and in_curr
                       else "added" if in_curr else "removed"),
            "base_mean": b_mean,
            "current_mean": c_mean,
            "ratio": _ratio(b_mean, c_mean),
        })

    # Bench manifests (emit_bench.py, `feam runs import`) carry flat
    # timings under "bench" instead of an engine rollup; diff those
    # numerically so `check_regression.py --ledger` attribution has
    # substance for them too.
    bench = None
    if isinstance(base.get("bench"), dict) \
            or isinstance(current.get("bench"), dict):
        b_nums = numeric_metrics({"bench": base.get("bench") or {}})
        c_nums = numeric_metrics({"bench": current.get("bench") or {}})
        bench = [{"metric": key,
                  "base": b_nums.get(key),
                  "current": c_nums.get(key),
                  "ratio": _ratio(b_nums.get(key), c_nums.get(key))}
                 for key in sorted(set(b_nums) | set(c_nums))]

    b_sim = _digest_mean(base_roll.get("sim"))
    c_sim = _digest_mean(curr_roll.get("sim"))
    b_cache = (base_roll.get("cache") or {}).get("hit_rate")
    c_cache = (curr_roll.get("cache") or {}).get("hit_rate")
    return {
        "base": {key: base.get(key)
                 for key in ("run_id", "ts", "kind", "seed")},
        "current": {key: current.get(key)
                    for key in ("run_id", "ts", "kind", "seed")},
        "cells": {"base": base_roll.get("cells"),
                  "current": curr_roll.get("cells")},
        "outcomes": outcomes,
        "flips": flips,
        "determinants": determinants,
        "phases": phases,
        "bench": bench,
        "sim": {"base_mean": b_sim, "current_mean": c_sim,
                "ratio": _ratio(b_sim, c_sim)},
        "cache": {
            "base_hit_rate": b_cache, "current_hit_rate": c_cache,
            "delta": (c_cache - b_cache
                      if isinstance(b_cache, (int, float))
                      and isinstance(c_cache, (int, float)) else None)},
        "retries": {"base": base_roll.get("retries"),
                    "current": curr_roll.get("retries")},
        "faulted": {"base": base_roll.get("faulted"),
                    "current": curr_roll.get("faulted")},
    }


def gate(comparison: dict, fail_above: float) -> list[dict]:
    """Latency rows whose current/base ratio exceeds *fail_above*.

    Gates only the *simulated*-seconds rows (overall sim, the
    ``cell.sim`` phase, per-determinant sim) -- sim time is fully
    deterministic for a given seed, so the verdict is reproducible.
    Wall-clock rows are reported for triage but never gate: on a
    sub-second run, host noise between two identical runs routinely
    exceeds any sane threshold, and a gate that flakes is worse than
    no gate.
    """
    regressions = []
    sim_ratio = comparison["sim"].get("ratio")
    if sim_ratio is not None and sim_ratio > fail_above:
        regressions.append({"row": "sim (overall)", "ratio": sim_ratio})
    for row in comparison["phases"]:
        if not row["phase"].endswith(".sim"):
            continue
        if row["ratio"] is not None and row["ratio"] > fail_above:
            regressions.append({"row": f"phase {row['phase']}",
                                "ratio": row["ratio"]})
    for row in comparison["determinants"]:
        ratio = row["sim_ratio"]
        if ratio is not None and ratio > fail_above:
            regressions.append(
                {"row": f"determinant {row['determinant']}",
                 "ratio": ratio})
    return regressions


def _fmt(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "n/a"
    return f"{value:.{digits}g}"


def _fmt_s(value: Optional[float]) -> str:
    """Seconds with unit; no unit on missing values."""
    return "n/a" if value is None else f"{_fmt(value)}s"


def render_comparison(comparison: dict,
                      fail_above: Optional[float] = None,
                      max_flips: int = 20) -> str:
    """The ``feam compare`` report."""
    base, curr = comparison["base"], comparison["current"]
    lines = [f"compare {base.get('run_id')} ({base.get('kind')}) -> "
             f"{curr.get('run_id')} ({curr.get('kind')})"]
    cells = comparison["cells"]
    lines.append(f"cells: {cells.get('base')} -> {cells.get('current')}")

    lines.append("")
    lines.append("outcomes:")
    for row in comparison["outcomes"]:
        delta = row["delta"]
        lines.append(f"  {row['outcome']:<8} {row['base']:>6} -> "
                     f"{row['current']:<6} ({delta:+d})")
    flips = comparison["flips"]
    if flips is not None:
        lines.append(f"flipped cells: {len(flips)}")
        for flip in flips[:max_flips]:
            lines.append(f"  {flip['cell']}: {flip['base']} -> "
                         f"{flip['current']}")
        if len(flips) > max_flips:
            lines.append(f"  ... and {len(flips) - max_flips} more")

    lines.append("")
    lines.append("determinants (blocked cells, implicated sim mean):")
    for row in comparison["determinants"]:
        mark = {"added": " [added]", "removed": " [removed]"}.get(
            row["status"], "")
        blocked = (f"{row['base_blocked'] if row['base_blocked'] is not None else '-'}"
                   f" -> "
                   f"{row['current_blocked'] if row['current_blocked'] is not None else '-'}")
        lines.append(
            f"  {row['determinant']:<28} blocked {blocked:<12} "
            f"sim {_fmt_s(row['base_sim_mean'])} -> "
            f"{_fmt_s(row['current_sim_mean'])} "
            f"(x{_fmt(row['sim_ratio'], 3)}){mark}")

    lines.append("")
    lines.append("phases (mean latency, current/base ratio):")
    for row in comparison["phases"]:
        mark = {"added": " [added]", "removed": " [removed]"}.get(
            row["status"], "")
        lines.append(
            f"  {row['phase']:<12} {_fmt_s(row['base_mean'])} -> "
            f"{_fmt_s(row['current_mean'])} "
            f"(x{_fmt(row['ratio'], 3)}){mark}")
    sim = comparison["sim"]
    lines.append(f"  {'sim overall':<12} {_fmt_s(sim['base_mean'])} -> "
                 f"{_fmt_s(sim['current_mean'])} "
                 f"(x{_fmt(sim['ratio'], 3)})")

    if comparison.get("bench"):
        lines.append("")
        lines.append("bench metrics:")
        for row in comparison["bench"]:
            lines.append(
                f"  {row['metric']:<28} {_fmt(row['base'])} -> "
                f"{_fmt(row['current'])} (x{_fmt(row['ratio'], 3)})")

    cache = comparison["cache"]
    lines.append("")
    lines.append(f"cache hit rate: {_fmt(cache['base_hit_rate'], 3)} -> "
                 f"{_fmt(cache['current_hit_rate'], 3)}"
                 + (f" ({cache['delta']:+.3f})"
                    if cache["delta"] is not None else ""))
    retries, faulted = comparison["retries"], comparison["faulted"]
    lines.append(f"retries: {retries.get('base')} -> "
                 f"{retries.get('current')}; faulted cells: "
                 f"{faulted.get('base')} -> {faulted.get('current')}")

    if fail_above is not None:
        regressions = gate(comparison, fail_above)
        lines.append("")
        if regressions:
            lines.append(f"REGRESSION: {len(regressions)} row(s) above "
                         f"x{fail_above:g}:")
            for entry in regressions:
                lines.append(f"  {entry['row']}: x{entry['ratio']:.3g}")
        else:
            lines.append(f"no latency row above x{fail_above:g}")
    return "\n".join(lines)


def drift(runs: Sequence[dict], window: int = 10,
          tolerance: float = 0.25,
          rules: Sequence[slo_mod.SloRule] = ()) -> dict:
    """Newest run vs a rolling baseline of its predecessors.

    The baseline is the mean of each numeric metric over the last
    *window* earlier runs **of the same kind** (comparing a chaos run
    against matrix runs would flag the fault counters as drift every
    time).  A metric is an *excursion* when it moved more than
    *tolerance* (fractional) away from the baseline mean.  Optional
    SLO *rules* evaluate against the newest run's flattened metrics
    (exposed as gauges), reusing the grammar ``feam slo`` pins.
    """
    if not runs:
        raise ValueError("drift needs at least one run in the ledger")
    latest = runs[-1]
    kind = latest.get("kind")
    earlier = [run for run in runs[:-1] if run.get("kind") == kind]
    baseline_runs = earlier[-max(1, int(window)):]

    latest_metrics = numeric_metrics(latest)
    baseline_values: dict[str, list[float]] = {}
    for run in baseline_runs:
        for metric, value in numeric_metrics(run).items():
            baseline_values.setdefault(metric, []).append(value)

    excursions = []
    checked = 0
    for metric, observed in sorted(latest_metrics.items()):
        if metric == "schema":
            continue
        history = baseline_values.get(metric)
        if not history:
            continue  # new metric: nothing to drift against
        baseline = sum(history) / len(history)
        checked += 1
        if baseline == 0:
            if observed != 0:
                excursions.append({
                    "metric": metric, "baseline": baseline,
                    "observed": observed, "ratio": None})
            continue
        ratio = observed / baseline
        if abs(ratio - 1.0) > tolerance:
            excursions.append({"metric": metric, "baseline": baseline,
                               "observed": observed, "ratio": ratio})
    # Sort by excursion magnitude (symmetric in log space); ratios that
    # are non-positive -- sign flips, zero observations against a live
    # baseline, zero baselines -- are the wildest moves, so they lead.
    def _magnitude(entry: dict) -> float:
        ratio = entry["ratio"]
        if ratio is None or ratio <= 0:
            return float("inf")
        return abs(math.log(ratio))

    excursions.sort(key=lambda entry: (-_magnitude(entry),
                                       entry["metric"]))

    slo_report = None
    if rules:
        snapshot = {"counters": {}, "gauges": latest_metrics,
                    "histograms": {}}
        slo_report = slo_mod.evaluate(rules, snapshot)
    return {
        "run_id": latest.get("run_id"),
        "kind": kind,
        "window": int(window),
        "baseline_runs": len(baseline_runs),
        "insufficient_history": len(baseline_runs) < max(1, int(window)),
        "tolerance": tolerance,
        "metrics_checked": checked,
        "excursions": excursions,
        "slo": slo_report.to_dict() if slo_report is not None else None,
        "slo_ok": slo_report.ok if slo_report is not None else True,
    }


def render_drift(report: dict, max_rows: int = 25) -> str:
    """The ``feam drift`` report."""
    lines = [f"drift: run {report['run_id']} ({report['kind']}) vs "
             f"mean of last {report['baseline_runs']} {report['kind']} "
             f"run(s), tolerance {report['tolerance']:g}"]
    if not report["baseline_runs"]:
        lines.append("(no earlier runs of this kind -- nothing to "
                     "drift against)")
    if report.get("insufficient_history"):
        # A thin baseline is advisory, not alarming: the drift pass
        # still runs over what exists, but the notice keeps a 2-run
        # excursion from being read with 10-run confidence.
        lines.append(f"insufficient history (have "
                     f"{report['baseline_runs']}, need "
                     f"{report['window']})")
    excursions = report["excursions"]
    lines.append(f"{report['metrics_checked']} metric(s) checked, "
                 f"{len(excursions)} excursion(s)")
    for entry in excursions[:max_rows]:
        ratio = ("zero-baseline" if entry["ratio"] is None
                 else f"x{entry['ratio']:.3g}")
        lines.append(f"  {entry['metric']:<40} "
                     f"{entry['baseline']:.6g} -> "
                     f"{entry['observed']:.6g} ({ratio})")
    if len(excursions) > max_rows:
        lines.append(f"  ... and {len(excursions) - max_rows} more")
    if report["slo"] is not None:
        lines.append("")
        failed = [r for r in report["slo"]["results"]
                  if r["status"] == "fail"]
        lines.append(f"SLO rules: {len(report['slo']['results'])} "
                     f"checked, {len(failed)} violated")
        for result in failed:
            observed = ("absent" if result["observed"] is None
                        else f"{result['observed']:g}")
            lines.append(f"  FAIL {result['rule']} "
                         f"observed={observed}")
    return "\n".join(lines)
