"""The run ledger: a durable, queryable warehouse of evaluation runs.

Every other telemetry surface -- spans, metrics, wide events -- dies
with the process; the only question they can answer is "what happened
in *this* run".  Readiness work is longitudinal: the questions that
matter over a campaign are "did yesterday's config change flip any
cells", "is discovery getting slower", "what did the fleet bench look
like twenty runs ago".  The ledger answers those by writing one
schema-versioned *run manifest* per ``feam matrix`` / ``feam chaos`` /
benchmark invocation into an append-only on-disk store
(``.feam/runs/runs.jsonl`` by default), torn-tail-tolerant like every
other JSONL stream in the tree (:mod:`repro.util.jsonl`) and
size-capped with oldest-run eviction so a long campaign cannot grow
without bound.

A manifest is a plain dict (this module never imports ``repro.core``;
the engine-side flattener lives in
:func:`repro.core.engine.run_rollup`):

* identity -- ``run_id`` (UTC timestamp + content digest suffix),
  ``ts`` (ISO-8601 UTC), ``kind`` (``matrix`` / ``chaos`` / ``bench``
  / ``fleet-bench`` / ``telemetry-gate`` / ``legacy-*``), ``schema``;
* provenance -- ``seed``, ``sites_spec``, ``config_fingerprint``,
  ``fault_profile``, worker/shard counts;
* results -- the ``rollup`` (cell/outcome/cache/retry counts,
  per-determinant outcome counts, sim/wall latency digests), the
  ``phases`` latency digests, and/or raw ``bench`` timings.

Cross-run analysis (`feam runs`, `feam compare`, `feam drift`) lives
in :mod:`repro.obs.compare`; this module is only the warehouse.
"""

from __future__ import annotations

import math
import os
import time
from typing import Optional, Sequence

from repro.util.hashing import stable_digest
from repro.util.jsonl import JsonlAppender, cap_jsonl, read_jsonl

#: Version of the manifest layout.  Bump when a field changes meaning
#: or disappears; adding fields is backwards-compatible.
SCHEMA_VERSION = 1

#: Default warehouse location, relative to the working directory.
DEFAULT_DIR = os.path.join(".feam", "runs")

#: Default size cap (manifests, not bytes); oldest evicted beyond it.
DEFAULT_MAX_RUNS = 512

#: File holding the manifests inside the ledger directory.
LEDGER_FILE = "runs.jsonl"


def utc_timestamp(epoch: Optional[float] = None) -> str:
    """ISO-8601 UTC second precision, e.g. ``2026-08-08T12:13:14Z``."""
    if epoch is None:
        epoch = time.time()
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(epoch))


def make_run_id(ts: str, *fingerprint_parts) -> str:
    """A run id: sortable UTC stamp + 8-hex content digest suffix.

    The digest folds in the manifest's identifying content so two runs
    recorded within the same second still get distinct ids, and a
    legacy import derives *stable* ids (re-import is a no-op).
    """
    compact = ts.replace("-", "").replace(":", "")
    suffix = stable_digest(ts, *fingerprint_parts)[:8]
    return f"{compact}-{suffix}"


def latency_digest(values: Sequence[float]) -> dict:
    """Exact order-statistic digest of a latency population.

    Same shape as a histogram ``summary()`` (count, sum, min, max,
    mean, p50, p95) but computed from the raw values, so percentiles
    are exact rather than bucket midpoints.
    """
    values = sorted(float(v) for v in values)
    if not values:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": None, "p50": None, "p95": None}

    def pct(q: float) -> float:
        rank = max(1, math.ceil(q * len(values)))
        return values[rank - 1]

    total = float(sum(values))
    return {"count": len(values), "sum": total,
            "min": values[0], "max": values[-1],
            "mean": total / len(values),
            "p50": pct(0.50), "p95": pct(0.95)}


class RunLedger:
    """The append-only, size-capped run warehouse.

    One :data:`LEDGER_FILE` JSONL file under *directory*; each
    :meth:`record` appends one flushed manifest line.  When the store
    exceeds *max_runs* manifests it is compacted in place, dropping the
    oldest runs (``ledger.evicted`` counts them).  Reads tolerate a
    torn final line and skip manifests from a newer schema rather than
    misread them.

    Counters (no-ops when no collector is installed):

    * ``ledger.recorded`` -- manifests written by this process;
    * ``ledger.evicted`` -- manifests dropped by the size cap;
    * ``ledger.imported`` -- manifests created by ``feam runs import``.
    """

    def __init__(self, directory: str = DEFAULT_DIR,
                 max_runs: int = DEFAULT_MAX_RUNS) -> None:
        self.directory = directory
        self.max_runs = max(1, int(max_runs))
        self.path = os.path.join(directory, LEDGER_FILE)

    # -- writing -------------------------------------------------------

    def record(self, manifest: dict) -> dict:
        """Append one manifest (stamping schema/ts/run_id if absent).

        Returns the manifest as written.  Appending then compacting
        (rather than compacting in memory first) keeps the common path
        a single flushed append; eviction only rewrites when the cap
        is actually crossed.
        """
        manifest = dict(manifest)
        manifest.setdefault("schema", SCHEMA_VERSION)
        manifest.setdefault("ts", utc_timestamp())
        if "run_id" not in manifest:
            manifest["run_id"] = make_run_id(
                manifest["ts"], manifest.get("kind"),
                manifest.get("seed"), manifest.get("sites_spec"),
                manifest.get("config_fingerprint"), os.getpid(),
                time.time())
        os.makedirs(self.directory, exist_ok=True)
        with JsonlAppender(self.path) as appender:
            appender.append(manifest)
        from repro import obs
        obs.counter("ledger.recorded").inc()
        self._evict()
        return manifest

    def _evict(self) -> int:
        """Drop oldest manifests beyond the cap; returns the count."""
        return cap_jsonl(self.path, self.runs(),
                         max_records=self.max_runs,
                         counter="ledger.evicted")

    # -- reading -------------------------------------------------------

    def runs(self) -> list[dict]:
        """Every readable manifest, oldest first.

        Missing store -> empty list (a fresh checkout has no history).
        Torn lines and newer-schema manifests are skipped: a warehouse
        shared across tool versions must stay listable even when a
        newer writer has contributed lines this reader cannot vet.
        """
        if not os.path.exists(self.path):
            return []

        def known_schema(_lineno: int, record: dict) -> bool:
            schema = record.get("schema", SCHEMA_VERSION)
            return not (isinstance(schema, int) and schema > SCHEMA_VERSION)

        return read_jsonl(self.path, check=known_schema, label="ledger")

    def resolve(self, ref: str) -> dict:
        """One manifest by reference.

        Accepts a full ``run_id``, a unique id prefix, ``latest``, or
        a negative index (``-1`` = newest, ``-2`` = one before).
        Raises ``ValueError`` (with the reason) when nothing matches.
        """
        runs = self.runs()
        if not runs:
            raise ValueError(f"run ledger {self.path} has no runs")
        ref = ref.strip()
        if ref in ("latest", "-1"):
            return runs[-1]
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None and index < 0:
            if -index > len(runs):
                raise ValueError(
                    f"run {ref}: ledger only holds {len(runs)} run(s)")
            return runs[index]
        matches = [run for run in runs
                   if str(run.get("run_id", "")).startswith(ref)]
        if not matches:
            raise ValueError(f"no run matches {ref!r}")
        if len(matches) > 1:
            ids = ", ".join(str(run.get("run_id")) for run in matches[:4])
            raise ValueError(
                f"run reference {ref!r} is ambiguous ({ids}, ...)"
                if len(matches) > 4 else
                f"run reference {ref!r} is ambiguous ({ids})")
        return matches[0]


def flatten(manifest: dict, prefix: str = "",
            max_depth: int = 4) -> dict:
    """A manifest as one flat ``dotted.key -> scalar`` dict.

    Nested dicts flatten with dot-joined keys
    (``rollup.cache.hit_rate``); lists and deeper nesting render as
    their length / string form.  This is what the ``feam runs
    --where`` predicates and the drift baseline operate on, reusing
    the :mod:`repro.obs.store` clause machinery unchanged.
    """
    flat: dict = {}
    for key, value in manifest.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict) and max_depth > 0:
            flat.update(flatten(value, prefix=f"{name}.",
                                max_depth=max_depth - 1))
        elif isinstance(value, list):
            flat[name] = len(value)
        else:
            flat[name] = value
    return flat


def numeric_metrics(manifest: dict) -> dict:
    """The flattened manifest restricted to real numbers.

    The drift baseline and the SLO rule grammar both want numeric
    metric -> value maps; identity strings (run ids, timestamps) would
    only pollute them.
    """
    return {key: float(value)
            for key, value in flatten(manifest).items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)}
