"""Trace analysis: flame profiles, critical paths, trace diffs.

PR 2 made the pipeline *emit* spans; this module makes them
*answerable*.  Three analyses, each working equally on live
:class:`~repro.obs.tracer.Span` lists (``collector.spans``) and on
spans parsed back from JSONL (:func:`repro.obs.export.parse_jsonl`):

* :func:`profile` -- aggregate spans by name into a flame-style
  profile: call count, **total** time (span duration) and **self**
  time (duration minus direct children), in both the wall clock and
  the simulated FEAM clock.  ``render_top`` prints it as the ``feam
  top`` table.
* :func:`critical_path` -- from the heaviest root, repeatedly descend
  into the heaviest child: the chain of spans that bounds the run's
  wall time (what you must make faster for the run to get faster).
* :func:`diff_profiles` -- per-name deltas between two profiles
  (count, wall, sim; appeared/disappeared names flagged), the engine
  of ``feam diff-trace`` and of ``benchmarks/check_regression.py``.

Profiles serialise through :meth:`Profile.to_dict` /
:func:`profile_from_dict` so a benchmark run can commit its flame
profile next to its timings and a later gate can diff against it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.obs.export import span_tree
from repro.obs.tracer import Span


@dataclasses.dataclass
class FrameStat:
    """Aggregated timings for every span sharing one name."""

    name: str
    count: int = 0
    errors: int = 0
    wall_total: float = 0.0
    wall_self: float = 0.0
    sim_total: float = 0.0
    sim_self: float = 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "errors": self.errors,
            "wall_total": round(self.wall_total, 6),
            "wall_self": round(self.wall_self, 6),
            "sim_total": round(self.sim_total, 6),
            "sim_self": round(self.sim_self, 6),
        }


@dataclasses.dataclass
class Profile:
    """A flame-style aggregate of one trace, keyed by span name."""

    frames: dict[str, FrameStat]
    span_count: int = 0

    def frame(self, name: str) -> Optional[FrameStat]:
        return self.frames.get(name)

    def sorted_frames(self, sort: str = "wall_self") -> list[FrameStat]:
        if sort not in _SORT_KEYS:
            raise ValueError(
                f"unknown sort key {sort!r}; choose from "
                f"{', '.join(sorted(_SORT_KEYS))}")
        key = _SORT_KEYS[sort]
        return sorted(self.frames.values(),
                      key=lambda f: (-key(f), f.name))

    def to_dict(self) -> dict:
        return {
            "span_count": self.span_count,
            "frames": {name: stat.to_dict()
                       for name, stat in sorted(self.frames.items())},
        }


_SORT_KEYS = {
    "wall_self": lambda f: f.wall_self,
    "wall_total": lambda f: f.wall_total,
    "sim_self": lambda f: f.sim_self,
    "sim_total": lambda f: f.sim_total,
    "count": lambda f: f.count,
}


def profile_from_dict(data: dict) -> Profile:
    """Rebuild a :class:`Profile` from :meth:`Profile.to_dict` output."""
    frames = {}
    for name, stat in data.get("frames", {}).items():
        frames[name] = FrameStat(
            name=name,
            count=int(stat.get("count", 0)),
            errors=int(stat.get("errors", 0)),
            wall_total=float(stat.get("wall_total", 0.0)),
            wall_self=float(stat.get("wall_self", 0.0)),
            sim_total=float(stat.get("sim_total", 0.0)),
            sim_self=float(stat.get("sim_self", 0.0)))
    return Profile(frames=frames,
                   span_count=int(data.get("span_count", 0)))


def _wall(span: Span) -> float:
    return span.wall_seconds or 0.0


def profile(spans: Sequence[Span]) -> Profile:
    """Aggregate *spans* into per-name total/self timings.

    Self time is the span's duration minus its *direct* children's
    durations (clamped at zero: concurrent children on other threads
    can legitimately sum past their parent).
    """
    children_wall: dict[int, float] = {}
    children_sim: dict[int, float] = {}
    known = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id
        if parent is not None and parent in known:
            children_wall[parent] = children_wall.get(parent, 0.0) \
                + _wall(span)
            children_sim[parent] = children_sim.get(parent, 0.0) \
                + span.sim_seconds
    frames: dict[str, FrameStat] = {}
    for span in spans:
        stat = frames.get(span.name)
        if stat is None:
            stat = frames[span.name] = FrameStat(name=span.name)
        stat.count += 1
        if span.status != "ok":
            stat.errors += 1
        wall = _wall(span)
        sim = span.sim_seconds
        stat.wall_total += wall
        stat.sim_total += sim
        stat.wall_self += max(
            0.0, wall - children_wall.get(span.span_id, 0.0))
        stat.sim_self += max(
            0.0, sim - children_sim.get(span.span_id, 0.0))
    return Profile(frames=frames, span_count=len(spans))


def critical_path(spans: Sequence[Span],
                  clock: str = "wall") -> list[Span]:
    """The heaviest root-to-leaf chain of the trace.

    Starting from the root with the largest duration on *clock*
    (``wall`` or ``sim``), descend into the heaviest child until a
    leaf.  Empty input gives an empty path.
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"unknown clock {clock!r}; use 'wall' or 'sim'")
    weight = (_wall if clock == "wall"
              else lambda span: span.sim_seconds)
    roots = span_tree(list(spans))
    if not roots:
        return []
    node = max(roots, key=lambda n: weight(n.span))
    path = [node.span]
    while node.children:
        node = max(node.children, key=lambda n: weight(n.span))
        path.append(node.span)
    return path


@dataclasses.dataclass
class FrameDelta:
    """One span name's change between a baseline and a current profile."""

    name: str
    base: Optional[FrameStat]
    curr: Optional[FrameStat]

    @property
    def status(self) -> str:
        if self.base is None:
            return "added"
        if self.curr is None:
            return "removed"
        return "common"

    @property
    def wall_delta(self) -> float:
        return ((self.curr.wall_total if self.curr else 0.0)
                - (self.base.wall_total if self.base else 0.0))

    @property
    def sim_delta(self) -> float:
        return ((self.curr.sim_total if self.curr else 0.0)
                - (self.base.sim_total if self.base else 0.0))

    @property
    def count_delta(self) -> int:
        return ((self.curr.count if self.curr else 0)
                - (self.base.count if self.base else 0))

    @property
    def wall_ratio(self) -> Optional[float]:
        """current/baseline total wall; None when the baseline is ~0."""
        if self.base is None or self.base.wall_total <= 1e-12:
            return None
        return (self.curr.wall_total if self.curr else 0.0) \
            / self.base.wall_total


def diff_profiles(base: Profile, curr: Profile) -> list[FrameDelta]:
    """Per-name deltas, largest absolute wall change first."""
    names = sorted(set(base.frames) | set(curr.frames))
    deltas = [FrameDelta(name=name, base=base.frames.get(name),
                         curr=curr.frames.get(name))
              for name in names]
    deltas.sort(key=lambda d: (-abs(d.wall_delta), d.name))
    return deltas


# -- rendering --------------------------------------------------------------------


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def render_top(prof: Profile, sort: str = "wall_self",
               limit: int = 20) -> str:
    """The ``feam top`` flame table: one row per span name."""
    ranked = prof.sorted_frames(sort)
    frames = ranked[:max(1, limit)]
    if not frames:
        return "(no spans)"
    width = max([len(f.name) for f in frames] + [4])
    header = (f"{'span':<{width}}  {'count':>6}  {'wall total':>11}  "
              f"{'wall self':>10}  {'sim total':>10}  {'sim self':>9}  "
              f"{'err':>4}")
    lines = [header, "-" * len(header)]
    for frame in frames:
        lines.append(
            f"{frame.name:<{width}}  {frame.count:>6}  "
            f"{_ms(frame.wall_total):>9}ms  {_ms(frame.wall_self):>8}ms  "
            f"{frame.sim_total:>9.1f}s  {frame.sim_self:>8.1f}s  "
            f"{frame.errors:>4}")
    truncated = len(ranked) - len(frames)
    if truncated > 0:
        lines.append(f"... and {truncated} more row(s) "
                     f"(raise --top to see them)")
    lines.append(f"({prof.span_count} spans, "
                 f"{len(prof.frames)} distinct names; sorted by {sort})")
    return "\n".join(lines)


def render_critical_path(path: Sequence[Span],
                         clock: str = "wall") -> str:
    """The critical path, one indented line per level."""
    if not path:
        return "(empty trace)"
    lines = [f"critical path ({clock} clock):"]
    for depth, span in enumerate(path):
        if clock == "wall":
            cost = f"{_ms(_wall(span))}ms"
        else:
            cost = f"{span.sim_seconds:.1f}s"
        lines.append(f"  {'  ' * depth}{span.name}  {cost}")
    return "\n".join(lines)


def render_diff(deltas: Sequence[FrameDelta], limit: int = 30) -> str:
    """The ``feam diff-trace`` table: per-name baseline vs current."""
    rows = list(deltas)[:max(1, limit)]
    if not rows:
        return "(no spans in either trace)"
    width = max([len(d.name) for d in rows] + [4])
    header = (f"{'span':<{width}}  {'count':>11}  {'wall base':>10}  "
              f"{'wall curr':>10}  {'wall delta':>11}  {'ratio':>6}")
    lines = [header, "-" * len(header)]
    for delta in rows:
        base_count = delta.base.count if delta.base else 0
        curr_count = delta.curr.count if delta.curr else 0
        base_wall = delta.base.wall_total if delta.base else 0.0
        curr_wall = delta.curr.wall_total if delta.curr else 0.0
        ratio = delta.wall_ratio
        marker = {"added": " [new]", "removed": " [gone]"}.get(
            delta.status, "")
        lines.append(
            f"{delta.name:<{width}}  {base_count:>4} -> {curr_count:>4}  "
            f"{_ms(base_wall):>8}ms  {_ms(curr_wall):>8}ms  "
            f"{delta.wall_delta * 1000:>+9.2f}ms  "
            f"{'n/a' if ratio is None else f'{ratio:.2f}':>6}{marker}")
    return "\n".join(lines)


def spans_from_jsonl_file(path: str) -> list[Span]:
    """Read a JSONL trace file and return its spans."""
    from repro.obs.export import parse_jsonl
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read()).spans
