"""Hierarchical span tracing.

A :class:`Span` records one timed operation: a name, free-form
attributes, a parent link, the *real* wall-clock duration
(``time.perf_counter``) and the *simulated* duration (seconds of
FEAM's scheduler-visible work, accrued from the
:class:`~repro.core.config.FeamConfig` timing model by the
instrumentation that owns the span).  Spans nest through a per-thread
stack, so instrumented code never passes span objects around; code
that crosses a thread boundary (the matrix planner's per-site workers)
passes ``parent=`` explicitly.

Two tracer implementations share the interface:

* :class:`Tracer` -- the in-memory collector: finished spans accumulate
  on ``tracer.spans`` (lock-protected, finish order) for the exporters
  in :mod:`repro.obs.export`;
* :class:`NullTracer` -- the default when no collector is installed.
  ``span()`` hands back one shared, stateless context manager; the
  whole instrumentation layer costs a dict build and two method calls
  per span (bounded by the micro-benchmark in
  ``tests/test_obs_tracer.py``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Optional


@dataclasses.dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    name: str
    span_id: int
    parent_id: Optional[int]
    attrs: dict
    start_wall: float
    #: Real elapsed seconds (perf_counter), set when the span exits.
    wall_seconds: Optional[float] = None
    #: Simulated seconds of FEAM work attributed to this span.
    sim_seconds: float = 0.0
    thread: str = ""
    status: str = "ok"

    def set_attrs(self, **attrs) -> None:
        self.attrs.update(attrs)

    def add_sim_seconds(self, seconds: float) -> None:
        self.sim_seconds += seconds


class _NullSpan:
    """The shared do-nothing span/context-manager."""

    __slots__ = ()

    def set_attrs(self, **attrs) -> None:
        pass

    def add_sim_seconds(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-collector default: every span is the shared null span."""

    enabled = False

    def span(self, name: str, parent: Optional[Span] = None,
             **attrs) -> _NullSpan:
        return NULL_SPAN

    def current_span(self) -> None:
        return None

    def snapshot(self) -> list:
        return []

    def discard_subtrees(self, is_root) -> int:
        return 0


class _ActiveSpan:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "_parent", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 parent: Optional[Span], attrs: dict) -> None:
        self._tracer = tracer
        self._parent = parent
        self._span = Span(
            name=name, span_id=0, parent_id=None, attrs=attrs,
            start_wall=0.0, thread=threading.current_thread().name)

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        stack = tracer._stack()
        if self._parent is not None:
            span.parent_id = self._parent.span_id
        elif stack:
            span.parent_id = stack[-1].span_id
        with tracer._lock:
            tracer._next_id += 1
            span.span_id = tracer._next_id
        span.start_wall = tracer._clock()
        stack.append(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = self._span
        span.wall_seconds = tracer._clock() - span.start_wall
        if exc_type is not None:
            span.status = "error"
            span.attrs.setdefault("error", repr(exc))
        stack = tracer._stack()
        while stack:
            if stack.pop() is span:
                break
        with tracer._lock:
            tracer.spans.append(span)
        return False


class Tracer:
    """The collecting tracer: spans nest per thread, finish into a list."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()
        #: Finished spans, in finish order (children before parents).
        self.spans: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, parent: Optional[Span] = None,
             **attrs) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("name", k=v) as sp:``.

        *parent* overrides the per-thread nesting -- required when the
        span logically belongs under a span opened in another thread.
        """
        return _ActiveSpan(self, name, parent, attrs)

    def spans_named(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def snapshot(self) -> list[Span]:
        """A consistent copy of the finished spans (safe while
        instrumented code is still appending from other threads)."""
        with self._lock:
            return list(self.spans)

    def discard_subtrees(self, is_root) -> int:
        """Drop every finished span for which *is_root* is true, plus
        all of its finished descendants; returns how many were removed.

        The tail sampler's eviction path: spans finish children-first,
        so one reverse pass sees every parent before its children and
        membership propagates transitively.  In-flight spans are
        untouched (they are not in the list yet); call this only once
        the subtrees being dropped have fully finished.
        """
        with self._lock:
            dropped_ids: set[int] = set()
            kept: list[Span] = []
            for span in reversed(self.spans):
                if is_root(span) or span.parent_id in dropped_ids:
                    dropped_ids.add(span.span_id)
                else:
                    kept.append(span)
            removed = len(self.spans) - len(kept)
            if removed:
                kept.reverse()
                self.spans[:] = kept
            return removed
