"""Trace serialization: JSONL out, span trees back in.

One line per record, ``type`` discriminated:

* ``{"type": "span", "id", "parent", "name", "attrs", "start", "wall",
  "sim", "thread", "status"}``
* ``{"type": "event", "name", "seq", "wall", "thread", "attrs"}``
* ``{"type": "metrics", "counters", "gauges", "histograms"}`` (one
  trailing snapshot line)

Attribute values that are not JSON-native (enums, dataclasses, paths)
are stringified on export; sonames and reason strings with embedded
quotes, backslashes or control characters round-trip through standard
JSON escaping (``tests/test_obs_export.py`` pins this).

:func:`parse_jsonl` reconstructs the spans/events/metrics;
:func:`span_tree` links spans into parent/child order and
:func:`render_span_tree` pretty-prints the hierarchy (the ``feam
trace`` output).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.obs.events import Event
from repro.obs.tracer import Span

_JSON_NATIVE = (str, int, float, bool, type(None))


def _plain(value):
    """Coerce an attribute value to something JSON-native."""
    if isinstance(value, _JSON_NATIVE):
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


def _plain_attrs(attrs: dict) -> dict:
    return {str(k): _plain(v) for k, v in attrs.items()}


def span_record(span: Span) -> dict:
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "attrs": _plain_attrs(span.attrs),
        "start": span.start_wall,
        "wall": span.wall_seconds,
        "sim": span.sim_seconds,
        "thread": span.thread,
        "status": span.status,
    }


def event_record(event: Event) -> dict:
    return {
        "type": "event",
        "name": event.name,
        "seq": event.seq,
        "wall": event.wall,
        "thread": event.thread,
        "attrs": _plain_attrs(event.attrs),
    }


def export_jsonl(collector) -> str:
    """Serialize a collector's spans, events and metrics snapshot."""
    lines = [json.dumps(span_record(span), sort_keys=True)
             for span in collector.tracer.spans]
    lines.extend(json.dumps(event_record(event), sort_keys=True)
                 for event in collector.events.events)
    metrics = collector.metrics.to_dict()
    metrics["type"] = "metrics"
    lines.append(json.dumps(metrics, sort_keys=True))
    return "\n".join(lines) + "\n"


@dataclasses.dataclass
class ParsedTrace:
    """The decoded contents of one JSONL trace file."""

    spans: list[Span]
    events: list[Event]
    metrics: dict

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


def parse_jsonl(text: str) -> ParsedTrace:
    """Decode :func:`export_jsonl` output back into spans and events."""
    spans: list[Span] = []
    events: list[Event] = []
    metrics: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON "
                             f"({exc})") from exc
        kind = record.get("type")
        if kind == "span":
            spans.append(Span(
                name=record["name"], span_id=record["id"],
                parent_id=record["parent"], attrs=record["attrs"],
                start_wall=record["start"],
                wall_seconds=record["wall"],
                sim_seconds=record.get("sim", 0.0),
                thread=record.get("thread", ""),
                status=record.get("status", "ok")))
        elif kind == "event":
            events.append(Event(
                name=record["name"], seq=record["seq"],
                wall=record["wall"], thread=record.get("thread", ""),
                attrs=record["attrs"]))
        elif kind == "metrics":
            metrics = {key: record.get(key, {})
                       for key in ("counters", "gauges", "histograms")}
        else:
            raise ValueError(
                f"trace line {lineno}: unknown record type {kind!r}")
    return ParsedTrace(spans=spans, events=events, metrics=metrics)


@dataclasses.dataclass
class SpanNode:
    """One span with its children, start-ordered."""

    span: Span
    children: list["SpanNode"] = dataclasses.field(default_factory=list)


def span_tree(spans: list[Span]) -> list[SpanNode]:
    """Link spans into root nodes (unknown parents become roots)."""
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: list[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = (nodes.get(span.parent_id)
                  if span.parent_id is not None else None)
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.span.start_wall,
                                          n.span.span_id))
    roots.sort(key=lambda n: (n.span.start_wall, n.span.span_id))
    return roots


def _display(value) -> str:
    return str(_plain(value)).replace("\n", "\\n").replace("\r", "\\r")


def _format_span(span: Span) -> str:
    parts = [span.name]
    attrs = ", ".join(f"{k}={_display(v)}" for k, v in span.attrs.items())
    if attrs:
        parts.append(f"[{attrs}]")
    if span.sim_seconds:
        parts.append(f"sim={span.sim_seconds:.1f}s")
    if span.wall_seconds is not None:
        parts.append(f"wall={span.wall_seconds * 1000:.2f}ms")
    if span.status != "ok":
        parts.append(f"status={span.status}")
    return " ".join(parts)


def render_span_tree(spans: list[Span]) -> str:
    """Pretty-print the hierarchy (the ``feam trace`` output)."""
    lines: list[str] = []

    def walk(node: SpanNode, prefix: str, tail: str) -> None:
        lines.append(prefix + tail + _format_span(node.span))
        child_prefix = prefix + ("   " if tail == "`- " else
                                 "|  " if tail == "|- " else "")
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            walk(child, child_prefix, "`- " if last else "|- ")

    for root in span_tree(spans):
        walk(root, "", "")
    return "\n".join(lines)


def write_jsonl(path: str, collector) -> None:
    """Write the collector's trace to a real file on the host."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export_jsonl(collector))
