"""Telemetry serving: ``/metrics``, ``/healthz`` and ``/trace`` over HTTP.

The production story for FEAM telemetry is *scraping*, not log files:
a Prometheus-compatible collector polls ``/metrics`` while a batch
evaluation is running, a liveness probe polls ``/healthz``, and a
human debugging a run pulls ``/trace`` for the latest span tree.  All
of it is stdlib-only (``http.server``), so ``feam serve`` works in any
environment the framework itself works in.

Two halves:

* :func:`render_prometheus` -- the Prometheus text exposition (format
  0.0.4) of a :class:`~repro.obs.metrics.MetricsRegistry`: counters as
  ``_total`` samples, gauges verbatim, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``.  Dotted FEAM
  names are sanitised into the ``[a-zA-Z0-9_:]`` charset under a
  ``feam_`` namespace; the original dotted name is kept in the
  ``# HELP`` line.  Optional *labels* are attached to every sample
  with standard label-value escaping (backslash, double quote,
  newline).
* :class:`TelemetryServer` -- a threading HTTP server bound to the
  installed collector (or any collector you hand it), safe to run
  concurrently with ``evaluate_matrix``: every read goes through the
  thread-safe snapshot paths (``Tracer.snapshot``,
  ``MetricsRegistry.instruments``).

Endpoints:

========== ============================================================
path       response
========== ============================================================
/metrics   Prometheus text exposition of the collector's registry
/healthz   ``{"status": "ok", "spans": N, "events": N, "active": B,
           "breakers": {site: state}}``
/trace     the latest span tree as nested JSON
/slo       DEFAULT_RULES (or the server's rules) against live metrics,
           plus the same per-site ``breakers`` map
/alerts    one burn-rate evaluation tick of the server's alert engine
           (:mod:`repro.obs.alerts`) against live metrics; 503 while
           anything is firing.  ``/healthz`` reads the same engine
           without ticking it and degrades to 503 (``status:
           degraded``) while *critical* alerts fire
/snapshot  a ``repro.obs.watch.sample`` snapshot (metric summaries plus
           raw histogram buckets) -- the ``feam watch`` attach feed
/runs      the run ledger (:mod:`repro.obs.ledger`): per-run manifest
           summaries, newest last, plus the warehouse path
========== ============================================================

Both health-facing endpoints surface circuit-breaker state: the
resilience layer publishes one ``resilience.breaker.<site>.state``
gauge per site (0=closed, 1=half-open, 2=open) and
:func:`breaker_states` folds those back into words, so a probe can
alert on quarantined sites without parsing Prometheus text.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Sequence

import repro
from repro import obs
from repro.obs import alerts as alerts_mod
from repro.obs import ledger as ledger_mod
from repro.obs import slo as slo_mod
from repro.obs import wide as wide_mod
from repro.obs.export import span_record, span_tree

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Conventional exposition content type (Prometheus text format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Gauge names of the form ``resilience.breaker.<site>.state`` carry the
#: circuit-breaker state for one site.  The numeric codes mirror
#: ``repro.core.resilience.BREAKER_STATE_CODES`` -- duplicated here
#: (word side) because ``repro.obs`` is a strictly lower layer and must
#: not import ``repro.core``.
_BREAKER_GAUGE = re.compile(r"^resilience\.breaker\.(?P<site>.+)\.state$")
_BREAKER_WORDS = {0: "closed", 1: "half-open", 2: "open"}

#: Per-shard cache gauges (``engine.cache.<layer>.shard.<i>.hit_rate``)
#: are folded into ONE labeled metric family on export.  Exposing each
#: shard as its own metric name would mint ``layers x shards`` series
#: names (48 with the default 16-shard config) that no dashboard can
#: aggregate; ``{layer=...,shard=...}`` labels keep the cardinality in
#: label space where PromQL ``sum by (layer)`` can fold it.
_SHARD_GAUGE = re.compile(
    r"^engine\.cache\.(?P<layer>[^.]+)\.shard\.(?P<shard>\d+)\.hit_rate$")


def breaker_states(registry) -> dict:
    """Per-site circuit-breaker state words from breaker gauges.

    Scans the registry for ``resilience.breaker.<site>.state`` gauges
    and maps their codes back to state words; unknown codes are
    reported verbatim so a skewed producer is visible, not hidden.
    """
    _counters, gauges, _histograms = registry.instruments()
    states = {}
    for name, gauge in gauges.items():
        match = _BREAKER_GAUGE.match(name)
        if match is not None:
            code = int(gauge.value)
            states[match.group("site")] = _BREAKER_WORDS.get(
                code, f"code-{code}")
    return dict(sorted(states.items()))


def _metric_name(name: str, namespace: str) -> str:
    """A valid Prometheus metric name for a dotted FEAM name."""
    sanitized = _NAME_SANITIZE.sub("_", name)
    return f"{namespace}_{sanitized}" if namespace else sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``,
    and newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels: Optional[dict], extra: str = "") -> str:
    """Render ``{k="v",...}`` (empty string when there are no labels)."""
    parts = [f'{key}="{escape_label_value(value)}"'
             for key, value in sorted((labels or {}).items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    """A float the exposition parsers read back exactly (repr)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(registry, namespace: str = "feam",
                      labels: Optional[dict] = None) -> str:
    """The registry as Prometheus text exposition (format 0.0.4).

    *labels* are attached to every sample (e.g. ``{"run": "matrix"}``)
    with standard escaping; histogram buckets additionally carry their
    ``le`` edge, cumulative, ending in ``le="+Inf"``.
    """
    counters, gauges, histograms = registry.instruments()
    lines: list[str] = []
    plain = _label_str(labels)

    for name, counter in sorted(counters.items()):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# HELP {metric} FEAM counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{plain} {_num(counter.value)}")

    shard_samples: list[tuple[str, int, float]] = []
    for name, gauge in sorted(gauges.items()):
        match = _SHARD_GAUGE.match(name)
        if match is not None:
            shard_samples.append((match.group("layer"),
                                  int(match.group("shard")), gauge.value))
            continue
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} FEAM gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{plain} {_num(gauge.value)}")

    if shard_samples:
        metric = _metric_name("engine.cache.shard.hit_rate", namespace)
        lines.append(f"# HELP {metric} FEAM per-shard cache hit rate "
                     f"(labels: layer, shard)")
        lines.append(f"# TYPE {metric} gauge")
        for layer, shard, value in sorted(shard_samples):
            merged = dict(labels or {})
            merged.update({"layer": layer, "shard": str(shard)})
            lines.append(f"{metric}{_label_str(merged)} {_num(value)}")

    for name, histogram in sorted(histograms.items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} FEAM histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        pairs = histogram.bucket_counts()
        with histogram._lock:
            total, count = histogram.total, histogram.count
        for bound, cumulative in pairs:
            edge = "+Inf" if bound is None else _num(bound)
            bucket_labels = _label_str(labels, extra=f'le="{edge}"')
            lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
        lines.append(f"{metric}_sum{plain} {_num(total)}")
        lines.append(f"{metric}_count{plain} {count}")

    return "\n".join(lines) + "\n"


def render_build_info(namespace: str = "feam",
                      labels: Optional[dict] = None) -> str:
    """The ``feam_build_info`` gauge: package and schema versions.

    The standard Prometheus idiom for version telemetry -- a constant
    ``1`` whose *labels* carry the versions, so dashboards can join
    any other series against the code that produced it.  Schema labels
    cover every on-disk artefact a scraper might also be reading: wide
    events, run-ledger manifests and incident timelines.
    """
    merged = dict(labels or {})
    merged.update({
        "version": repro.__version__,
        "wide_schema": str(wide_mod.SCHEMA_VERSION),
        "ledger_schema": str(ledger_mod.SCHEMA_VERSION),
        "alert_schema": str(alerts_mod.SCHEMA_VERSION),
    })
    metric = _metric_name("build.info", namespace)
    return (f"# HELP {metric} FEAM build and schema versions\n"
            f"# TYPE {metric} gauge\n"
            f"{metric}{_label_str(merged)} 1\n")


def trace_tree_json(spans: Sequence) -> dict:
    """The span list as a nested JSON-ready tree (the ``/trace`` body)."""
    def node(tree_node) -> dict:
        record = span_record(tree_node.span)
        record.pop("type", None)
        record["children"] = [node(child)
                              for child in tree_node.children]
        return record

    roots = span_tree(list(spans))
    return {"span_count": len(spans), "roots": [node(r) for r in roots]}


class _Handler(BaseHTTPRequestHandler):
    """Routes one GET; the server instance carries the collector."""

    server: "TelemetryServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        telemetry = self.server.telemetry
        collector = telemetry.collector()
        if path == "/metrics":
            body = (render_prometheus(
                collector.metrics, namespace=telemetry.namespace,
                labels=telemetry.labels)
                + render_build_info(namespace=telemetry.namespace,
                                    labels=telemetry.labels)
            ).encode("utf-8")
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/healthz":
            # Reads alert state without ticking the engine: liveness
            # probes must not advance burn windows, only scrapes of
            # ``/alerts`` evaluate.  Critical firing alerts degrade
            # the probe to 503 so orchestrators stop routing to (or
            # restart) an instance that is actively paging.
            spans = collector.tracer.snapshot()
            engine = telemetry.alerts
            degraded = engine.has_critical_firing
            payload = {
                "status": "degraded" if degraded else "ok",
                "active": bool(collector.active),
                "spans": len(spans),
                "events": len(getattr(collector.events, "events", ())),
                "breakers": breaker_states(collector.metrics),
                "alerts": {
                    "firing": len(engine.firing),
                    "pending": len(engine.pending),
                    "critical_firing": degraded,
                },
            }
            self._reply_json(503 if degraded else 200, payload)
        elif path == "/trace":
            spans = collector.tracer.snapshot()
            self._reply_json(200, trace_tree_json(spans))
        elif path == "/snapshot":
            # The ``feam watch`` attach-mode feed: a watch.sample()
            # snapshot (metric summaries + raw histogram buckets).
            from repro.obs import watch as watch_mod
            self._reply_json(200, watch_mod.sample(collector))
        elif path == "/slo":
            report = slo_mod.evaluate(
                telemetry.rules, collector.metrics.to_dict())
            payload = report.to_dict()
            payload["breakers"] = breaker_states(collector.metrics)
            self._reply_json(200 if report.ok else 503, payload)
        elif path == "/alerts":
            # Scrape-driven evaluation: every GET is one burn-rate
            # tick over the live metrics snapshot (the serialised
            # lock keeps concurrent scrapes from interleaving a tick).
            with telemetry.alerts_lock:
                telemetry.alerts.observe(collector.metrics.to_dict())
                payload = telemetry.alerts.to_dict()
            firing = bool(payload["firing"])
            self._reply_json(503 if firing else 200, payload)
        elif path == "/runs":
            runs = telemetry.ledger.runs()
            payload = {
                "path": telemetry.ledger.path,
                "count": len(runs),
                "runs": [{key: run.get(key)
                          for key in ("run_id", "ts", "kind", "seed")}
                         | {"cells": (run.get("rollup") or {}).get("cells")}
                         for run in runs],
            }
            self._reply_json(200, payload)
        else:
            self._reply_json(404, {"error": f"unknown path {path!r}",
                                   "paths": ["/metrics", "/healthz",
                                             "/trace", "/slo",
                                             "/alerts", "/snapshot",
                                             "/runs"]})

    def _reply_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._reply(status, "application/json; charset=utf-8", body)

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        pass  # scrapers poll; stderr noise helps nobody


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    telemetry: "TelemetryServer"


class TelemetryServer:
    """A background ``/metrics`` + ``/healthz`` + ``/trace`` server.

    *collector* may be a fixed :class:`~repro.obs.Collector` or a
    zero-arg callable returning one (defaults to the process-installed
    collector, so a server started before ``obs.capture()`` follows
    the capture).  Bind *port* 0 to let the OS pick a free port (read
    it back from :attr:`port`).

    Usage::

        with obs.capture() as collector:
            with TelemetryServer(collector, port=9464) as server:
                engine.evaluate_matrix(binaries, sites)
                ...  # scrape http://127.0.0.1:9464/metrics meanwhile
    """

    def __init__(self, collector=None, host: str = "127.0.0.1",
                 port: int = 9464, namespace: str = "feam",
                 labels: Optional[dict] = None,
                 rules: Optional[Sequence[slo_mod.SloRule]] = None,
                 ledger: Optional[ledger_mod.RunLedger] = None,
                 alerts: Optional[alerts_mod.AlertEngine] = None) -> None:
        if collector is None:
            self.collector: Callable = obs.current
        elif callable(collector):
            self.collector = collector
        else:
            self.collector = lambda: collector
        self.namespace = namespace
        self.labels = dict(labels) if labels else None
        self.rules = tuple(rules) if rules is not None \
            else slo_mod.DEFAULT_RULES
        self.ledger = (ledger if ledger is not None
                       else ledger_mod.RunLedger())
        # The burn-rate engine behind /alerts and /healthz.  The
        # default set is alerts_mod.DEFAULT_ALERT_SLOS -- narrower
        # than self.rules on purpose (wall-clock and warm-cache
        # objectives page nobody).
        self.alerts = (alerts if alerts is not None
                       else alerts_mod.AlertEngine())
        self.alerts_lock = threading.Lock()
        self._httpd = _Server((host, port), _Handler)
        self._httpd.telemetry = self
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="feam-telemetry", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
