"""Declarative SLO rules over a metrics snapshot.

A rule is one line of text::

    engine.cache.hit_rate            >= 0.5
    matrix.unknown_cells.pct         <= 10      [critical]
    engine.cell.wall_seconds:p95     <= 0.25
    resolution.copies.total          >  0        ?

The left side selects an instrument from a
:meth:`~repro.obs.metrics.MetricsRegistry.to_dict` snapshot -- a
counter or gauge by its dotted name, or ``histogram:stat`` where
``stat`` is one of ``count``/``sum``/``min``/``max``/``mean``/``p50``/
``p95``.  The operator is one of ``<= < >= > ==``; the right side is
the numeric threshold.  A trailing ``?`` marks the rule *optional*:
an absent metric is then reported as ``skipped`` instead of failing
the evaluation (mandatory rules treat absence as a violation -- a
missing metric usually means the instrumented path never ran).

A trailing ``[critical]`` or ``[warn]`` tag sets the rule's
*severity* -- the vocabulary the alert engine
(:mod:`repro.obs.alerts`) shares with ``feam slo``: critical
violations page (``/healthz`` degrades to 503 while they fire), warn
violations inform.  Untagged rules default to ``warn``.

:func:`evaluate` is pure (snapshot in, :class:`SloReport` out);
:func:`check` additionally emits one ``slo.violation`` event per
failed rule and bumps the ``slo.violations`` counter on the installed
collector, so alerts land in the same trace as everything else.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional, Sequence

from repro import obs

_OPS = {
    "<=": lambda observed, threshold: observed <= threshold,
    ">=": lambda observed, threshold: observed >= threshold,
    "<": lambda observed, threshold: observed < threshold,
    ">": lambda observed, threshold: observed > threshold,
    "==": lambda observed, threshold: observed == threshold,
}

_HISTOGRAM_STATS = ("count", "sum", "min", "max", "mean", "p50", "p95")

#: The shared severity vocabulary: ``feam slo`` reports it, the alert
#: engine (:mod:`repro.obs.alerts`) escalates on it.
SEVERITIES = ("critical", "warn")

_RULE_RE = re.compile(
    r"^(?P<metric>[A-Za-z0-9_.\-]+(?::[a-z0-9]+)?)\s*"
    r"(?P<op><=|>=|==|<|>)\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)\s*"
    r"(?P<optional>\?)?\s*"
    r"(?:\[(?P<severity>critical|warn)\])?$")


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One parsed threshold rule."""

    metric: str                    # dotted name, may carry ":stat"
    op: str                        # one of _OPS
    threshold: float
    optional: bool = False
    severity: str = "warn"         # one of SEVERITIES

    @property
    def name(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"

    def select(self, snapshot: dict) -> Optional[float]:
        """The observed value in *snapshot*, or None when absent."""
        metric, _, stat = self.metric.partition(":")
        if stat:
            summary = snapshot.get("histograms", {}).get(metric)
            if summary is None:
                return None
            if stat not in _HISTOGRAM_STATS:
                raise ValueError(
                    f"unknown histogram stat {stat!r} in rule "
                    f"{self.name!r}; choose from "
                    f"{', '.join(_HISTOGRAM_STATS)}")
            return summary.get(stat)
        for family in ("gauges", "counters"):
            values = snapshot.get(family, {})
            if metric in values:
                return values[metric]
        return None


@dataclasses.dataclass(frozen=True)
class SloResult:
    """One rule's verdict against one snapshot."""

    rule: SloRule
    status: str                    # "pass" | "fail" | "skipped"
    observed: Optional[float]
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"


@dataclasses.dataclass
class SloReport:
    """Every rule's verdict; ``ok`` iff nothing failed."""

    results: list[SloResult]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violations(self) -> list[SloResult]:
        return [r for r in self.results if r.status == "fail"]

    def render(self) -> str:
        if not self.results:
            return "(no SLO rules)"
        width = max(len(r.rule.name) for r in self.results)
        lines = []
        for result in self.results:
            observed = ("absent" if result.observed is None
                        else f"{result.observed:g}")
            word = {"pass": "PASS", "fail": "FAIL",
                    "skipped": "SKIP"}[result.status]
            line = (f"{word}  {result.rule.name:<{width}}  "
                    f"observed={observed}")
            if result.status == "fail":
                line += f"  [{result.rule.severity}]"
            if result.reason:
                line += f"  ({result.reason})"
            lines.append(line)
        failed = len(self.violations)
        lines.append(f"{len(self.results)} rules, {failed} violated"
                     + ("" if failed else " -- all SLOs met"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "results": [{
                "rule": result.rule.name,
                "metric": result.rule.metric,
                "status": result.status,
                "severity": result.rule.severity,
                "observed": result.observed,
                "threshold": result.rule.threshold,
                "reason": result.reason,
            } for result in self.results],
        }


def parse_rule(line: str) -> SloRule:
    """Parse one ``metric op threshold [?] [[severity]]`` line."""
    match = _RULE_RE.match(line.strip())
    if match is None:
        raise ValueError(f"unparsable SLO rule: {line.strip()!r} "
                         f"(expected 'metric <= 0.5', histogram stats "
                         f"as 'name:p95', trailing '?' for optional, "
                         f"'[critical]'/'[warn]' for severity)")
    return SloRule(
        metric=match.group("metric"),
        op=match.group("op"),
        threshold=float(match.group("threshold")),
        optional=match.group("optional") is not None,
        severity=match.group("severity") or "warn")


def parse_rules(text: str) -> list[SloRule]:
    """Parse a rules file: one rule per line, ``#`` comments, blanks ok."""
    rules = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            rules.append(parse_rule(line))
    return rules


#: The default service objectives for a warm batch-evaluation run.
#: The resilience rules are optional: their counters only exist once
#: the retry/fault plumbing ran, and a clean (no-fault) run must show
#: zero injections and zero retries.  ``obs.sampling.dropped`` is an
#: informational rule (trivially satisfiable, optional): it surfaces
#: the tail sampler's drop count in every SLO report so a run whose
#: sampling silently stopped dropping -- span memory ballooning -- is
#: visible where operators already look.
#: Severity tags make the lines burn-rate-ready: the alert engine
#: (:mod:`repro.obs.alerts`) derives its default alert set from these
#: same rules, so a rule that fails in ``feam slo`` and one that fires
#: in ``feam alerts`` name the same severity.
DEFAULT_RULES: tuple[SloRule, ...] = tuple(parse_rules("""
    engine.cache.hit_rate          >= 0.5          [warn]
    matrix.unknown_cells.pct       <= 10           [critical]
    matrix.cells.total             >  0            [critical]
    engine.cell.wall_seconds:p95   <= 2     ?      [warn]
    engine.matrix.worker_utilization >= 0.1  ?     [warn]
    resilience.faults.injected     <= 0     ?      [critical]
    resilience.retries.total       <= 0     ?      [warn]
    obs.sampling.dropped           >= 0     ?      [warn]
    persist.cache.quarantined      <= 0     ?      [critical]
"""))


def evaluate(rules: Sequence[SloRule], snapshot: dict) -> SloReport:
    """Check every rule against a ``MetricsRegistry.to_dict`` snapshot."""
    results = []
    for rule in rules:
        observed = rule.select(snapshot)
        if observed is None:
            if rule.optional:
                results.append(SloResult(
                    rule=rule, status="skipped", observed=None,
                    reason="metric absent (optional rule)"))
            else:
                results.append(SloResult(
                    rule=rule, status="fail", observed=None,
                    reason="metric absent"))
            continue
        ok = _OPS[rule.op](observed, rule.threshold)
        results.append(SloResult(
            rule=rule, status="pass" if ok else "fail",
            observed=float(observed)))
    return SloReport(results=results)


def check(rules: Sequence[SloRule],
          snapshot: Optional[dict] = None) -> SloReport:
    """Evaluate against the installed collector, emitting alert events.

    With no explicit *snapshot*, reads the installed registry.  Every
    violation becomes one structured ``slo.violation`` event and one
    tick of the ``slo.violations`` counter, so downstream consumers
    (the JSONL trace, ``/metrics``) see the alerts.
    """
    if snapshot is None:
        snapshot = obs.metrics().to_dict()
    report = evaluate(rules, snapshot)
    for result in report.violations:
        obs.event("slo.violation", rule=result.rule.name,
                  metric=result.rule.metric,
                  severity=result.rule.severity,
                  observed=result.observed,
                  threshold=result.rule.threshold,
                  reason=result.reason or "threshold crossed")
        obs.counter("slo.violations").inc()
    return report
