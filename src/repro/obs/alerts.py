"""Multi-window burn-rate alerting with an incident timeline.

The SLO layer (:mod:`repro.obs.slo`) answers "is this snapshot
healthy?"; this module answers the operational question behind it:
"should someone be paged, since when, and has it recovered?".  Three
pieces:

* **Burn-rate evaluation** -- every :class:`AlertRule` wraps one SLO
  rule (same grammar, same severity vocabulary) in a fast/slow window
  pair a la the SRE workbook, discretised over evaluation *ticks*: a
  rule's condition holds when it violated on **every** tick of the
  fast window AND on at least ``slow_fraction`` of the slow window.
  The fast window makes alerts responsive, the slow window stops a
  single bad scrape from paging.
* **A real state machine** -- each alert (dedup key = the rule name,
  or ``anomaly:<feature>:<group>`` for detector conditions) moves
  ``inactive -> pending -> firing -> resolved``.  ``for_ticks``
  damping holds an alert in ``pending`` until the condition has been
  true that many consecutive ticks; a condition that clears while
  pending is cancelled back to ``inactive`` without ever paging.
* **An incident timeline** -- every transition is one schema-versioned
  JSONL record (reusing :mod:`repro.util.jsonl`), one structured
  ``alert.transition`` obs event, and one fan-out to the pluggable
  sinks (:class:`StderrSink` one-liners, :class:`JsonlSink` files,
  :class:`MemorySink` for tests).

Determinism contract: timeline records carry *logical* ticks and
sequence numbers, never wall timestamps, and the default alert rules
read only deterministic (simulated/count-based) metrics -- so two
same-seed chaos runs replay to byte-identical timelines, which the
``alert-gate`` CI job asserts with ``cmp``.

Like the rest of ``repro.obs`` this is a strictly lower layer: wide
events arrive as plain dicts, and engine-aware feature extraction for
the anomaly detector lives in ``repro.core.engine.anomaly_features``.
"""

from __future__ import annotations

import dataclasses
import sys
from collections import deque
from typing import Iterable, Optional, Sequence

from repro import obs
from repro.obs import slo as slo_mod
from repro.obs.ledger import numeric_metrics
from repro.util.jsonl import JsonlAppender, read_jsonl

#: Incident-timeline record schema.  Bump on breaking shape changes;
#: readers refuse newer records (same discipline as the wide-event and
#: ledger schemas).
SCHEMA_VERSION = 1

#: Alert states, in lifecycle order.
STATES = ("inactive", "pending", "firing", "resolved")


@dataclasses.dataclass(frozen=True)
class BurnWindows:
    """One fast/slow evaluation-window pair, in ticks.

    ``fast`` ticks must *all* violate and at least ``slow_fraction``
    of the last ``slow`` ticks must violate for the condition to hold.
    Windows shorter than their nominal size (early in a run) evaluate
    over what exists -- an alert engine that cannot fire until tick 6
    would miss every short replay.
    """

    fast: int = 2
    slow: int = 6
    slow_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.fast < 1 or self.slow < self.fast:
            raise ValueError(
                f"burn windows need 1 <= fast <= slow, got "
                f"fast={self.fast} slow={self.slow}")
        if not 0.0 < self.slow_fraction <= 1.0:
            raise ValueError(f"slow_fraction must be in (0, 1], got "
                             f"{self.slow_fraction}")

    @classmethod
    def parse(cls, text: str) -> "BurnWindows":
        """Parse ``FAST:SLOW`` or ``FAST:SLOW:FRACTION`` (e.g. 2:6:0.5)."""
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"unparsable burn windows {text!r} "
                             f"(expected FAST:SLOW or FAST:SLOW:FRACTION)")
        try:
            fast, slow = int(parts[0]), int(parts[1])
            fraction = float(parts[2]) if len(parts) == 3 else 0.5
        except ValueError:
            raise ValueError(f"unparsable burn windows {text!r} "
                             f"(numbers expected)") from None
        return cls(fast=fast, slow=slow, slow_fraction=fraction)


@dataclasses.dataclass(frozen=True)
class AlertRule:
    """One SLO rule armed with burn windows and for-duration damping."""

    slo: slo_mod.SloRule
    windows: BurnWindows = BurnWindows()
    for_ticks: int = 2

    @property
    def key(self) -> str:
        """The dedup key: one live alert per rule, however often it
        re-evaluates."""
        return f"slo:{self.slo.name}"

    @property
    def severity(self) -> str:
        return self.slo.severity


def alert_rules(slo_rules: Sequence[slo_mod.SloRule],
                windows: Optional[BurnWindows] = None,
                for_ticks: int = 2) -> tuple[AlertRule, ...]:
    """Arm every SLO rule with the same windows and damping."""
    windows = windows or BurnWindows()
    return tuple(AlertRule(slo=rule, windows=windows,
                           for_ticks=max(1, int(for_ticks)))
                 for rule in slo_rules)


#: The default alert set for live metrics snapshots and wide-event
#: replays.  Deliberately narrower than ``slo.DEFAULT_RULES``: wall
#: clocks, worker utilization and sampling counters are host-dependent
#: (they would break the byte-identical-timeline guarantee), and the
#: cache hit rate is a warm-run objective that a legitimate cold run
#: undercuts.  What remains is deterministic per seed.
DEFAULT_ALERT_SLOS: tuple[slo_mod.SloRule, ...] = tuple(
    slo_mod.parse_rules("""
        matrix.unknown_cells.pct    <= 10      [critical]
        matrix.cells.total          >  0       [critical]
        resilience.faults.injected  <= 0   ?   [critical]
        resilience.retries.total    <= 0   ?   [warn]
    """))

#: The default alert set for run-ledger replays: manifests flatten to
#: ``rollup.*`` keys (:func:`repro.obs.ledger.numeric_metrics`), not
#: live instrument names.
DEFAULT_LEDGER_SLOS: tuple[slo_mod.SloRule, ...] = tuple(
    slo_mod.parse_rules("""
        rollup.cells                >  0       [critical]
        rollup.faults_injected      <= 0   ?   [critical]
        rollup.retries              <= 0   ?   [warn]
    """))


def default_alert_rules(windows: Optional[BurnWindows] = None,
                        for_ticks: int = 2) -> tuple[AlertRule, ...]:
    return alert_rules(DEFAULT_ALERT_SLOS, windows=windows,
                       for_ticks=for_ticks)


# ---------------------------------------------------------------------------
# Sinks

class MemorySink:
    """Collects transition records in a list (tests, ``/alerts``)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class StderrSink:
    """One human-readable line per transition (default: stderr)."""

    def __init__(self, stream=None) -> None:
        self._stream = stream

    def emit(self, record: dict) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        detail = ""
        if record.get("observed") is not None:
            detail = f"  observed={record['observed']:g}"
            if record.get("threshold") is not None:
                detail += f" threshold={record['threshold']:g}"
        stream.write(
            f"alert {record['to'].upper():<8} [{record['severity']}] "
            f"{record['alert']}  (tick {record['tick']}){detail}\n")

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends each transition to an incident-timeline JSONL file."""

    def __init__(self, path: str) -> None:
        self._appender = JsonlAppender(path)
        self.path = path

    @property
    def written(self) -> int:
        return self._appender.written

    def emit(self, record: dict) -> None:
        self._appender.append(record)

    def close(self) -> None:
        self._appender.close()


def read_timeline(path: str) -> list[dict]:
    """Load an incident timeline, refusing newer-schema records."""
    def check(lineno: int, record: dict) -> bool:
        schema = record.get("schema", SCHEMA_VERSION)
        if isinstance(schema, int) and schema > SCHEMA_VERSION:
            raise ValueError(
                f"timeline line {lineno}: schema {schema} is newer "
                f"than this reader (understands <= {SCHEMA_VERSION})")
        return True

    return read_jsonl(path, check=check, label="timeline")


# ---------------------------------------------------------------------------
# The engine

@dataclasses.dataclass
class _AlertState:
    """Mutable per-key lifecycle state inside the engine."""

    key: str
    severity: str
    rule: Optional[AlertRule] = None
    state: str = "inactive"
    since_tick: Optional[int] = None      # when the current state began
    consecutive: int = 0                  # condition-true ticks in a row
    burn_fast: Optional[float] = None
    burn_slow: Optional[float] = None
    observed: Optional[float] = None
    context: dict = dataclasses.field(default_factory=dict)
    history: deque = dataclasses.field(default_factory=deque)

    def status(self) -> dict:
        """The JSON-ready status row (``/alerts``, ``--json``)."""
        return {
            "alert": self.key,
            "severity": self.severity,
            "state": self.state,
            "since_tick": self.since_tick,
            "rule": self.rule.slo.name if self.rule is not None else None,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "observed": self.observed,
            "context": dict(self.context),
        }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 6)


class AlertEngine:
    """Evaluates alert rules tick by tick and runs the state machine.

    One :meth:`observe` call is one evaluation tick: every rule is
    checked against the metrics *snapshot* (a
    ``MetricsRegistry.to_dict`` dict), burn rates update, and state
    transitions fan out to the sinks, the obs facade (one
    ``alert.transition`` event + ``alerts.transitions`` counter per
    transition, ``alerts.firing``/``alerts.pending``/
    ``alerts.firing.critical`` gauges per tick) and the in-memory
    transition log.  External conditions (the anomaly detector) enter
    through :meth:`observe_anomalies` / :meth:`set_condition` and share
    the same machine and dedup space.
    """

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None,
                 sinks: Sequence = (), emit_obs: bool = True) -> None:
        self.rules: tuple[AlertRule, ...] = (
            tuple(rules) if rules is not None else default_alert_rules())
        self.sinks = list(sinks)
        self.emit_obs = emit_obs
        self.tick = 0
        self.transitions: list[dict] = []
        self._states: dict[str, _AlertState] = {}
        for rule in self.rules:
            self._states[rule.key] = _AlertState(
                key=rule.key, severity=rule.severity, rule=rule,
                history=deque(maxlen=rule.windows.slow))

    # -- evaluation ------------------------------------------------------

    def observe(self, snapshot: dict,
                context: Optional[dict] = None) -> list[dict]:
        """One evaluation tick; returns this tick's transitions."""
        self.tick += 1
        emitted: list[dict] = []
        for rule in self.rules:
            state = self._states[rule.key]
            observed = rule.slo.select(snapshot)
            if observed is None:
                violated = not rule.slo.optional
            else:
                violated = not slo_mod._OPS[rule.slo.op](
                    observed, rule.slo.threshold)
            state.history.append(1 if violated else 0)
            windows = rule.windows
            fast = list(state.history)[-windows.fast:]
            state.burn_fast = _round(sum(fast) / len(fast))
            state.burn_slow = _round(
                sum(state.history) / len(state.history))
            state.observed = _round(observed) \
                if observed is not None else None
            condition = (state.burn_fast >= 1.0 - 1e-9
                         and state.burn_slow
                         >= windows.slow_fraction - 1e-9)
            if context:
                state.context = dict(context)
            emitted.extend(self._step(state, condition,
                                      for_ticks=rule.for_ticks))
        self._publish_gauges()
        return emitted

    def set_condition(self, key: str, active: bool,
                      severity: str = "warn",
                      context: Optional[dict] = None,
                      for_ticks: int = 1) -> list[dict]:
        """Drive one externally-evaluated condition (dedup by *key*)."""
        state = self._states.get(key)
        if state is None:
            state = _AlertState(key=key, severity=severity)
            self._states[key] = state
        if context:
            state.context = dict(context)
        emitted = self._step(state, active, for_ticks=max(1, for_ticks))
        self._publish_gauges()
        return emitted

    def observe_anomalies(self, anomalies: Iterable) -> list[dict]:
        """Fold a detector pass in: new anomalies raise conditions,
        vanished ones clear them (their alerts resolve)."""
        emitted: list[dict] = []
        seen: set[str] = set()
        for anomaly in anomalies:
            seen.add(anomaly.key)
            emitted.extend(self.set_condition(
                anomaly.key, True, severity=anomaly.severity,
                context=anomaly.to_dict()))
        for key, state in sorted(self._states.items()):
            if key.startswith("anomaly:") and key not in seen:
                emitted.extend(self.set_condition(
                    key, False, severity=state.severity))
        return emitted

    # -- the state machine ----------------------------------------------

    def _step(self, state: _AlertState, condition: bool,
              for_ticks: int) -> list[dict]:
        emitted: list[dict] = []
        if condition:
            state.consecutive += 1
            if state.state in ("inactive", "resolved"):
                emitted.append(self._transition(state, "pending"))
                state.consecutive = 1
            if state.state == "pending" \
                    and state.consecutive >= for_ticks:
                emitted.append(self._transition(state, "firing"))
        else:
            state.consecutive = 0
            if state.state == "pending":
                # Damped: the condition cleared before for_ticks --
                # nobody is paged, but the timeline shows the wobble.
                emitted.append(self._transition(state, "inactive"))
            elif state.state == "firing":
                emitted.append(self._transition(state, "resolved"))
        return emitted

    def _transition(self, state: _AlertState, to_state: str) -> dict:
        record = {
            "schema": SCHEMA_VERSION,
            "seq": len(self.transitions) + 1,
            "tick": self.tick,
            "alert": state.key,
            "severity": state.severity,
            "from": state.state,
            "to": to_state,
            "rule": (state.rule.slo.name if state.rule is not None
                     else None),
            "observed": state.observed,
            "threshold": (state.rule.slo.threshold
                          if state.rule is not None else None),
            "burn_fast": state.burn_fast,
            "burn_slow": state.burn_slow,
            "context": dict(state.context),
        }
        state.state = to_state
        state.since_tick = self.tick
        self.transitions.append(record)
        for sink in self.sinks:
            sink.emit(record)
        if self.emit_obs:
            obs.event("alert.transition", alert=state.key,
                      severity=state.severity,
                      from_state=record["from"], to_state=to_state,
                      tick=self.tick, rule=record["rule"],
                      observed=record["observed"])
            obs.counter("alerts.transitions").inc()
        return record

    def _publish_gauges(self) -> None:
        if not self.emit_obs:
            return
        obs.gauge("alerts.firing").set(len(self.firing))
        obs.gauge("alerts.pending").set(len(self.pending))
        obs.gauge("alerts.firing.critical").set(
            sum(1 for status in self.firing
                if status["severity"] == "critical"))

    # -- state views -----------------------------------------------------

    def _by_state(self, word: str) -> list[dict]:
        return [state.status()
                for key, state in sorted(self._states.items())
                if state.state == word]

    @property
    def firing(self) -> list[dict]:
        return self._by_state("firing")

    @property
    def pending(self) -> list[dict]:
        return self._by_state("pending")

    @property
    def has_critical_firing(self) -> bool:
        return any(status["severity"] == "critical"
                   for status in self.firing)

    def to_dict(self) -> dict:
        """The ``/alerts`` endpoint / ``feam alerts --json`` payload."""
        return {
            "schema": SCHEMA_VERSION,
            "tick": self.tick,
            "transitions": len(self.transitions),
            "firing": self.firing,
            "pending": self.pending,
            "alerts": [state.status() for _key, state
                       in sorted(self._states.items())
                       if state.state != "inactive"
                       or state.since_tick is not None],
        }

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ---------------------------------------------------------------------------
# Replay: wide-event and ledger streams as evaluation ticks

def wide_snapshots(records: Sequence[dict], batch: int = 10):
    """Wide events folded into cumulative metric snapshots, one per
    *batch* records (plus a final partial batch).

    Yields ``(snapshot, context)`` pairs: the snapshot carries the
    same gauge names the live engine publishes
    (``matrix.unknown_cells.pct``, ``resilience.faults.injected``,
    ...) so one rules vocabulary covers live and replayed streams; the
    context carries fault provenance (cumulative per-kind counts) for
    the incident timeline.  Wall-clock fields are deliberately never
    aggregated -- replaying two same-seed runs must produce identical
    snapshots.
    """
    batch = max(1, int(batch))
    cells = unknown = faults = retries = hits = lookups = 0
    fault_kinds: dict[str, int] = {}
    pending = 0
    for record in records:
        cells += 1
        pending += 1
        if record.get("outcome") == "unknown":
            unknown += 1
        kind = record.get("fault_kind")
        if kind:
            faults += 1
            fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
        attempts = record.get("attempts")
        if isinstance(attempts, (int, float)) and attempts > 1:
            retries += int(attempts) - 1
        for field in ("description_hit", "discovery_hit",
                      "evaluation_hit"):
            value = record.get(field)
            if value is not None:
                lookups += 1
                hits += 1 if value else 0
        if pending >= batch:
            yield _wide_snapshot(cells, unknown, faults, retries,
                                 hits, lookups), \
                {"cells": cells,
                 "fault_kinds": dict(sorted(fault_kinds.items()))}
            pending = 0
    if pending:
        yield _wide_snapshot(cells, unknown, faults, retries,
                             hits, lookups), \
            {"cells": cells,
             "fault_kinds": dict(sorted(fault_kinds.items()))}


def _wide_snapshot(cells, unknown, faults, retries, hits, lookups):
    gauges = {
        "matrix.cells.total": float(cells),
        "matrix.unknown_cells.pct": round(100.0 * unknown / cells, 6)
        if cells else 0.0,
        "resilience.faults.injected": float(faults),
        "resilience.retries.total": float(retries),
    }
    if lookups:
        gauges["engine.cache.hit_rate"] = round(hits / lookups, 6)
    return {"counters": {}, "gauges": gauges, "histograms": {}}


def replay_wide(records: Sequence[dict], engine: AlertEngine,
                batch: int = 10) -> int:
    """Replay wide events through *engine*; returns the tick count."""
    ticks = 0
    for snapshot, context in wide_snapshots(records, batch=batch):
        engine.observe(snapshot, context=context)
        ticks += 1
    return ticks


def replay_ledger(runs: Sequence[dict], engine: AlertEngine) -> int:
    """Replay ledger manifests (one run = one tick) through *engine*.

    Each manifest flattens to numeric gauges via
    :func:`repro.obs.ledger.numeric_metrics`, so rules use the
    ``rollup.*`` vocabulary (see :data:`DEFAULT_LEDGER_SLOS`).
    """
    ticks = 0
    for run in runs:
        snapshot = {"counters": {}, "gauges": numeric_metrics(run),
                    "histograms": {}}
        context = {key: run.get(key)
                   for key in ("run_id", "kind", "fault_profile")
                   if run.get(key) is not None}
        engine.observe(snapshot, context=context)
        ticks += 1
    return ticks


def render_alerts(engine: AlertEngine) -> str:
    """The ``feam alerts`` report: live states, then the tally."""
    lines = []
    active = [state for _key, state in sorted(engine._states.items())
              if state.state != "inactive"]
    for state in active:
        status = state.status()
        burn = ""
        if status["burn_fast"] is not None:
            burn = (f"  burn fast={status['burn_fast']:.2f}"
                    f"/slow={status['burn_slow']:.2f}")
        context = status["context"]
        provenance = ""
        if context.get("fault_kinds"):
            kinds = context["fault_kinds"]
            provenance = "  faults: " + ", ".join(
                f"{kind}={count}" for kind, count
                in sorted(kinds.items()))
        elif context.get("zscore") is not None:
            provenance = (f"  z={context['zscore']:.2f} "
                          f"value={context.get('value')}")
        lines.append(
            f"{status['state'].upper():<8} [{status['severity']}] "
            f"{status['alert']}  since tick "
            f"{status['since_tick']}{burn}{provenance}")
    firing = engine.firing
    critical = sum(1 for status in firing
                   if status["severity"] == "critical")
    lines.append(
        f"{len(firing)} firing ({critical} critical), "
        f"{len(engine.pending)} pending, "
        f"{len(engine.transitions)} transition(s) over "
        f"{engine.tick} tick(s)")
    return "\n".join(lines)


def render_timeline(records: Sequence[dict],
                    max_rows: int = 50) -> str:
    """A compact textual view of an incident timeline."""
    if not records:
        return "(empty timeline)"
    lines = []
    for record in records[:max_rows]:
        lines.append(
            f"tick {record.get('tick', '?'):>4}  "
            f"{record.get('from', '?')} -> {record.get('to', '?'):<9}"
            f"[{record.get('severity', '?')}] {record.get('alert')}")
    if len(records) > max_rows:
        lines.append(f"... and {len(records) - max_rows} more")
    return "\n".join(lines)


__all__ = [
    "SCHEMA_VERSION", "STATES", "BurnWindows", "AlertRule",
    "AlertEngine", "MemorySink", "StderrSink", "JsonlSink",
    "alert_rules", "default_alert_rules", "DEFAULT_ALERT_SLOS",
    "DEFAULT_LEDGER_SLOS", "read_timeline", "wide_snapshots",
    "replay_wide", "replay_ledger", "render_alerts",
    "render_timeline",
]
