"""Installable shared-library products.

A :class:`LibraryProduct` describes one shared object shipped by a compiler
runtime or an MPI implementation: its soname, on-disk filename, the symbol
versions it defines, its own dependencies, and its *glibc feature ceiling*
(the newest C-library feature level its code uses).

When a product is installed at a site, the ELF image it produces references
the newest GLIBC symbol version available there, capped by the ceiling --
exactly how building or shipping a library against a given glibc works.
This is what makes library *copies* (FEAM's resolution model) portable or
not: a product installed on a glibc-2.12 site carries ``GLIBC_2.7+``
references and its copy will not load on a glibc-2.5 site, while a
vendor-shipped product with a (2,3,4) ceiling travels anywhere.
"""

from __future__ import annotations

import dataclasses
import functools
import posixpath
from typing import Optional

from repro.elf.constants import ElfClass, ElfData, ElfMachine, ElfType
from repro.elf.structs import DynamicSymbol
from repro.elf.writer import BinarySpec, write_elf
from repro.sysmodel.fs import VirtualFilesystem
from repro.toolchain.libc import GlibcRelease, glibc_symbol


@dataclasses.dataclass(frozen=True)
class LibraryProduct:
    """A shared library as shipped by a runtime or MPI installation."""

    soname: str
    #: Real filename; when it differs from the soname, a soname symlink is
    #: installed alongside (``libmpi.so.0`` -> ``libmpi.so.0.0.2``).
    filename: Optional[str] = None
    #: Non-GLIBC symbol versions this library defines (GFORTRAN_1.0, ...).
    verdefs: tuple[str, ...] = ()
    #: Approximate on-disk size in bytes.
    size: int = 200_000
    #: Sonames of other shared objects this library itself needs
    #: (``libc.so.6`` is always implied).
    needed: tuple[str, ...] = ()
    #: Newest glibc feature level the library's code uses.
    glibc_ceiling: tuple[int, ...] = (2, 3, 4)
    #: Toolchain banner recorded in .comment.
    comment: tuple[str, ...] = ()
    #: Function names this library exports into its dynamic symbol table.
    #: Exports are versioned with the first non-base verdef when one
    #: exists (the common single-version-library layout).
    exports: tuple[str, ...] = ()

    @property
    def install_name(self) -> str:
        """The filename actually written to disk."""
        return self.filename or self.soname

    def spec(self, libc_release: GlibcRelease,
             machine: ElfMachine = ElfMachine.X86_64,
             elf_class: ElfClass = ElfClass.ELF64,
             data: ElfData = ElfData.LSB) -> BinarySpec:
        """The ELF description of this product built against *libc_release*."""
        req = libc_release.highest_at_most(self.glibc_ceiling)
        version_requirements = {"libc.so.6": (glibc_symbol(req),)}
        needed = tuple(dict.fromkeys(self.needed + ("libc.so.6",)))
        verdefs = (self.soname,) + self.verdefs if self.verdefs else ()
        export_version = self.verdefs[0] if self.verdefs else None
        symbols = tuple(
            DynamicSymbol(name=name, defined=True, version=export_version)
            for name in self.exports)
        return BinarySpec(
            machine=machine,
            elf_class=elf_class,
            data=data,
            etype=ElfType.DYN,
            soname=self.soname,
            needed=needed,
            version_requirements=version_requirements,
            version_definitions=verdefs,
            comment=self.comment,
            payload_size=self.size,
            symbols=symbols,
        )

    def install(self, fs: VirtualFilesystem, libdir: str,
                libc_release: GlibcRelease,
                machine: ElfMachine = ElfMachine.X86_64,
                elf_class: ElfClass = ElfClass.ELF64,
                data: ElfData = ElfData.LSB) -> str:
        """Write this product into ``libdir`` of *fs*; returns the soname path.

        The image is stored lazily (regenerated deterministically on read)
        with a soname symlink when the real filename differs.
        """
        spec = self.spec(libc_release, machine, elf_class, data)
        image_size = len(write_elf(spec))
        real_path = posixpath.join(libdir, self.install_name)
        fs.write_lazy(real_path, functools.partial(write_elf, spec),
                      image_size, mode=0o755)
        soname_path = posixpath.join(libdir, self.soname)
        if self.install_name != self.soname:
            fs.symlink(soname_path, self.install_name)
        return soname_path
