"""The link step.

:func:`link_program` reproduces what ``mpicc``/``mpif90`` + the system
linker decide when an application is built: the ``DT_NEEDED`` list (MPI
libraries first, then compiler runtime, then pthread/libc), the GNU symbol
versions referenced from each library, and the ``.comment`` banner.

The *referenced* GLIBC version is the newest symbol version available in
the build-time C library, capped by the application's own feature level
(``glibc_ceiling``): building on a glibc-2.12 site links a program that
demands ``GLIBC_2.7`` if it uses 2.7-era interfaces, while building the
same source on a glibc-2.3.4 site links a program satisfied everywhere.
This is the mechanism behind the paper's C-library determinant
(Section III.C).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.elf.constants import ElfClass, ElfData, ElfMachine, ElfType
from repro.elf.writer import BinarySpec, write_elf
from repro.toolchain.compilers import Compiler, Language, RuntimeDep
from repro.toolchain.libc import GlibcRelease, glibc_symbol


@dataclasses.dataclass(frozen=True)
class LinkInput:
    """Everything the link step needs to know."""

    name: str
    language: Language
    compiler: Compiler
    libc: GlibcRelease
    #: Newest glibc feature level the program's source uses.
    glibc_ceiling: tuple[int, ...] = (2, 3, 4)
    #: MPI libraries injected by the compiler wrapper (mpicc/mpif90).
    mpi_deps: tuple[RuntimeDep, ...] = ()
    #: Additional application-specific libraries (libz, libX11, ...).
    extra_deps: tuple[RuntimeDep, ...] = ()
    machine: ElfMachine = ElfMachine.X86_64
    elf_class: ElfClass = ElfClass.ELF64
    data: ElfData = ElfData.LSB
    payload_size: int = 300_000
    static: bool = False
    #: Build identity (site/stack) folded into the image bytes, the way
    #: embedded build paths and timestamps make real builds distinct.
    build_tag: str = ""


@dataclasses.dataclass(frozen=True)
class LinkedObject:
    """The product of a link: a real ELF image plus its provenance.

    ``image`` is what lands on disk and is all FEAM ever sees; the
    provenance fields are the ground truth the execution simulator (and
    nothing else) may consult.
    """

    image: bytes
    name: str
    language: Language
    compiler: Compiler
    libc_version: tuple[int, ...]
    required_glibc: tuple[int, ...]
    needed: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.image)


def _app_symbols(inp: "LinkInput",
                 version_requirements: dict,
                 needed: list) -> tuple:
    """The application's dynamic symbol table.

    ``main`` is exported; the MPI API, the compiler runtime's I/O entry
    points, and a couple of versioned libc symbols are imported -- what a
    real ``nm -D`` of these binaries shows.  MPI symbol *names* are
    identical across implementations (MPI standardises the API, not the
    ABI), which is why Table I identifies implementations by library
    names instead.
    """
    from repro.elf.structs import DynamicSymbol
    from repro.toolchain.compilers import CompilerFamily

    symbols = [DynamicSymbol("main", defined=True)]
    if inp.mpi_deps:
        if inp.language is Language.FORTRAN:
            symbols += [DynamicSymbol(n, False) for n in
                        ("mpi_init_", "mpi_comm_rank_", "mpi_comm_size_",
                         "mpi_finalize_")]
        else:
            symbols += [DynamicSymbol(n, False) for n in
                        ("MPI_Init", "MPI_Comm_rank", "MPI_Comm_size",
                         "MPI_Finalize")]
    family = inp.compiler.family
    if inp.language is Language.FORTRAN:
        runtime_imports = {
            CompilerFamily.GNU: ("_gfortran_st_write",)
            if inp.compiler.version_tuple >= (4, 0) else ("s_wsfe",),
            CompilerFamily.INTEL: ("for_write_seq_lis",),
            CompilerFamily.PGI: ("pgf90_init",),
        }[family]
        symbols += [DynamicSymbol(n, False) for n in runtime_imports]
    if inp.language is Language.CXX:
        symbols.append(DynamicSymbol("_ZNSt8ios_base4InitC1Ev", False))
    glibc_versions = version_requirements.get("libc.so.6", ())
    if glibc_versions:
        symbols.append(DynamicSymbol("printf", False, glibc_versions[0]))
        symbols.append(DynamicSymbol("memcpy", False, glibc_versions[-1]))
    return tuple(symbols)


def link_program(inp: LinkInput) -> LinkedObject:
    """Run the simulated link step and return the linked object."""
    if not inp.compiler.supports(inp.language):
        raise ValueError(
            f"{inp.compiler} cannot compile {inp.language.value}")
    if inp.static:
        spec = BinarySpec(
            machine=inp.machine, elf_class=inp.elf_class, data=inp.data,
            etype=ElfType.EXEC, statically_linked=True,
            comment=(inp.compiler.comment_banner(),),
            payload_size=inp.payload_size,
            payload_seed=f"{inp.name}|{inp.build_tag}",
        )
        return LinkedObject(
            image=write_elf(spec), name=inp.name, language=inp.language,
            compiler=inp.compiler, libc_version=inp.libc.version,
            required_glibc=(), needed=(),
        )

    required = inp.libc.highest_at_most(inp.glibc_ceiling)
    deps: list[RuntimeDep] = []
    deps.extend(inp.mpi_deps)
    deps.extend(inp.extra_deps)
    deps.extend(inp.compiler.runtime_deps(inp.language))
    deps.append(RuntimeDep("libpthread.so.0", (glibc_symbol((2, 2, 5)),)))

    needed: list[str] = []
    version_requirements: dict[str, tuple[str, ...]] = {}
    for dep in deps:
        if dep.soname not in needed:
            needed.append(dep.soname)
        if dep.versions:
            existing = version_requirements.get(dep.soname, ())
            merged = tuple(dict.fromkeys(existing + tuple(dep.versions)))
            version_requirements[dep.soname] = merged
    # libm symbol references carry GLIBC versions too (base level).
    if "libm.so.6" in needed and "libm.so.6" not in version_requirements:
        version_requirements["libm.so.6"] = (glibc_symbol((2, 2, 5)),)
    needed.append("libc.so.6")
    version_requirements["libc.so.6"] = (
        glibc_symbol((2, 2, 5)), glibc_symbol(required))

    symbols = _app_symbols(inp, version_requirements, needed)
    spec = BinarySpec(
        machine=inp.machine, elf_class=inp.elf_class, data=inp.data,
        etype=ElfType.EXEC,
        needed=tuple(needed),
        version_requirements=version_requirements,
        comment=(inp.compiler.comment_banner(),),
        payload_size=inp.payload_size,
        payload_seed=f"{inp.name}|{inp.build_tag}",
        symbols=symbols,
    )
    return LinkedObject(
        image=write_elf(spec), name=inp.name, language=inp.language,
        compiler=inp.compiler, libc_version=inp.libc.version,
        required_glibc=required, needed=tuple(needed),
    )
