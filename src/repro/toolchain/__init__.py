"""Compiler / linker / C-library simulation.

The paper's test binaries were produced by real toolchains (GNU, Intel and
PGI compilers against various glibc releases, through MPI compiler
wrappers).  This package reproduces the *link-level outcome* of those
toolchains: given a language, a compiler, a C library and an MPI stack,
:mod:`repro.toolchain.linker` emits a genuine ELF image whose ``DT_NEEDED``
list, GNU symbol-version references and ``.comment`` banner match what the
real toolchain would have produced.

* :mod:`repro.toolchain.libc` -- glibc releases: symbol-version history,
  member libraries, installable ELF products.
* :mod:`repro.toolchain.compilers` -- GNU/Intel/PGI compiler models and
  their runtime libraries.
* :mod:`repro.toolchain.linker` -- the link step.
"""

from repro.toolchain.libc import GLIBC_HISTORY, GlibcRelease, glibc
from repro.toolchain.compilers import (
    Compiler,
    CompilerFamily,
    Language,
    gnu,
    intel,
    pgi,
)
from repro.toolchain.linker import LinkInput, LinkedObject, link_program

__all__ = [
    "Compiler",
    "CompilerFamily",
    "GLIBC_HISTORY",
    "GlibcRelease",
    "Language",
    "LinkInput",
    "LinkedObject",
    "glibc",
    "gnu",
    "intel",
    "link_program",
    "pgi",
]
