"""GNU C library (glibc) release models.

A :class:`GlibcRelease` knows its symbol-version history (every ``GLIBC_x.y``
version a release defines), its member libraries (libc, libm, libpthread,
...), and how to install itself into a virtual filesystem as genuine ELF
shared objects whose verdef sections carry exactly those versions.

This is what makes the paper's C-library determinant real in the
simulation: a binary that references ``GLIBC_2.7`` fails to load on a site
whose installed ``libc.so.6`` ELF only defines versions up to
``GLIBC_2.5`` -- the loader discovers this from the bytes on disk, not from
simulation metadata.
"""

from __future__ import annotations

import dataclasses
import functools
import posixpath
from typing import Optional

from repro.elf.constants import ElfClass, ElfData, ElfMachine, ElfType
from repro.elf.writer import BinarySpec, write_elf
from repro.sysmodel.fs import VirtualFilesystem

#: Every GLIBC_* symbol version in release order (subset sufficient for the
#: releases of the paper's Table II, which span 2.3.4 .. 2.12).
GLIBC_HISTORY: tuple[tuple[int, ...], ...] = (
    (2, 0), (2, 1), (2, 1, 1), (2, 1, 2), (2, 1, 3),
    (2, 2), (2, 2, 1), (2, 2, 2), (2, 2, 3), (2, 2, 4), (2, 2, 5), (2, 2, 6),
    (2, 3), (2, 3, 2), (2, 3, 3), (2, 3, 4),
    (2, 4), (2, 5), (2, 6), (2, 7), (2, 8), (2, 9),
    (2, 10), (2, 11), (2, 11, 1), (2, 12), (2, 13), (2, 14), (2, 15),
    (2, 16), (2, 17),
)


def version_str(version: tuple[int, ...]) -> str:
    """``(2, 3, 4)`` -> ``"2.3.4"``."""
    return ".".join(str(v) for v in version)


def glibc_symbol(version: tuple[int, ...]) -> str:
    """``(2, 3, 4)`` -> ``"GLIBC_2.3.4"``."""
    return f"GLIBC_{version_str(version)}"


@dataclasses.dataclass(frozen=True)
class GlibcMember:
    """One shared object shipped by glibc."""

    soname: str
    filename: str  # the real file the soname symlink points at
    size: int  # approximate on-disk size in bytes
    #: Well-known exports (each versioned with the base symbol version).
    exports: tuple[str, ...] = ()


def _members(version: tuple[int, ...]) -> tuple[GlibcMember, ...]:
    v = version_str(version)
    return (
        GlibcMember("libc.so.6", f"libc-{v}.so", 1_600_000,
                    exports=("printf", "malloc", "free", "memcpy", "open",
                             "read", "write", "strlen")),
        GlibcMember("libm.so.6", f"libm-{v}.so", 580_000,
                    exports=("sin", "cos", "sqrt", "pow", "exp")),
        GlibcMember("libpthread.so.0", f"libpthread-{v}.so", 140_000,
                    exports=("pthread_create", "pthread_join",
                             "pthread_mutex_lock")),
        GlibcMember("libdl.so.2", f"libdl-{v}.so", 20_000),
        GlibcMember("librt.so.1", f"librt-{v}.so", 45_000),
        GlibcMember("libutil.so.1", f"libutil-{v}.so", 14_000),
        GlibcMember("libnsl.so.1", f"libnsl-{v}.so", 110_000),
        GlibcMember("libcrypt.so.1", f"libcrypt-{v}.so", 40_000),
    )


@dataclasses.dataclass(frozen=True)
class GlibcRelease:
    """One glibc release, e.g. 2.5 as shipped on CentOS 5."""

    version: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.version not in GLIBC_HISTORY:
            raise ValueError(
                f"unknown glibc release {version_str(self.version)}")

    @property
    def version_string(self) -> str:
        return version_str(self.version)

    @property
    def defined_versions(self) -> tuple[str, ...]:
        """All GLIBC_* symbol versions this release defines."""
        return tuple(
            glibc_symbol(v) for v in GLIBC_HISTORY if v <= self.version)

    def defines(self, symbol_version: str) -> bool:
        """Does this release define *symbol_version* (e.g. GLIBC_2.7)?"""
        return symbol_version in self.defined_versions

    @property
    def banner(self) -> str:
        """The banner printed when the libc binary is executed."""
        return (f"GNU C Library stable release version "
                f"{self.version_string}, by Roland McGrath et al.")

    def highest_at_most(self, ceiling: tuple[int, ...]) -> tuple[int, ...]:
        """Newest symbol version <= both this release and *ceiling*.

        This models which GLIBC version a link against this release
        actually references: the newest version available for the symbols
        the program uses (*ceiling* is the program's feature level).
        """
        candidates = [v for v in GLIBC_HISTORY
                      if v <= self.version and v <= ceiling]
        if not candidates:
            raise ValueError(
                f"no glibc symbol version <= {ceiling} in release "
                f"{self.version_string}")
        return max(candidates)

    @property
    def members(self) -> tuple[GlibcMember, ...]:
        """The shared objects this release ships."""
        return _members(self.version)

    # -- ELF production -----------------------------------------------------

    def member_spec(self, member: GlibcMember,
                    machine: ElfMachine = ElfMachine.X86_64,
                    elf_class: ElfClass = ElfClass.ELF64,
                    data: ElfData = ElfData.LSB) -> BinarySpec:
        """ELF description for one member library of this release."""
        verdefs = (member.soname,) + self.defined_versions + ("GLIBC_PRIVATE",)
        needed: tuple[str, ...] = ()
        version_reqs: dict[str, tuple[str, ...]] = {}
        if member.soname != "libc.so.6":
            needed = ("libc.so.6",)
            version_reqs = {"libc.so.6": ("GLIBC_PRIVATE",
                                          self.defined_versions[-1])}
        comment = (self.banner,)
        from repro.elf.structs import DynamicSymbol
        base_version = glibc_symbol(GLIBC_HISTORY[0])
        symbols = tuple(
            DynamicSymbol(name=name, defined=True, version=base_version)
            for name in member.exports)
        return BinarySpec(
            machine=machine,
            elf_class=elf_class,
            data=data,
            etype=ElfType.DYN,
            soname=member.soname,
            needed=needed,
            version_requirements=version_reqs,
            version_definitions=verdefs,
            comment=comment,
            payload_size=member.size,
            symbols=symbols,
        )

    def install(self, fs: VirtualFilesystem, libdir: str,
                machine: ElfMachine = ElfMachine.X86_64,
                elf_class: ElfClass = ElfClass.ELF64,
                data: ElfData = ElfData.LSB) -> None:
        """Install every member into ``libdir`` of *fs*.

        Writes the real file (``libc-2.5.so``) with a soname symlink
        (``libc.so.6``), the way distro packages lay glibc out.  Contents
        are lazy: the multi-megabyte images are regenerated (deterministic)
        on read.
        """
        for member in self.members:
            spec = self.member_spec(member, machine, elf_class, data)
            image_size = len(write_elf(spec))
            real = posixpath.join(libdir, member.filename)
            fs.write_lazy(real, functools.partial(write_elf, spec),
                          image_size, mode=0o755)
            fs.symlink(posixpath.join(libdir, member.soname),
                       member.filename)


@functools.lru_cache(maxsize=None)
def _glibc_cached(version: tuple[int, ...]) -> GlibcRelease:
    return GlibcRelease(version=version)


def glibc(version: str | tuple[int, ...]) -> GlibcRelease:
    """Look up a release: ``glibc("2.3.4")`` or ``glibc((2, 3, 4))``.

    Equal versions share one instance regardless of spelling.
    """
    if isinstance(version, str):
        version = tuple(int(p) for p in version.split("."))
    return _glibc_cached(tuple(version))


def parse_banner(text: str) -> Optional[str]:
    """Extract the version string from a libc execution banner.

    Returns e.g. ``"2.5"`` or None when *text* is not a glibc banner.
    This is the parsing the EDC performs on the output of running the C
    library binary (paper Section V.B).
    """
    marker = "release version "
    idx = text.find(marker)
    if idx < 0:
        return None
    rest = text[idx + len(marker):]
    version = rest.split(",")[0].strip()
    if not version or not version[0].isdigit():
        return None
    return version
