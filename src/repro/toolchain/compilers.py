"""Compiler models: GNU, Intel and PGI.

A :class:`Compiler` knows, per language, which runtime shared libraries an
application linked by it depends on (and which symbol versions of those
libraries it references), which library products its installation ships,
and the banner strings it records in the ``.comment`` section of the
binaries it produces.

The modelled version-to-runtime mapping follows the real toolchains:

* GNU 3.4 links Fortran against ``libg2c.so.0`` (g77); 4.1 against
  ``libgfortran.so.1``; 4.3/4.4 against ``libgfortran.so.3``.
* GNU libstdc++ symbol versions grow with the compiler
  (``GLIBCXX_3.4`` .. ``GLIBCXX_3.4.13``), which is why C++ binaries built
  with a newer GCC fail on sites with an older system libstdc++.
* Intel's runtime sonames (``libifcore.so.5``, ``libintlc.so.5``) span the
  Intel 9..12 era; the maths libraries (``libimf.so``, ``libsvml.so``) are
  unversioned.  Vendor runtimes are built portable (low glibc ceiling).
* PGI runtimes are unversioned sonames under a private prefix that is only
  reachable through the environment -- the classic missing-library case
  when a PGI-built binary migrates to a site without PGI.
"""

from __future__ import annotations

import dataclasses
import enum
import functools

from repro.toolchain.products import LibraryProduct


class Language(enum.Enum):
    """Source language of an application."""

    C = "c"
    CXX = "c++"
    FORTRAN = "fortran"


class CompilerFamily(enum.Enum):
    """Compiler vendor family (paper: GNU, Intel, PGI)."""

    GNU = "gnu"
    INTEL = "intel"
    PGI = "pgi"

    @property
    def short_code(self) -> str:
        """Single-letter code used in the paper's Table II (g/i/p)."""
        return {"gnu": "g", "intel": "i", "pgi": "p"}[self.value]


@dataclasses.dataclass(frozen=True)
class RuntimeDep:
    """One runtime library an application linked by a compiler needs."""

    soname: str
    versions: tuple[str, ...] = ()


#: GLIBCXX symbol-version history (libstdc++.so.6), in release order.
GLIBCXX_HISTORY: tuple[str, ...] = tuple(
    ["GLIBCXX_3.4"] + [f"GLIBCXX_3.4.{i}" for i in range(1, 18)])


def _glibcxx_upto(level: str) -> tuple[str, ...]:
    idx = GLIBCXX_HISTORY.index(level)
    return GLIBCXX_HISTORY[:idx + 1]


@dataclasses.dataclass(frozen=True)
class Compiler:
    """One compiler release, e.g. GNU 4.1.2 or Intel 11.1."""

    family: CompilerFamily
    version: str
    languages: tuple[Language, ...] = (Language.C, Language.CXX,
                                       Language.FORTRAN)

    def __str__(self) -> str:
        return f"{self.family.value}-{self.version}"

    @property
    def version_tuple(self) -> tuple[int, ...]:
        return tuple(int(p) for p in self.version.split("."))

    def supports(self, language: Language) -> bool:
        return language in self.languages

    # -- GNU internals ------------------------------------------------------

    def _gnu_fortran_runtime(self) -> RuntimeDep:
        v = self.version_tuple
        if v < (4, 0):
            return RuntimeDep("libg2c.so.0")
        if v < (4, 2):
            return RuntimeDep("libgfortran.so.1", ("GFORTRAN_1.0",))
        return RuntimeDep("libgfortran.so.3", ("GFORTRAN_1.0",))

    def _gnu_cxx_level(self) -> str:
        v = self.version_tuple
        if v < (4, 0):
            return "GLIBCXX_3.4"
        if v < (4, 2):
            return "GLIBCXX_3.4.8"
        if v < (4, 4):
            return "GLIBCXX_3.4.10"
        if v < (4, 5):
            return "GLIBCXX_3.4.13"
        return "GLIBCXX_3.4.15"

    def _gnu_gcc_s_versions(self) -> tuple[str, ...]:
        v = self.version_tuple
        if v < (4, 2):
            return ("GCC_3.0", "GCC_3.3")
        return ("GCC_3.0", "GCC_3.3", "GCC_4.2.0")

    # -- application-side runtime dependencies --------------------------------

    def runtime_deps(self, language: Language) -> tuple[RuntimeDep, ...]:
        """Runtime libraries an application linked for *language* needs.

        Does not include the MPI libraries (the MPI wrapper adds those) nor
        the C library itself (the linker always adds it).
        """
        if not self.supports(language):
            raise ValueError(f"{self} does not support {language.value}")
        if self.family is CompilerFamily.GNU:
            deps = [RuntimeDep("libgcc_s.so.1", self._gnu_gcc_s_versions()[:1])]
            if language is Language.CXX:
                deps.insert(0, RuntimeDep(
                    "libstdc++.so.6",
                    (self._gnu_cxx_level(), "CXXABI_1.3")))
            if language is Language.FORTRAN:
                deps.insert(0, self._gnu_fortran_runtime())
            deps.append(RuntimeDep("libm.so.6"))
            return tuple(deps)
        if self.family is CompilerFamily.INTEL:
            # The libifcore.so.5 / libintlc.so.5 sonames span the Intel
            # 9..12 era, so same-soname libraries from different Intel
            # releases substitute for each other at load time.
            deps = [RuntimeDep("libimf.so"), RuntimeDep("libsvml.so"),
                    RuntimeDep("libintlc.so.5")]
            if language is Language.FORTRAN:
                deps = [RuntimeDep("libifcore.so.5"),
                        RuntimeDep("libifport.so.5")] + deps
            if language is Language.CXX:
                # Intel C++ uses the system libstdc++.
                deps.insert(0, RuntimeDep(
                    "libstdc++.so.6", ("GLIBCXX_3.4", "CXXABI_1.3")))
            deps.append(RuntimeDep("libm.so.6"))
            return tuple(deps)
        # PGI
        deps = [RuntimeDep("libpgc.so")]
        if language is Language.FORTRAN:
            deps = [RuntimeDep("libpgf90.so"), RuntimeDep("libpgf90rtl.so"),
                    RuntimeDep("libpgftnrtl.so")] + deps
        if language is Language.CXX:
            deps.insert(0, RuntimeDep("libstd.so"))
        deps.append(RuntimeDep("libm.so.6"))
        return tuple(deps)

    # -- installed products ----------------------------------------------------

    def products(self) -> tuple[LibraryProduct, ...]:
        """Shared-library products shipped by this compiler installation."""
        if self.family is CompilerFamily.GNU:
            prods = [LibraryProduct(
                "libgcc_s.so.1", filename="libgcc_s-" + self.version + ".so.1",
                verdefs=self._gnu_gcc_s_versions(),
                size=90_000, glibc_ceiling=(2, 2, 5),
                comment=(self.comment_banner(),))]
            fortran = self._gnu_fortran_runtime()
            prods.append(LibraryProduct(
                fortran.soname,
                filename=fortran.soname + ".0.0",
                verdefs=("GFORTRAN_1.0",) if fortran.versions else (),
                size=1_100_000, needed=("libm.so.6",),
                exports=(("_gfortran_st_write", "_gfortran_st_read",
                          "_gfortran_stop_numeric")
                         if fortran.versions else
                         ("s_wsfe", "do_fio", "e_wsfe")),
                # System-built GNU runtimes track the host glibc fairly
                # closely; this ceiling is what makes their copies
                # non-portable to older-libc sites.
                glibc_ceiling=(2, 7),
                comment=(self.comment_banner(),)))
            prods.append(LibraryProduct(
                "libstdc++.so.6",
                filename="libstdc++.so.6.0." + str(
                    len(_glibcxx_upto(self._gnu_cxx_level()))),
                verdefs=_glibcxx_upto(self._gnu_cxx_level()) + ("CXXABI_1.3",),
                size=980_000, needed=("libm.so.6", "libgcc_s.so.1"),
                exports=("_ZNSt8ios_base4InitC1Ev", "_ZSt4cout",
                         "_Znwm", "_ZdlPv"),
                glibc_ceiling=(2, 7),
                comment=(self.comment_banner(),)))
            return tuple(prods)
        if self.family is CompilerFamily.INTEL:
            banner = (self.comment_banner(),)
            # Vendor-shipped runtimes are built portable (low ceiling).
            return (
                LibraryProduct("libimf.so", size=2_300_000,
                               glibc_ceiling=(2, 3), comment=banner,
                               exports=("exp", "log", "pow", "sqrtf")),
                LibraryProduct("libsvml.so", size=6_500_000,
                               glibc_ceiling=(2, 3), comment=banner),
                LibraryProduct("libintlc.so.5", size=180_000,
                               glibc_ceiling=(2, 3), comment=banner),
                LibraryProduct("libifcore.so.5", size=1_700_000,
                               needed=("libimf.so", "libintlc.so.5"),
                               glibc_ceiling=(2, 3, 4), comment=banner,
                               exports=("for_write_seq_lis",
                                        "for_read_seq_lis", "for_stop_core")),
                LibraryProduct("libifport.so.5", size=340_000,
                               needed=("libintlc.so.5",),
                               glibc_ceiling=(2, 3, 4), comment=banner),
            )
        # PGI
        banner = (self.comment_banner(),)
        return (
            LibraryProduct("libpgc.so", size=450_000,
                           glibc_ceiling=(2, 3), comment=banner,
                           exports=("__pgio_init", "pgf90_stop")),
            LibraryProduct("libpgf90.so", size=1_900_000,
                           needed=("libpgc.so",),
                           glibc_ceiling=(2, 3), comment=banner,
                           exports=("pgf90_init", "pgf90_io_write")),
            LibraryProduct("libpgf90rtl.so", size=260_000,
                           needed=("libpgf90.so",),
                           glibc_ceiling=(2, 3), comment=banner),
            LibraryProduct("libpgftnrtl.so", size=310_000,
                           needed=("libpgc.so",),
                           glibc_ceiling=(2, 3), comment=banner),
            LibraryProduct("libstd.so", size=700_000,
                           needed=("libpgc.so",),
                           glibc_ceiling=(2, 3), comment=banner),
        )

    # -- identification ---------------------------------------------------------

    def comment_banner(self) -> str:
        """The .comment string this compiler stamps into binaries."""
        if self.family is CompilerFamily.GNU:
            return f"GCC: (GNU) {self.version}"
        if self.family is CompilerFamily.INTEL:
            return f"Intel(R) Compiler Version {self.version}"
        return f"PGI Compiler Version {self.version}"

    def driver_names(self, language: Language) -> tuple[str, ...]:
        """Command names of this compiler's drivers for *language*."""
        if self.family is CompilerFamily.GNU:
            return {Language.C: ("gcc", "cc"), Language.CXX: ("g++",),
                    Language.FORTRAN: (("g77",) if self.version_tuple < (4, 0)
                                       else ("gfortran",))}[language]
        if self.family is CompilerFamily.INTEL:
            return {Language.C: ("icc",), Language.CXX: ("icpc",),
                    Language.FORTRAN: ("ifort",)}[language]
        return {Language.C: ("pgcc",), Language.CXX: ("pgCC",),
                Language.FORTRAN: ("pgf90", "pgf77")}[language]


@functools.lru_cache(maxsize=None)
def gnu(version: str) -> Compiler:
    """The GNU compiler release *version* (C, C++ and Fortran)."""
    return Compiler(CompilerFamily.GNU, version)


@functools.lru_cache(maxsize=None)
def intel(version: str) -> Compiler:
    """The Intel compiler release *version*."""
    return Compiler(CompilerFamily.INTEL, version)


@functools.lru_cache(maxsize=None)
def pgi(version: str) -> Compiler:
    """The PGI compiler release *version*."""
    return Compiler(CompilerFamily.PGI, version)
