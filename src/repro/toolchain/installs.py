"""Compiler installations at a site.

A :class:`CompilerInstall` places a compiler's driver executables and
runtime libraries into a site's filesystem.  The location matters for the
paper's migration behaviour:

* the GNU system compiler installs its runtimes into ``/usr/lib64`` --
  always visible to the dynamic loader;
* Intel and PGI live under vendor prefixes (``/opt/intel-11.1/lib``) that
  are only reachable when the matching environment is loaded -- which is
  exactly why binaries built with vendor compilers fail with *missing
  shared libraries* at sites where that vendor stack is absent or a
  different one is selected.
"""

from __future__ import annotations

import dataclasses
import posixpath

from repro.elf.constants import ElfClass, ElfData, ElfMachine, ElfType
from repro.elf.writer import BinarySpec, write_elf
from repro.sysmodel.machine import Machine
from repro.toolchain.compilers import Compiler, CompilerFamily, Language
from repro.toolchain.libc import GlibcRelease, glibc_symbol


def _driver_image(machine_kind: ElfMachine, elf_class: ElfClass,
                  data: ElfData, libc: GlibcRelease, banner: str) -> bytes:
    """A small ELF executable standing in for a compiler driver binary."""
    spec = BinarySpec(
        machine=machine_kind, elf_class=elf_class, data=data,
        etype=ElfType.EXEC, needed=("libc.so.6",),
        version_requirements={
            "libc.so.6": (glibc_symbol(libc.highest_at_most((2, 3, 4))),)},
        comment=(banner,), payload_size=120_000)
    return write_elf(spec)


@dataclasses.dataclass(frozen=True)
class CompilerInstall:
    """One compiler installed at a site."""

    compiler: Compiler
    #: Installation prefix ("/usr" for the system GNU compiler).
    prefix: str

    @property
    def bindir(self) -> str:
        return posixpath.join(self.prefix, "bin")

    @property
    def libdir(self) -> str:
        if self.compiler.family is CompilerFamily.PGI:
            # PGI ships its shared runtimes in "libso".
            return posixpath.join(self.prefix, "libso")
        return posixpath.join(
            self.prefix, "lib64" if self.prefix == "/usr" else "lib")

    @property
    def on_default_loader_path(self) -> bool:
        """True when the runtimes land in a trusted loader directory."""
        return self.libdir in ("/lib", "/lib64", "/usr/lib", "/usr/lib64")

    def driver_path(self, language: Language) -> str:
        """Path of the primary driver for *language*."""
        return posixpath.join(
            self.bindir, self.compiler.driver_names(language)[0])

    def install(self, machine: Machine, libc: GlibcRelease,
                machine_kind: ElfMachine = ElfMachine.X86_64,
                elf_class: ElfClass = ElfClass.ELF64,
                data: ElfData = ElfData.LSB) -> None:
        """Write drivers and runtime libraries into the machine's fs."""
        fs = machine.fs
        for language in self.compiler.languages:
            for driver in self.compiler.driver_names(language):
                image = _driver_image(machine_kind, elf_class, data, libc,
                                      self.compiler.comment_banner())
                fs.write(posixpath.join(self.bindir, driver), image,
                         mode=0o755)
        for product in self.compiler.products():
            product.install(fs, self.libdir, libc,
                            machine_kind, elf_class, data)

    @staticmethod
    def system_gnu(compiler: Compiler) -> "CompilerInstall":
        """The distro-provided GNU compiler (prefix ``/usr``)."""
        if compiler.family is not CompilerFamily.GNU:
            raise ValueError("system compiler must be GNU")
        return CompilerInstall(compiler=compiler, prefix="/usr")

    @staticmethod
    def vendor(compiler: Compiler) -> "CompilerInstall":
        """A vendor compiler under ``/opt/<family>-<version>``."""
        return CompilerInstall(
            compiler=compiler,
            prefix=f"/opt/{compiler.family.value}-{compiler.version}")
