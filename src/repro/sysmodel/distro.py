"""Operating-system distribution models.

FEAM's Environment Discovery Component identifies the running distribution
from ``/proc/version`` and ``/etc/*release`` files (paper Section V.B).
A :class:`Distro` knows how to materialise those files into a virtual
filesystem so the discovery code has something real to parse.

The models cover the three distribution families of the paper's Table II:
CentOS, Red Hat Enterprise Linux, and SUSE Linux Enterprise Server.
"""

from __future__ import annotations

import dataclasses

from repro.sysmodel.fs import VirtualFilesystem


@dataclasses.dataclass(frozen=True)
class Distro:
    """A Linux distribution release."""

    family: str  # "centos" | "rhel" | "sles"
    version: str  # e.g. "4.9", "6.1", "11"
    kernel_version: str  # e.g. "2.6.18-194.el5"
    gcc_banner: str  # toolchain string embedded in /proc/version

    @property
    def pretty_name(self) -> str:
        """Human-readable release string as found in the release file."""
        if self.family == "centos":
            return f"CentOS release {self.version} (Final)"
        if self.family == "rhel":
            return (f"Red Hat Enterprise Linux Server release {self.version} "
                    f"(Santiago)" if self.version.startswith("6")
                    else f"Red Hat Enterprise Linux Server release "
                         f"{self.version} (Tikanga)")
        if self.family == "sles":
            return f"SUSE Linux Enterprise Server {self.version}"
        return f"{self.family} {self.version}"

    @property
    def release_file(self) -> str:
        """Path of the distribution's /etc release file."""
        if self.family in ("centos", "rhel"):
            return "/etc/redhat-release"
        if self.family == "sles":
            return "/etc/SuSE-release"
        return "/etc/os-release"

    def proc_version_text(self) -> str:
        """Contents of ``/proc/version``."""
        return (f"Linux version {self.kernel_version} "
                f"(mockbuild@builder) ({self.gcc_banner}) "
                f"#1 SMP\n")

    def release_file_text(self) -> str:
        """Contents of the /etc release file."""
        if self.family == "sles":
            major = self.version.split(".")[0]
            patch = self.version.split(".")[1] if "." in self.version else "0"
            return (f"SUSE Linux Enterprise Server {major} ({'x86_64'})\n"
                    f"VERSION = {major}\nPATCHLEVEL = {patch}\n")
        return self.pretty_name + "\n"

    def materialise(self, fs: VirtualFilesystem) -> None:
        """Write this distro's identification files into *fs*."""
        fs.write_text("/proc/version", self.proc_version_text())
        fs.write_text(self.release_file, self.release_file_text())
        # Generic fallback some discovery paths look at.
        fs.write_text("/etc/system-release", self.pretty_name + "\n")


#: Well-known distro releases used by the paper's five sites (Table II).
CENTOS_4_9 = Distro("centos", "4.9", "2.6.9-89.ELsmp",
                    "gcc version 3.4.6 20060404 (Red Hat 3.4.6-11)")
CENTOS_5_6 = Distro("centos", "5.6", "2.6.18-238.el5",
                    "gcc version 4.1.2 20080704 (Red Hat 4.1.2-50)")
RHEL_5_6 = Distro("rhel", "5.6", "2.6.18-238.el5",
                  "gcc version 4.1.2 20080704 (Red Hat 4.1.2-50)")
RHEL_6_1 = Distro("rhel", "6.1", "2.6.32-131.0.15.el6.x86_64",
                  "gcc version 4.4.5 20110214 (Red Hat 4.4.5-6)")
SLES_11 = Distro("sles", "11.1", "2.6.32.59-0.7-default",
                 "gcc version 4.3.4 [gcc-4_3-branch revision 152973] (SUSE Linux)")
