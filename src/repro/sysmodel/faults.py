"""Deterministic fault injection for the simulated substrate.

Real sites are unreliable: discovery commands hang, filesystems flake,
ELF images arrive truncated, library copies die mid-transfer.  The
simulated substrate is perfectly well-behaved, so resilience code paths
(`repro.core.resilience`) would otherwise go untested.  This module
injects site-scoped faults *deterministically*:

* A :class:`FaultPlan` holds :class:`FaultSpec` entries -- fault kind,
  site scope, probability, transient-vs-persistent flavour -- parseable
  from a one-line-per-fault text format or JSON, with named built-in
  profiles (``flaky``, ``partition``, ``corrupt``, ``none``).
* Every fire decision is a *hash-keyed* draw
  (:func:`repro.util.hashing.stable_uniform` over the plan seed, fault
  kind, site and opportunity key), never a sequence-based RNG, so thread
  interleaving and cache warm-up order cannot change which operations
  fault.  Two runs with the same plan seed inject the same faults.
* Transient faults fire a bounded number of times per opportunity key
  and then clear (a retry succeeds); persistent faults fire forever
  (retries exhaust and the cell degrades to UNKNOWN).
* Every injection is recorded as an ``obs`` event
  (``fault.injected``) and counted (``resilience.faults.injected``).

The module-level facade mirrors :mod:`repro.obs`: injection points call
:func:`check`/:func:`filter_image`, which are no-ops until a plan is
installed with :func:`install` or the :func:`injecting` context manager.
A plan can additionally be :meth:`armed <FaultPlan.arm>` onto sites'
virtual filesystems, perturbing *every* read the tools layer performs.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import threading
from contextlib import contextmanager
from typing import Iterable, Optional

from repro import obs
from repro.sysmodel.fs import FsError
from repro.util.hashing import stable_uniform

_ELF_MAGIC = b"\x7fELF"


class FaultKind(enum.Enum):
    """What breaks.  Values are the spelling profiles use."""

    #: The EDC's discovery commands hang past their deadline.
    DISCOVERY_TIMEOUT = "discovery-timeout"
    #: A filesystem read fails outright (I/O error).
    READ_ERROR = "read-error"
    #: An ELF image is cut short mid-read (torn page / partial transfer).
    ELF_TRUNCATION = "elf-truncation"
    #: An ELF image arrives with flipped bytes in its header.
    ELF_CORRUPTION = "elf-corruption"
    #: A library copy dies mid-transfer while the resolution model stages.
    COPY_FAILURE = "copy-failure"
    #: A persistent-cache append is cut short (power loss mid-write):
    #: the stored line is truncated and undecodable on the next read.
    CACHE_TORN_WRITE = "cache-torn-write"
    #: A persistent-cache record rots at rest (bit flip): its content
    #: checksum no longer matches and the reader must quarantine it.
    CACHE_CORRUPTION = "cache-corruption"


_KINDS_BY_VALUE = {kind.value: kind for kind in FaultKind}
#: Kinds that perturb returned bytes instead of raising.
_IMAGE_KINDS = (FaultKind.ELF_TRUNCATION, FaultKind.ELF_CORRUPTION)


class InjectedFault(RuntimeError):
    """An injected fault surfacing as an exception."""

    def __init__(self, kind: FaultKind, site: str, key: str,
                 transient: bool, occurrence: int) -> None:
        flavour = "transient" if transient else "persistent"
        super().__init__(
            f"injected {kind.value} at {site} ({key}) "
            f"[{flavour}, occurrence {occurrence}]")
        self.kind = kind
        self.site = site
        self.key = key
        self.transient = transient
        self.occurrence = occurrence


class InjectedReadError(InjectedFault, FsError):
    """An injected read/copy failure; also an :class:`FsError` so code
    with realistic OSError handling sees what a real site would raise."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault family: kind, site scope, probability, flavour."""

    kind: FaultKind
    #: Site hostnames the fault applies to; ``"*"`` matches every site.
    sites: tuple[str, ...] = ("*",)
    #: Probability in (0, 1] that a given opportunity key is fault-armed.
    rate: float = 1.0
    #: Transient faults clear after :attr:`fires` occurrences per key.
    transient: bool = False
    fires: int = 1

    def matches(self, site: str) -> bool:
        return "*" in self.sites or site in self.sites

    def render(self) -> str:
        parts = [self.kind.value, "@", ",".join(self.sites),
                 f"rate={self.rate:g}",
                 "transient" if self.transient else "persistent"]
        if self.transient:
            parts.append(f"fires={self.fires}")
        return " ".join(parts)


#: Built-in profiles (text format, one fault per line).
PROFILES: dict[str, str] = {
    "none": "",
    # Mostly-transient chaos: retries absorb some of it, persistent
    # read errors degrade the rest to UNKNOWN cells.
    "flaky": "\n".join([
        "discovery-timeout @ * rate=0.5 transient fires=2",
        "copy-failure      @ * rate=0.3 transient fires=2",
        "elf-truncation    @ * rate=0.1 persistent",
        "read-error        @ * rate=0.15 persistent",
    ]),
    # One-sided outage: every discovery and read at the first paper
    # site fails forever -- drives breakers open and quarantine.
    "partition": "\n".join([
        "discovery-timeout @ ranger rate=1.0 persistent",
        "read-error        @ ranger rate=1.0 persistent",
    ]),
    # Data integrity chaos: images arrive torn or bit-flipped.
    "corrupt": "\n".join([
        "elf-truncation @ * rate=0.25 persistent",
        "elf-corruption @ * rate=0.25 persistent",
    ]),
    # Durability chaos against the persistent evaluation cache: appends
    # tear mid-line, records rot at rest.  The store must quarantine
    # and recompute -- cell outcomes may never change.
    "cache": "\n".join([
        "cache-torn-write  @ * rate=0.3 persistent",
        "cache-corruption  @ * rate=0.3 persistent",
    ]),
}


class FaultPlan:
    """A seeded, deterministic set of fault specs plus fire bookkeeping.

    Thread-safe; the rate draw for an opportunity is a pure function of
    ``(seed, kind, site, key)``, and per-key occurrence counts make
    transient faults clear after ``fires`` hits regardless of which
    thread asks.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0,
                 name: str = "custom") -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self.name = name
        self._lock = threading.Lock()
        #: (kind value, site, key) -> occurrences observed so far.
        self._occurrences: dict[tuple[str, str, str], int] = {}
        #: (kind value, site) -> injections actually fired.
        self._fired: dict[tuple[str, str], int] = {}

    # -- parsing -----------------------------------------------------------------

    @staticmethod
    def parse(text: str, seed: int = 0, name: str = "custom") -> "FaultPlan":
        """Parse a profile from the text format or JSON.

        Text format, one fault per line (``#`` comments)::

            discovery-timeout @ ranger,fir rate=0.5 transient fires=2
            read-error @ * rate=0.15 persistent

        JSON::

            {"name": "...", "faults": [{"kind": "read-error",
             "sites": ["*"], "rate": 0.15, "transient": false}]}
        """
        stripped = text.strip()
        if stripped.startswith("{"):
            return FaultPlan._parse_json(stripped, seed, name)
        specs = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            specs.append(FaultPlan._parse_line(line, lineno))
        return FaultPlan(specs, seed=seed, name=name)

    @staticmethod
    def _parse_line(line: str, lineno: int) -> FaultSpec:
        tokens = line.split()
        kind = _KINDS_BY_VALUE.get(tokens[0])
        if kind is None:
            raise ValueError(
                f"fault profile line {lineno}: unknown fault kind "
                f"{tokens[0]!r} (known: {sorted(_KINDS_BY_VALUE)})")
        sites: tuple[str, ...] = ("*",)
        kwargs: dict = {}
        index = 1
        while index < len(tokens):
            token = tokens[index]
            if token == "@":
                index += 1
                if index >= len(tokens):
                    raise ValueError(
                        f"fault profile line {lineno}: '@' needs sites")
                sites = tuple(s for s in tokens[index].split(",") if s)
            elif token == "transient":
                kwargs["transient"] = True
            elif token == "persistent":
                kwargs["transient"] = False
            elif token.startswith("rate="):
                kwargs["rate"] = float(token[len("rate="):])
            elif token.startswith("fires="):
                kwargs["fires"] = int(token[len("fires="):])
            else:
                raise ValueError(
                    f"fault profile line {lineno}: unknown token {token!r}")
            index += 1
        return FaultSpec(kind=kind, sites=sites, **kwargs)

    @staticmethod
    def _parse_json(text: str, seed: int, name: str) -> "FaultPlan":
        payload = json.loads(text)
        specs = []
        for entry in payload.get("faults", []):
            kind = _KINDS_BY_VALUE.get(entry.get("kind", ""))
            if kind is None:
                raise ValueError(
                    f"fault profile: unknown fault kind {entry.get('kind')!r}")
            specs.append(FaultSpec(
                kind=kind,
                sites=tuple(entry.get("sites", ("*",))),
                rate=float(entry.get("rate", 1.0)),
                transient=bool(entry.get("transient", False)),
                fires=int(entry.get("fires", 1))))
        return FaultPlan(specs, seed=seed,
                         name=str(payload.get("name", name)))

    @staticmethod
    def profile(name: str, seed: int = 0) -> "FaultPlan":
        """A built-in named profile (see :data:`PROFILES`)."""
        if name not in PROFILES:
            raise ValueError(f"unknown fault profile {name!r} "
                             f"(built-in: {sorted(PROFILES)})")
        return FaultPlan.parse(PROFILES[name], seed=seed, name=name)

    def render(self) -> str:
        return "\n".join(spec.render() for spec in self.specs) + "\n"

    # -- fire decisions ----------------------------------------------------------

    def _spec_for(self, kind: FaultKind, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.kind is kind and spec.matches(site):
                return spec
        return None

    def _fires(self, spec: FaultSpec, site: str, key: str) -> int:
        """0 when the opportunity passes clean; else the occurrence number.

        The rate draw depends only on (seed, kind, site, key): an
        opportunity is either fault-armed for the whole run or never.
        Armed transient opportunities fire for the first ``fires``
        attempts and then clear.
        """
        draw = stable_uniform(self.seed, spec.kind.value, site, key)
        if draw >= spec.rate:
            return 0
        with self._lock:
            counter_key = (spec.kind.value, site, key)
            occurrence = self._occurrences.get(counter_key, 0) + 1
            if spec.transient and occurrence > spec.fires:
                return 0
            self._occurrences[counter_key] = occurrence
            fired_key = (spec.kind.value, site)
            self._fired[fired_key] = self._fired.get(fired_key, 0) + 1
        return occurrence

    def _record(self, spec: FaultSpec, site: str, key: str,
                occurrence: int) -> None:
        obs.event("fault.injected", kind=spec.kind.value, site=site,
                  key=key, transient=spec.transient, occurrence=occurrence)
        obs.counter("resilience.faults.injected").inc()
        obs.counter(f"resilience.faults.{spec.kind.value}").inc()

    def check(self, site: str, kind: FaultKind, key: str = "") -> None:
        """Raise an :class:`InjectedFault` when this opportunity faults."""
        spec = self._spec_for(kind, site)
        if spec is None:
            return
        occurrence = self._fires(spec, site, key)
        if not occurrence:
            return
        self._record(spec, site, key, occurrence)
        exc_type = (InjectedReadError
                    if kind in (FaultKind.READ_ERROR, FaultKind.COPY_FAILURE)
                    else InjectedFault)
        raise exc_type(kind, site, key, spec.transient, occurrence)

    def fires(self, site: str, kind: FaultKind, key: str = "") -> int:
        """0 when the opportunity passes clean; else the occurrence number.

        The non-raising fire decision: injection points that perturb
        data instead of failing (the persistent cache's torn-write /
        at-rest-corruption kinds) ask whether to fire and apply their
        own perturbation.  A fired opportunity is recorded exactly like
        a raised one (``fault.injected`` event + counters).
        """
        spec = self._spec_for(kind, site)
        if spec is None:
            return 0
        occurrence = self._fires(spec, site, key)
        if occurrence:
            self._record(spec, site, key, occurrence)
        return occurrence

    def filter_image(self, site: str, key: str, data: bytes) -> bytes:
        """Perturb ELF bytes (truncation/corruption); non-ELF data and
        clean opportunities pass through untouched."""
        if not data.startswith(_ELF_MAGIC):
            return data
        for kind in _IMAGE_KINDS:
            spec = self._spec_for(kind, site)
            if spec is None:
                continue
            occurrence = self._fires(spec, site, key)
            if not occurrence:
                continue
            self._record(spec, site, key, occurrence)
            if kind is FaultKind.ELF_TRUNCATION:
                # Cut inside the ELF header: unambiguously torn.
                return data[:12]
            # Flip bytes across the header: magic survives the first 4
            # bytes being kept so the parser sees a *corrupt* ELF, not a
            # non-ELF file.
            header = bytes(b ^ 0x5A for b in data[4:16])
            return data[:4] + header + data[16:]
        return data

    # -- filesystem arming -------------------------------------------------------

    def hook_for(self, site_name: str):
        """A ``VirtualFilesystem.fault_hook`` bound to *site_name*."""
        def hook(path: str, data: bytes) -> bytes:
            self.check(site_name, FaultKind.READ_ERROR, key=path)
            return self.filter_image(site_name, path, data)
        return hook

    def arm(self, sites: Iterable) -> "FaultPlan":
        """Install read hooks on every site's virtual filesystem."""
        for site in sites:
            machine = getattr(site, "machine", site)
            machine.fs.fault_hook = self.hook_for(machine.hostname)
        return self

    @staticmethod
    def disarm(sites: Iterable) -> None:
        for site in sites:
            machine = getattr(site, "machine", site)
            machine.fs.fault_hook = None

    # -- reporting ---------------------------------------------------------------

    @property
    def injected(self) -> int:
        with self._lock:
            return sum(self._fired.values())

    def summary(self) -> dict:
        """Injection counts: total, per kind, and per (kind, site)."""
        with self._lock:
            fired = dict(self._fired)
        by_kind: dict[str, int] = {}
        for (kind, _site), count in fired.items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        return {
            "profile": self.name,
            "seed": self.seed,
            "injected": sum(fired.values()),
            "by_kind": dict(sorted(by_kind.items())),
            "by_site": {f"{kind}@{site}": count
                        for (kind, site), count in sorted(fired.items())},
        }


# -- module facade (mirrors repro.obs) ------------------------------------------

_active: Optional[FaultPlan] = None


def active() -> Optional[FaultPlan]:
    """The installed plan, or None (the common, zero-cost case)."""
    return _active


def install(plan: FaultPlan) -> FaultPlan:
    global _active
    _active = plan
    return plan


def uninstall() -> None:
    global _active
    _active = None


@contextmanager
def injecting(plan: FaultPlan):
    """Install *plan* for the duration of the block."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def check(site: str, kind: FaultKind, key: str = "") -> None:
    """Facade checkpoint: no-op unless a plan is installed."""
    plan = _active
    if plan is not None:
        plan.check(site, kind, key)


def filter_image(site: str, key: str, data: bytes) -> bytes:
    """Facade image filter: identity unless a plan is installed."""
    plan = _active
    if plan is None:
        return data
    return plan.filter_image(site, key, data)


def fires(site: str, kind: FaultKind, key: str = "") -> int:
    """Facade non-raising fire decision: 0 unless a plan is installed."""
    plan = _active
    if plan is None:
        return 0
    return plan.fires(site, kind, key)
