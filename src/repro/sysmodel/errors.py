"""Execution-failure taxonomy.

Section VI.C of the paper classifies actual execution failures into:
missing shared libraries (more than half of failures), C-library version
requirements, floating-point exceptions / ABI incompatibilities, and system
errors (failed MPI daemon spawning, communication time-outs).  This module
defines those categories so the evaluation harness can reproduce the
failure-cause breakdown.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional


class FailureKind(enum.Enum):
    """Why a simulated execution failed."""

    #: Binary compiled for an ISA/word-length the site cannot execute.
    EXEC_FORMAT = "exec-format-error"
    #: A DT_NEEDED shared library could not be located at runtime.
    MISSING_LIBRARY = "missing-shared-library"
    #: A referenced symbol version (e.g. ``GLIBC_2.12``) is not defined by
    #: the library found -- the paper's C-library-requirement failure class.
    LIBC_VERSION = "c-library-version"
    #: Incompatible application binary interface between the binary's build
    #: stack and the site's stack (link-level mismatch of same-soname libs).
    ABI_MISMATCH = "abi-incompatibility"
    #: Floating-point exception triggered by mismatched runtime libraries.
    FLOATING_POINT = "floating-point-exception"
    #: No MPI stack of a compatible implementation type at the site.
    NO_MPI_STACK = "no-matching-mpi-stack"
    #: The selected MPI stack is misconfigured (no program can launch).
    MPI_STACK_UNUSABLE = "mpi-stack-unusable"
    #: Transient infrastructure fault: daemon spawn failure, time-out.
    SYSTEM_ERROR = "system-error"

    @property
    def predictable(self) -> bool:
        """Whether FEAM's model can in principle predict this failure.

        System errors are explicitly unpredictable (Section VI.C: "Our model
        was unable to predict failures due to system errors").
        """
        return self is not FailureKind.SYSTEM_ERROR


class ExecutionOutcome(enum.Enum):
    """Result of a simulated execution attempt."""

    SUCCESS = "success"
    FAILURE = "failure"


@dataclasses.dataclass(frozen=True)
class ExecutionFailure:
    """A single failure with its cause and a loader/runtime style message."""

    kind: FailureKind
    detail: str

    def __str__(self) -> str:
        return f"{self.kind.value}: {self.detail}"


@dataclasses.dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one execution attempt of a binary at a site."""

    outcome: ExecutionOutcome
    failure: Optional[ExecutionFailure] = None
    stdout: str = ""
    #: Simulated wall-clock seconds consumed by the attempt.
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome is ExecutionOutcome.SUCCESS

    @staticmethod
    def success(stdout: str = "", elapsed_seconds: float = 0.0) -> "ExecutionResult":
        return ExecutionResult(ExecutionOutcome.SUCCESS, None, stdout,
                               elapsed_seconds)

    @staticmethod
    def fail(kind: FailureKind, detail: str,
             elapsed_seconds: float = 0.0) -> "ExecutionResult":
        return ExecutionResult(
            ExecutionOutcome.FAILURE, ExecutionFailure(kind, detail), "",
            elapsed_seconds)
