"""Shared-library naming and version conventions.

Section III.D of the paper bases shared-library compatibility on the Linux
naming convention ``lib<name>.so.<major_version>.<minor_version>...``:
libraries with equal *major* versions are guaranteed API-compatible, while
minor versions add backwards-compatible changes.

:func:`parse_library_name` decodes a filename (or soname) into a
:class:`LibraryName`; :func:`sonames_compatible` implements the paper's
compatibility rule.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

_LIB_RE = re.compile(
    r"^(?P<stem>lib[A-Za-z0-9_+.-]+?)\.so(?:\.(?P<version>[0-9][0-9.]*))?$")


@dataclasses.dataclass(frozen=True)
class LibraryName:
    """Decoded shared-library name.

    ``libmpich.so.1.2`` decodes to stem ``libmpich``, version ``(1, 2)``,
    base soname ``libmpich.so.1``; an unversioned ``libimf.so`` has an empty
    version tuple.
    """

    stem: str
    version: tuple[int, ...] = ()

    @property
    def major(self) -> Optional[int]:
        """Major version number, or None for unversioned libraries."""
        return self.version[0] if self.version else None

    @property
    def base_name(self) -> str:
        """Linker name without any version suffix, e.g. ``libmpich.so``."""
        return f"{self.stem}.so"

    @property
    def soname(self) -> str:
        """Conventional soname: linker name plus the major version."""
        if self.major is None:
            return self.base_name
        return f"{self.base_name}.{self.major}"

    @property
    def full_name(self) -> str:
        """Full filename including every version component."""
        if not self.version:
            return self.base_name
        return self.base_name + "." + ".".join(str(v) for v in self.version)

    def with_version(self, *version: int) -> "LibraryName":
        """A copy of this name with a different version tuple."""
        return LibraryName(stem=self.stem, version=tuple(version))


def parse_library_name(filename: str) -> Optional[LibraryName]:
    """Decode a library filename/soname; None when it is not a library name.

    Accepts a path or bare filename.
    """
    base = filename.rsplit("/", 1)[-1]
    m = _LIB_RE.match(base)
    if not m:
        return None
    version_str = m.group("version")
    version: tuple[int, ...] = ()
    if version_str:
        version = tuple(int(p) for p in version_str.split(".") if p)
    return LibraryName(stem=m.group("stem"), version=version)


def sonames_compatible(required: str, available: str) -> bool:
    """Paper rule: same library stem and equal major version are compatible.

    ``required`` is the soname a binary was linked against (its DT_NEEDED
    entry); ``available`` is the filename or soname of a candidate library.
    Unversioned names match only by stem.  Minor versions are ignored, per
    the convention that equal majors guarantee compatible APIs.
    """
    req = parse_library_name(required)
    avail = parse_library_name(available)
    if req is None or avail is None:
        return required == available
    if req.stem != avail.stem:
        return False
    return req.major == avail.major


def minor_at_least(required: str, available: str) -> bool:
    """True when *available* also satisfies the minor-version ordering.

    Stricter than :func:`sonames_compatible`: additionally requires the
    available minor version to be >= the required minor version.  Used by
    the resolution ablation study.
    """
    if not sonames_compatible(required, available):
        return False
    req = parse_library_name(required)
    avail = parse_library_name(available)
    assert req is not None and avail is not None
    return avail.version[1:] >= req.version[1:]
