"""Simulated Linux machine substrate.

The paper's evaluation runs on five real computing sites; this package
provides the simulated equivalent: a virtual filesystem
(:mod:`repro.sysmodel.fs`), shared-library naming rules
(:mod:`repro.sysmodel.library`), OS/distribution identification files
(:mod:`repro.sysmodel.distro`), process environments
(:mod:`repro.sysmodel.env`), a faithful dynamic-loader simulation
(:mod:`repro.sysmodel.loader`), the failure taxonomy of the paper's
Section VI.C (:mod:`repro.sysmodel.errors`), deterministic fault injection
(:mod:`repro.sysmodel.faults`), and the :class:`Machine`
aggregate that ties them together.
"""

from repro.sysmodel.errors import (
    ExecutionFailure,
    ExecutionOutcome,
    ExecutionResult,
    FailureKind,
)
from repro.sysmodel.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedReadError,
)
from repro.sysmodel.fs import FileNode, FsError, VirtualFilesystem
from repro.sysmodel.library import LibraryName, parse_library_name, sonames_compatible
from repro.sysmodel.distro import Distro
from repro.sysmodel.env import Environment
from repro.sysmodel.loader import DynamicLoader, ResolutionReport
from repro.sysmodel.machine import Machine

__all__ = [
    "Distro",
    "DynamicLoader",
    "Environment",
    "ExecutionFailure",
    "ExecutionOutcome",
    "ExecutionResult",
    "FailureKind",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FileNode",
    "FsError",
    "InjectedFault",
    "InjectedReadError",
    "LibraryName",
    "Machine",
    "ResolutionReport",
    "VirtualFilesystem",
    "parse_library_name",
    "sonames_compatible",
]
