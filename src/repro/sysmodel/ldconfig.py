"""``ldconfig`` and the ``ld.so.cache``.

Real systems pre-index the trusted directories: ``ldconfig`` scans
``/etc/ld.so.conf`` plus the default directories, records each shared
library's soname, architecture and path in ``/etc/ld.so.cache``, and the
runtime loader consults the cache instead of re-scanning.  ``ldconfig -p``
prints the index -- a discovery source real administrators (and tools
like FEAM) use constantly.

The emulation stores the cache as a documented text format (one entry per
line) at the real path ``/etc/ld.so.cache``; sites run
:func:`run_ldconfig` at build time, exactly like a distro's post-install
scripts.  The dynamic-loader simulation scans directories directly, which
is behaviourally identical while the cache is fresh -- the cache here
serves the *discovery* side (``ldconfig -p``).
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional, TYPE_CHECKING

from repro.elf.constants import ElfClass, ElfMachine
from repro.elf.reader import ElfError
from repro.sysmodel.fs import FsError, VirtualFilesystem
from repro.sysmodel.loader import DEFAULT_TRUSTED_DIRS, read_ld_so_conf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sysmodel.machine import Machine

CACHE_PATH = "/etc/ld.so.cache"
_CACHE_HEADER = "ld.so-cache-text/1"


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One indexed shared library."""

    soname: str
    arch: str  # e.g. "x86-64" / "i386"
    bits: int
    path: str

    def render(self) -> str:
        """``ldconfig -p`` style line."""
        return (f"\t{self.soname} (libc6,{self.arch}) => {self.path}")


def scan_trusted_directories(machine: "Machine") -> list[CacheEntry]:
    """Index every shared library in the loader's trusted directories."""
    fs = machine.fs
    directories = read_ld_so_conf(fs) + list(DEFAULT_TRUSTED_DIRS)
    entries: list[CacheEntry] = []
    seen: set[tuple[str, str]] = set()
    for directory in directories:
        if not fs.is_dir(directory):
            continue
        for name in fs.listdir(directory):
            if ".so" not in name:
                continue
            path = posixpath.join(directory, name)
            if not fs.is_file(path):
                continue
            try:
                elf = machine.read_elf(path)
            except (FsError, ElfError):
                continue
            soname = elf.dynamic.soname or name
            try:
                arch = ElfMachine(elf.header.machine).display_name
            except ValueError:  # pragma: no cover - defensive
                arch = "unknown"
            bits = 64 if elf.header.elf_class is ElfClass.ELF64 else 32
            key = (soname, arch)
            if key in seen:
                continue
            seen.add(key)
            entries.append(CacheEntry(soname=soname, arch=arch,
                                      bits=bits, path=path))
    return sorted(entries, key=lambda e: (e.soname, e.arch))


def run_ldconfig(machine: "Machine") -> int:
    """Rebuild ``/etc/ld.so.cache``; returns the number of entries."""
    entries = scan_trusted_directories(machine)
    lines = [_CACHE_HEADER]
    for entry in entries:
        lines.append(f"{entry.soname}|{entry.arch}|{entry.bits}|{entry.path}")
    machine.fs.write_text(CACHE_PATH, "\n".join(lines) + "\n")
    return len(entries)


def read_cache(fs: VirtualFilesystem) -> Optional[list[CacheEntry]]:
    """Parse the cache, or None when absent/unreadable."""
    if not fs.is_file(CACHE_PATH):
        return None
    text = fs.read_text(CACHE_PATH)
    lines = text.splitlines()
    if not lines or lines[0] != _CACHE_HEADER:
        return None
    entries = []
    for line in lines[1:]:
        parts = line.split("|")
        if len(parts) != 4:
            continue
        soname, arch, bits, path = parts
        try:
            entries.append(CacheEntry(soname=soname, arch=arch,
                                      bits=int(bits), path=path))
        except ValueError:
            continue
    return entries


def render_ldconfig_p(entries: list[CacheEntry]) -> str:
    """The ``ldconfig -p`` listing."""
    lines = [f"{len(entries)} libs found in cache `{CACHE_PATH}'"]
    lines += [entry.render() for entry in entries]
    return "\n".join(lines) + "\n"
