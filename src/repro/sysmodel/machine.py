"""The :class:`Machine` aggregate.

A machine is a virtual filesystem plus an OS identity (distro, kernel,
hardware architecture), a base process environment, and the set of ELF
(machine, class) pairs its CPUs can execute -- e.g. an x86-64 node executes
both ELF64/x86-64 and ELF32/i386 images, while a ppc64 node executes
neither.

The tools layer (:mod:`repro.tools`) and the loader operate on machines;
sites (:mod:`repro.sites`) extend machines with schedulers and module
systems.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.elf.constants import ElfClass, ElfMachine
from repro.elf.reader import ElfError, parse_elf
from repro.sysmodel.distro import Distro
from repro.sysmodel.env import Environment
from repro.sysmodel.errors import ExecutionResult, FailureKind
from repro.sysmodel.fs import VirtualFilesystem
from repro.sysmodel.loader import DynamicLoader, ResolutionReport


@dataclasses.dataclass(frozen=True)
class IsaSupport:
    """One executable (machine, word-length) combination."""

    machine: ElfMachine
    elf_class: ElfClass

    @property
    def bits(self) -> int:
        return self.elf_class.bits


#: Architectures and the ISA combinations they execute.
_ARCH_PROFILES: dict[str, tuple[IsaSupport, ...]] = {
    "x86_64": (
        IsaSupport(ElfMachine.X86_64, ElfClass.ELF64),
        IsaSupport(ElfMachine.X86, ElfClass.ELF32),
    ),
    "i686": (IsaSupport(ElfMachine.X86, ElfClass.ELF32),),
    "ppc64": (
        IsaSupport(ElfMachine.PPC64, ElfClass.ELF64),
        IsaSupport(ElfMachine.PPC, ElfClass.ELF32),
    ),
    "ia64": (IsaSupport(ElfMachine.IA_64, ElfClass.ELF64),),
    "sparc64": (
        IsaSupport(ElfMachine.SPARCV9, ElfClass.ELF64),
        IsaSupport(ElfMachine.SPARC, ElfClass.ELF32),
    ),
}


class Machine:
    """A simulated Linux machine."""

    def __init__(self, hostname: str, arch: str, distro: Distro,
                 fs: Optional[VirtualFilesystem] = None,
                 env: Optional[Environment] = None) -> None:
        if arch not in _ARCH_PROFILES:
            raise ValueError(f"unknown architecture {arch!r}; "
                             f"known: {sorted(_ARCH_PROFILES)}")
        self.hostname = hostname
        self.arch = arch
        self.distro = distro
        self.fs = fs if fs is not None else VirtualFilesystem()
        self.env = env if env is not None else Environment()
        self.loader = DynamicLoader(self)
        distro.materialise(self.fs)
        self.fs.makedirs("/tmp")
        self.fs.makedirs("/home")
        #: Parse cache: path -> (file size, detached ElfFile).  Files in the
        #: simulation are immutable once written (new content gets a new
        #: path), so (path, size) identifies an image.
        self._elf_cache: dict[str, tuple[int, "ElfFileType"]] = {}

    # -- ELF parse cache ----------------------------------------------------

    def read_elf(self, path: str):
        """Parse the ELF file at *path*, caching the (detached) result.

        Lazy library files regenerate their bytes on every read; caching
        the parse keeps loader resolution fast.  The returned
        :class:`~repro.elf.reader.ElfFile` has its raw image dropped --
        callers needing bytes must read the filesystem directly.
        """
        real = self.fs.realpath(path)
        size = self.fs.size(real)
        cached = self._elf_cache.get(real)
        if cached is not None and cached[0] == size:
            return cached[1]
        elf = parse_elf(self.fs.read(real)).detach()
        self._elf_cache[real] = (size, elf)
        return elf

    # -- cloning ----------------------------------------------------------------

    def clone(self, hostname: str) -> "Machine":
        """An independent machine with the same installed state.

        The filesystem tree is copied node-by-node (contents shared, see
        :meth:`VirtualFilesystem.clone`); the ELF parse cache is carried
        over since cache entries are keyed by (path, size) and every
        image in the simulation is immutable once written.
        """
        copy = Machine(hostname, self.arch, self.distro,
                       fs=self.fs.clone(), env=self.env.copy())
        copy._elf_cache = dict(self._elf_cache)
        return copy

    # -- identity ---------------------------------------------------------------

    @property
    def isa_support(self) -> tuple[IsaSupport, ...]:
        """The ELF (machine, class) combinations this machine executes."""
        return _ARCH_PROFILES[self.arch]

    def supports_isa(self, machine: ElfMachine, elf_class: ElfClass) -> bool:
        """Can this machine execute images of the given machine/class?"""
        return any(s.machine is machine and s.elf_class is elf_class
                   for s in self.isa_support)

    def uname_processor(self) -> str:
        """Output of ``uname -p``."""
        return self.arch

    def uname_machine(self) -> str:
        """Output of ``uname -m`` (same as -p on our platforms)."""
        return self.arch

    # -- execution --------------------------------------------------------------

    def check_loadable(self, binary: bytes,
                       env: Optional[Environment] = None,
                       ) -> tuple[Optional[ExecutionResult], Optional[ResolutionReport]]:
        """Run the pre-execution checks the kernel and loader perform.

        Returns ``(failure, report)``: *failure* is None when the image
        passes the ISA check and the loader resolves everything; otherwise
        an :class:`ExecutionResult` describing the first failure the real
        system would report.  *report* is the loader's resolution report
        (None when the image failed before loading).
        """
        effective_env = env if env is not None else self.env
        try:
            elf = parse_elf(binary)
        except ElfError as exc:
            return ExecutionResult.fail(
                FailureKind.EXEC_FORMAT, f"cannot execute binary file: {exc}"
            ), None
        if not self.supports_isa(elf.header.machine, elf.header.elf_class):
            return ExecutionResult.fail(
                FailureKind.EXEC_FORMAT,
                f"cannot execute {elf.header.machine.display_name}/"
                f"{elf.header.bits}-bit binary on {self.arch}",
            ), None
        report = self.loader.resolve(binary, effective_env)
        kind = report.first_failure_kind()
        if kind is FailureKind.MISSING_LIBRARY:
            missing = ", ".join(report.missing_sonames)
            return ExecutionResult.fail(
                kind,
                f"error while loading shared libraries: {missing}: cannot "
                f"open shared object file: No such file or directory",
            ), report
        if kind is not None:
            first = report.version_errors[0]
            return ExecutionResult.fail(kind, first.message()), report
        return None, report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Machine({self.hostname!r}, arch={self.arch!r}, "
                f"distro={self.distro.family}-{self.distro.version})")
