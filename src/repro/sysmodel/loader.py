"""Dynamic loader (``ld.so``) simulation.

This models the glibc runtime loader faithfully enough to provide the
ground truth against which FEAM's predictions are evaluated:

* search order: ``DT_RPATH`` (ignored when ``DT_RUNPATH`` is present),
  ``LD_LIBRARY_PATH``, ``DT_RUNPATH``, then the trusted default directories
  plus any extra directories from ``/etc/ld.so.conf``;
* candidate filtering: a library whose ELF class or machine does not match
  the requesting object is skipped and the search continues, exactly as the
  real loader does on multi-arch systems (this is how 32-bit libraries in
  ``/usr/lib`` don't shadow 64-bit ones in ``/usr/lib64``);
* recursive resolution of each resolved library's own ``DT_NEEDED`` list;
* symbol-version checking: each verneed entry must be satisfied by a verdef
  of the resolved library -- unsatisfied ``GLIBC_x.y`` references produce
  the paper's C-library-version failures, other namespaces (``GLIBCXX``,
  ``OMPI``...) produce ABI failures.

The loader reads genuine ELF bytes out of the site's virtual filesystem;
nothing here consults the simulation's construction-time metadata.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional, TYPE_CHECKING

from repro.elf.reader import ElfError, ElfFile, parse_elf
from repro.sysmodel.errors import FailureKind
from repro.sysmodel.fs import FsError, VirtualFilesystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sysmodel.env import Environment
    from repro.sysmodel.machine import Machine


@dataclasses.dataclass(frozen=True)
class ResolvedLibrary:
    """Where one DT_NEEDED entry resolved (or failed to)."""

    soname: str
    #: Absolute path of the library file, or None when not found.
    path: Optional[str]
    #: Which object requested this library (path or "<main>").
    requested_by: str
    #: Directories where a same-named file existed but had the wrong
    #: ELF class/machine (skipped, like the real loader).
    arch_skipped: tuple[str, ...] = ()

    @property
    def found(self) -> bool:
        return self.path is not None


@dataclasses.dataclass(frozen=True)
class VersionError:
    """An unsatisfied symbol-version reference."""

    version: str
    library: str  # soname the version was required from
    library_path: Optional[str]  # where that library resolved (if it did)
    required_by: str  # object that carries the verneed entry

    @property
    def failure_kind(self) -> FailureKind:
        """C-library failures vs other ABI-level version failures."""
        if self.version.startswith("GLIBC_"):
            return FailureKind.LIBC_VERSION
        return FailureKind.ABI_MISMATCH

    def message(self) -> str:
        """glibc-style diagnostic."""
        return (f"version `{self.version}' not found "
                f"(required by {self.required_by})")


@dataclasses.dataclass
class ResolutionReport:
    """Complete result of resolving a binary's dynamic dependencies."""

    entries: list[ResolvedLibrary] = dataclasses.field(default_factory=list)
    version_errors: list[VersionError] = dataclasses.field(default_factory=list)
    #: Parsed objects by resolved path (main binary under "<main>").
    loaded: dict[str, ElfFile] = dataclasses.field(default_factory=dict)
    #: The effective search directories, in order (for diagnostics).
    search_order: list[str] = dataclasses.field(default_factory=list)

    @property
    def missing(self) -> list[ResolvedLibrary]:
        """Entries that failed to resolve."""
        return [e for e in self.entries if not e.found]

    @property
    def missing_sonames(self) -> list[str]:
        """Unique sonames that could not be located, in request order."""
        seen: dict[str, None] = {}
        for e in self.missing:
            seen.setdefault(e.soname)
        return list(seen)

    @property
    def ok(self) -> bool:
        """True when everything resolved with all versions satisfied."""
        return not self.missing and not self.version_errors

    def first_failure_kind(self) -> Optional[FailureKind]:
        """The failure class the runtime would report first.

        The real loader reports missing libraries before version errors.
        """
        if self.missing:
            return FailureKind.MISSING_LIBRARY
        if self.version_errors:
            return self.version_errors[0].failure_kind
        return None


def undefined_symbols(report: "ResolutionReport",
                      origin: str = "<main>") -> list:
    """Imported symbols of the root object no loaded object defines.

    A symbol-level diagnostic on top of soname/version resolution (what
    ``ldd -r`` adds over plain ``ldd``): a versioned import is satisfied
    by an export of the same name and version; an unversioned import by
    any export of the name.  Returns the unsatisfied
    :class:`~repro.elf.structs.DynamicSymbol` imports.

    Purely diagnostic -- the simulation's execution outcomes model ABI
    divergence at the stack-pair level instead (see
    :mod:`repro.mpi.runtime`), because real-world ABI breaks usually hide
    in type layouts rather than in missing symbol names.
    """
    root = report.loaded.get(origin)
    if root is None:
        return []
    exported_names: set[str] = set()
    exported_versioned: set[tuple[str, str]] = set()
    for path, elf in report.loaded.items():
        if path == origin:
            continue
        for symbol in elf.exported_symbols:
            exported_names.add(symbol.name)
            if symbol.version is not None:
                exported_versioned.add((symbol.name, symbol.version))
    missing = []
    for symbol in root.imported_symbols:
        if symbol.version is not None:
            if (symbol.name, symbol.version) in exported_versioned:
                continue
            # A same-named unversioned export also satisfies (old-style
            # libraries without versioning).
            if symbol.name in exported_names:
                continue
            missing.append(symbol)
        elif symbol.name not in exported_names:
            missing.append(symbol)
    return missing


#: Trusted directories searched last, in glibc's order (64-bit dirs first
#: on 64-bit systems; the loader filters by ELF class anyway).
DEFAULT_TRUSTED_DIRS = ("/lib64", "/usr/lib64", "/lib", "/usr/lib")

LD_SO_CONF = "/etc/ld.so.conf"


def read_ld_so_conf(fs: VirtualFilesystem) -> list[str]:
    """Extra trusted directories configured in ``/etc/ld.so.conf``.

    Supports plain directory lines and ``include`` of ``/etc/ld.so.conf.d``
    fragments (one level, as on real systems).
    """
    dirs: list[str] = []

    def parse(path: str) -> None:
        if not fs.is_file(path):
            return
        for line in fs.read_text(path).splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("include "):
                pattern = line[len("include "):].strip()
                directory = posixpath.dirname(pattern)
                if fs.is_dir(directory):
                    for name in fs.listdir(directory):
                        if name.endswith(".conf"):
                            parse(posixpath.join(directory, name))
                continue
            dirs.append(line)

    parse(LD_SO_CONF)
    return dirs


class DynamicLoader:
    """Resolve dynamic dependencies of a binary against a machine's fs."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine

    # -- search ---------------------------------------------------------------

    def search_directories(self, root: ElfFile,
                           env: "Environment") -> list[str]:
        """The effective search order for *root* under *env*."""
        dirs: list[str] = []
        rpath = root.dynamic.rpath
        runpath = root.dynamic.runpath
        if rpath and not runpath:
            dirs.extend(p for p in rpath.split(":") if p)
        dirs.extend(env.ld_library_path)
        if runpath:
            dirs.extend(p for p in runpath.split(":") if p)
        dirs.extend(read_ld_so_conf(self._machine.fs))
        dirs.extend(DEFAULT_TRUSTED_DIRS)
        # Deduplicate, preserving order.
        seen: dict[str, None] = {}
        for d in dirs:
            seen.setdefault(posixpath.normpath(d))
        return list(seen)

    def _candidate(self, directory: str, soname: str,
                   want_class: int, want_machine: int,
                   ) -> tuple[Optional[str], bool]:
        """Try ``directory/soname``.

        Returns ``(path, arch_skip)``: *path* when a matching library was
        found; ``arch_skip`` True when a file existed but had the wrong
        architecture (search continues).
        """
        fs = self._machine.fs
        path = posixpath.join(directory, soname)
        if not fs.is_file(path):
            return None, False
        real = fs.realpath(path)
        try:
            elf = self._machine.read_elf(real)
        except (FsError, ElfError):
            return None, False
        if (int(elf.header.elf_class) != want_class
                or int(elf.header.machine) != want_machine):
            return None, True
        return real, False

    # -- resolution -------------------------------------------------------------

    def resolve(self, binary: bytes, env: "Environment",
                origin: str = "<main>") -> ResolutionReport:
        """Resolve the full dependency closure of *binary* under *env*."""
        report = ResolutionReport()
        root = parse_elf(binary)
        report.loaded[origin] = root
        if not root.is_dynamic:
            return report
        want_class = int(root.header.elf_class)
        want_machine = int(root.header.machine)
        search = self.search_directories(root, env)
        report.search_order = search

        resolved_by_soname: dict[str, Optional[str]] = {}
        queue: list[tuple[str, str]] = [
            (soname, origin) for soname in root.dynamic.needed]
        while queue:
            soname, requester = queue.pop(0)
            if soname in resolved_by_soname:
                continue
            arch_skips: list[str] = []
            found: Optional[str] = None
            for directory in search:
                path, skipped = self._candidate(
                    directory, soname, want_class, want_machine)
                if skipped:
                    arch_skips.append(directory)
                if path is not None:
                    found = path
                    break
            resolved_by_soname[soname] = found
            report.entries.append(ResolvedLibrary(
                soname=soname, path=found, requested_by=requester,
                arch_skipped=tuple(arch_skips)))
            if found is not None and found not in report.loaded:
                lib = self._machine.read_elf(found)
                report.loaded[found] = lib
                for dep in lib.dynamic.needed:
                    queue.append((dep, found))

        # Version checking across every loaded object.
        defs_by_soname: dict[str, set[str]] = {}
        for path, elf in report.loaded.items():
            if path == origin:
                continue
            soname = elf.dynamic.soname or posixpath.basename(path)
            names = {d.name.name for d in elf.version_definitions}
            defs_by_soname.setdefault(soname, set()).update(names)
            # The filename on disk may differ from the soname; index both.
            defs_by_soname.setdefault(
                posixpath.basename(path), set()).update(names)

        for path, elf in report.loaded.items():
            for req in elf.version_requirements:
                target = resolved_by_soname.get(req.filename)
                if target is None and req.filename not in defs_by_soname:
                    # verneed names a file that was never loaded; the real
                    # loader only checks versions of loaded objects.
                    continue
                provided = defs_by_soname.get(req.filename, set())
                for version in req.versions:
                    if version.name not in provided:
                        report.version_errors.append(VersionError(
                            version=version.name,
                            library=req.filename,
                            library_path=target,
                            required_by=path,
                        ))
        return report
