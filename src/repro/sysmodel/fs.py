"""Virtual filesystem.

A small in-memory POSIX-flavoured filesystem: directories, regular files and
symbolic links, absolute paths, mode bits, and lazy file contents.

Lazy contents matter because simulated sites hold hundreds of multi-megabyte
ELF libraries; a :class:`FileNode` may carry a ``provider`` callable instead
of inline bytes, in which case the bytes are regenerated on every
:meth:`VirtualFilesystem.read` (deterministically -- see
:func:`repro.elf.writer._payload_bytes`) and only the size is kept resident.

Path semantics: paths are absolute, ``/``-separated, normalised with
``.``/``..`` components resolved lexically *after* symlink traversal of the
parent chain, mirroring how the real kernel resolves them closely enough for
our tools layer (``find``, ``ldd``, the loader) to behave realistically.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Callable, Iterator, Optional


class FsError(OSError):
    """Raised for filesystem errors (missing paths, type mismatches, loops)."""


_MAX_SYMLINK_DEPTH = 40  # Linux SYMLOOP_MAX is 40.


@dataclasses.dataclass
class FileNode:
    """A regular file: inline bytes or a (provider, size) pair."""

    content: Optional[bytes] = None
    provider: Optional[Callable[[], bytes]] = None
    size: int = 0
    mode: int = 0o644

    def __post_init__(self) -> None:
        if self.content is not None:
            self.size = len(self.content)
        elif self.provider is None:
            self.content = b""
            self.size = 0

    def read(self) -> bytes:
        if self.content is not None:
            return self.content
        assert self.provider is not None
        data = self.provider()
        if len(data) != self.size:
            raise FsError(
                f"lazy provider produced {len(data)} bytes, expected {self.size}")
        return data

    @property
    def executable(self) -> bool:
        return bool(self.mode & 0o111)


@dataclasses.dataclass
class SymlinkNode:
    """A symbolic link holding its (possibly relative) target path."""

    target: str


@dataclasses.dataclass
class DirNode:
    """A directory mapping entry names to child nodes."""

    entries: dict[str, object] = dataclasses.field(default_factory=dict)
    mode: int = 0o755


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise FsError(f"path must be absolute: {path!r}")
    return [p for p in path.split("/") if p not in ("", ".")]


class VirtualFilesystem:
    """An in-memory filesystem rooted at ``/``."""

    def __init__(self) -> None:
        self._root = DirNode()
        #: Optional read perturbation, installed by
        #: :meth:`repro.sysmodel.faults.FaultPlan.arm`: called as
        #: ``hook(path, data)`` after a successful read; may raise
        #: :class:`FsError` or return mutated bytes.  None (the default)
        #: costs one attribute check per read.
        self.fault_hook: Optional[Callable[[str, bytes], bytes]] = None

    # -- node resolution ------------------------------------------------------

    def _lookup(self, path: str, follow: bool = True,
                _depth: int = 0) -> object:
        """Resolve *path* to a node, traversing symlinks.

        With ``follow=False`` a trailing symlink is returned as the
        :class:`SymlinkNode` itself (lstat semantics).
        """
        if _depth > _MAX_SYMLINK_DEPTH:
            raise FsError(f"too many levels of symbolic links: {path!r}")
        parts = _split(posixpath.normpath(path))
        node: object = self._root
        trail = "/"
        for i, part in enumerate(parts):
            if not isinstance(node, DirNode):
                raise FsError(f"not a directory: {trail!r}")
            if part == "..":
                # Lexical parent: re-resolve the prefix.
                parent = posixpath.dirname(trail.rstrip("/")) or "/"
                node = self._lookup(parent, follow=True, _depth=_depth + 1)
                trail = parent
                continue
            if part not in node.entries:
                raise FsError(f"no such file or directory: "
                              f"{posixpath.join(trail, part)!r}")
            child = node.entries[part]
            trail = posixpath.join(trail, part)
            is_last = i == len(parts) - 1
            if isinstance(child, SymlinkNode) and (follow or not is_last):
                target = child.target
                if not target.startswith("/"):
                    target = posixpath.join(posixpath.dirname(trail), target)
                child = self._lookup(target, follow=True, _depth=_depth + 1)
            node = child
        return node

    def _parent_dir(self, path: str, create: bool = False) -> tuple[DirNode, str]:
        parts = _split(posixpath.normpath(path))
        if not parts:
            raise FsError("cannot operate on the root directory")
        name = parts[-1]
        parent_path = "/" + "/".join(parts[:-1])
        if create:
            self.makedirs(parent_path)
        node = self._lookup(parent_path)
        if not isinstance(node, DirNode):
            raise FsError(f"not a directory: {parent_path!r}")
        return node, name

    # -- queries --------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True when *path* resolves (following symlinks)."""
        try:
            self._lookup(path)
            return True
        except FsError:
            return False

    def lexists(self, path: str) -> bool:
        """True when *path* exists, without following a trailing symlink."""
        try:
            self._lookup(path, follow=False)
            return True
        except FsError:
            return False

    def is_file(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), FileNode)
        except FsError:
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), DirNode)
        except FsError:
            return False

    def is_symlink(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path, follow=False), SymlinkNode)
        except FsError:
            return False

    def readlink(self, path: str) -> str:
        node = self._lookup(path, follow=False)
        if not isinstance(node, SymlinkNode):
            raise FsError(f"not a symlink: {path!r}")
        return node.target

    def size(self, path: str) -> int:
        """Size in bytes of the file at *path*."""
        node = self._lookup(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a regular file: {path!r}")
        return node.size

    def is_executable(self, path: str) -> bool:
        try:
            node = self._lookup(path)
        except FsError:
            return False
        return isinstance(node, FileNode) and node.executable

    def read(self, path: str) -> bytes:
        node = self._lookup(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a regular file: {path!r}")
        data = node.read()
        if self.fault_hook is not None:
            data = self.fault_hook(path, data)
        return data

    def read_text(self, path: str) -> str:
        return self.read(path).decode("utf-8", errors="replace")

    def listdir(self, path: str) -> list[str]:
        node = self._lookup(path)
        if not isinstance(node, DirNode):
            raise FsError(f"not a directory: {path!r}")
        return sorted(node.entries)

    def walk(self, top: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Depth-first traversal like :func:`os.walk` (symlinked dirs not
        descended into, mirroring ``os.walk`` defaults)."""
        try:
            node = self._lookup(top)
        except FsError:
            return
        if not isinstance(node, DirNode):
            return
        dirs, files = [], []
        for name in sorted(node.entries):
            child = node.entries[name]
            if isinstance(child, DirNode):
                dirs.append(name)
            else:
                files.append(name)
        yield top, dirs, files
        for name in dirs:
            yield from self.walk(posixpath.join(top, name))

    def find_files(self, top: str = "/",
                   name_filter: Optional[Callable[[str], bool]] = None,
                   ) -> Iterator[str]:
        """Yield file and symlink paths under *top* (find-like)."""
        for dirpath, _dirs, files in self.walk(top):
            for fname in files:
                if name_filter is None or name_filter(fname):
                    yield posixpath.join(dirpath, fname)

    def realpath(self, path: str) -> str:
        """Canonical path with symlinks in the final component resolved.

        Only the trailing symlink chain is rewritten (sufficient for the
        loader's needs); intermediate directories are assumed canonical.
        """
        seen = 0
        current = posixpath.normpath(path)
        while self.is_symlink(current):
            seen += 1
            if seen > _MAX_SYMLINK_DEPTH:
                raise FsError(f"too many levels of symbolic links: {path!r}")
            target = self.readlink(current)
            if not target.startswith("/"):
                target = posixpath.join(posixpath.dirname(current), target)
            current = posixpath.normpath(target)
        return current

    # -- mutation ---------------------------------------------------------------

    def makedirs(self, path: str) -> None:
        """Create directory *path* and any missing ancestors (mkdir -p)."""
        parts = _split(posixpath.normpath(path))
        node = self._root
        for part in parts:
            child = node.entries.get(part)
            if child is None:
                child = DirNode()
                node.entries[part] = child
            if isinstance(child, SymlinkNode):
                raise FsError(f"symlink in makedirs path: {path!r}")
            if not isinstance(child, DirNode):
                raise FsError(f"file exists: {path!r}")
            node = child

    def write(self, path: str, content: bytes, mode: int = 0o644) -> None:
        """Create or replace the file at *path* with inline *content*."""
        parent, name = self._parent_dir(path, create=True)
        parent.entries[name] = FileNode(content=content, mode=mode)

    def write_text(self, path: str, text: str, mode: int = 0o644) -> None:
        self.write(path, text.encode("utf-8"), mode=mode)

    def write_lazy(self, path: str, provider: Callable[[], bytes],
                   size: int, mode: int = 0o644) -> None:
        """Create a file whose bytes are produced on demand by *provider*."""
        parent, name = self._parent_dir(path, create=True)
        parent.entries[name] = FileNode(provider=provider, size=size, mode=mode)

    def symlink(self, link_path: str, target: str) -> None:
        """Create a symlink at *link_path* pointing at *target*."""
        parent, name = self._parent_dir(link_path, create=True)
        parent.entries[name] = SymlinkNode(target=target)

    def chmod(self, path: str, mode: int) -> None:
        node = self._lookup(path, follow=True)
        if isinstance(node, FileNode):
            node.mode = mode
        elif isinstance(node, DirNode):
            node.mode = mode
        else:
            raise FsError(f"cannot chmod: {path!r}")

    def remove(self, path: str) -> None:
        """Remove the file or symlink at *path*."""
        parent, name = self._parent_dir(path)
        node = parent.entries.get(name)
        if node is None:
            raise FsError(f"no such file or directory: {path!r}")
        if isinstance(node, DirNode):
            raise FsError(f"is a directory: {path!r}")
        del parent.entries[name]

    def copy_file(self, src: str, dst: str) -> None:
        """Copy a regular file (content/provider and mode) from src to dst."""
        node = self._lookup(src)
        if not isinstance(node, FileNode):
            raise FsError(f"not a regular file: {src!r}")
        parent, name = self._parent_dir(dst, create=True)
        parent.entries[name] = FileNode(
            content=node.content, provider=node.provider,
            size=node.size, mode=node.mode)

    def install_from(self, other: "VirtualFilesystem", src: str, dst: str) -> None:
        """Copy a regular file across filesystems (site-to-site migration)."""
        node = other._lookup(src)
        if not isinstance(node, FileNode):
            raise FsError(f"not a regular file: {src!r}")
        parent, name = self._parent_dir(dst, create=True)
        parent.entries[name] = FileNode(
            content=node.content, provider=node.provider,
            size=node.size, mode=node.mode)

    # -- cloning -----------------------------------------------------------------

    def clone(self) -> "VirtualFilesystem":
        """An independent copy of the whole tree.

        Every directory, file and symlink node is a fresh object, so
        mutations on either side never show through; file *contents*
        (immutable bytes or deterministic lazy providers) are shared,
        which is what makes cloning a fully-installed site filesystem
        cheap -- hundreds of multi-megabyte ELF images cost one node
        object each, not a copy of their bytes.  The fault hook is not
        carried over: a clone starts unperturbed.
        """
        copy = VirtualFilesystem()
        copy._root = _clone_node(self._root)
        return copy


def _clone_node(node: object) -> object:
    if isinstance(node, DirNode):
        return DirNode(entries={name: _clone_node(child)
                                for name, child in node.entries.items()},
                       mode=node.mode)
    if isinstance(node, FileNode):
        return FileNode(content=node.content, provider=node.provider,
                        size=node.size, mode=node.mode)
    assert isinstance(node, SymlinkNode)
    return SymlinkNode(target=node.target)
