"""Process environments.

A thin mapping wrapper with the PATH-style list manipulation that the
Environment Modules / SoftEnv emulations and FEAM's resolution model use
(``module load`` prepends to PATH and LD_LIBRARY_PATH; resolution appends
the staging directory of copied libraries).
"""

from __future__ import annotations

from typing import Iterator, Mapping, MutableMapping, Optional


class Environment(MutableMapping[str, str]):
    """A process environment (string keys and values)."""

    def __init__(self, initial: Optional[Mapping[str, str]] = None) -> None:
        self._vars: dict[str, str] = dict(initial or {})
        self._vars.setdefault("PATH", "/usr/bin:/bin")

    # MutableMapping interface.
    def __getitem__(self, key: str) -> str:
        return self._vars[key]

    def __setitem__(self, key: str, value: str) -> None:
        self._vars[key] = str(value)

    def __delitem__(self, key: str) -> None:
        del self._vars[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    # PATH-style helpers.
    def get_list(self, key: str) -> list[str]:
        """Split a colon-separated variable into entries (empty removed)."""
        raw = self._vars.get(key, "")
        return [p for p in raw.split(":") if p]

    def prepend_path(self, key: str, path: str) -> None:
        """Prepend *path* to a colon-separated variable, deduplicating."""
        entries = [p for p in self.get_list(key) if p != path]
        self._vars[key] = ":".join([path] + entries)

    def append_path(self, key: str, path: str) -> None:
        """Append *path* to a colon-separated variable, deduplicating."""
        entries = [p for p in self.get_list(key) if p != path]
        self._vars[key] = ":".join(entries + [path])

    def remove_path(self, key: str, path: str) -> None:
        """Remove *path* from a colon-separated variable if present."""
        entries = [p for p in self.get_list(key) if p != path]
        if entries:
            self._vars[key] = ":".join(entries)
        else:
            self._vars.pop(key, None)

    def copy(self) -> "Environment":
        """An independent copy of this environment."""
        return Environment(self._vars)

    @property
    def path(self) -> list[str]:
        """Entries of PATH."""
        return self.get_list("PATH")

    @property
    def ld_library_path(self) -> list[str]:
        """Entries of LD_LIBRARY_PATH."""
        return self.get_list("LD_LIBRARY_PATH")
