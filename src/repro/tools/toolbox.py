"""The toolbox: emulated Unix utilities over a simulated machine.

Every query parses real bytes from the machine's virtual filesystem; there
is no side channel to the simulation's construction-time metadata, so FEAM
can only know what the real tool would have printed.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional

from repro.elf.highlevel import BinaryInfo, describe_elf, describe_parsed
from repro.elf.reader import ElfError
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.sysmodel.library import parse_library_name
from repro.sysmodel.loader import ResolutionReport
from repro.sysmodel.machine import Machine
from repro.toolchain.libc import parse_banner


class ToolUnavailable(RuntimeError):
    """The requested utility is not installed at this site."""


#: Common library locations searched by FEAM's ``find`` fallback
#: (Section V.A: "common library locations as well as locations set in
#: the LD_LIBRARY_PATH environment variable").
COMMON_LIB_DIRS = (
    "/lib", "/lib64", "/usr/lib", "/usr/lib64",
    "/usr/local/lib", "/usr/local/lib64", "/opt",
)


@dataclasses.dataclass(frozen=True)
class ObjdumpInfo:
    """Parsed ``objdump -p`` output."""

    file_format: str  # e.g. "elf64-x86-64"
    machine: str
    bits: int
    is_dynamic: bool
    needed: tuple[str, ...]
    soname: Optional[str]
    rpath: Optional[str]
    runpath: Optional[str]
    #: (library file, version name) pairs from "Version References".
    version_references: tuple[tuple[str, str], ...]
    #: version names from "Version Definitions".
    version_definitions: tuple[str, ...]

    def render(self) -> str:
        """A realistic rendering of the tool output."""
        lines = [f"file format {self.file_format}",
                 f"architecture: {self.machine}", ""]
        if self.is_dynamic:
            lines.append("Dynamic Section:")
            for soname in self.needed:
                lines.append(f"  NEEDED               {soname}")
            if self.soname:
                lines.append(f"  SONAME               {self.soname}")
            if self.rpath:
                lines.append(f"  RPATH                {self.rpath}")
            if self.runpath:
                lines.append(f"  RUNPATH              {self.runpath}")
        if self.version_definitions:
            lines.append("")
            lines.append("Version definitions:")
            for i, name in enumerate(self.version_definitions, start=1):
                lines.append(f"{i} 0x00 {name}")
        if self.version_references:
            lines.append("")
            lines.append("Version References:")
            current = None
            for filename, version in self.version_references:
                if filename != current:
                    lines.append(f"  required from {filename}:")
                    current = filename
                lines.append(f"    0x00 00 02 {version}")
        return "\n".join(lines) + "\n"


@dataclasses.dataclass(frozen=True)
class LddEntry:
    """One line of ldd output."""

    soname: str
    path: Optional[str]  # None renders as "not found"

    def render(self) -> str:
        target = self.path if self.path else "not found"
        return f"\t{self.soname} => {target}"


@dataclasses.dataclass(frozen=True)
class LddResult:
    """Parsed ``ldd -v`` output."""

    recognised: bool  # False: "not a dynamic executable"
    entries: tuple[LddEntry, ...] = ()
    #: (requesting object, version, from-library, resolved-path-or-None)
    #: -- real ``ldd -v`` groups its "Version information:" section by the
    #: object carrying the reference, starting with the binary itself.
    version_info: tuple[tuple[str, str, str, Optional[str]], ...] = ()
    #: Unsatisfied version references reported by the loader (messages).
    version_errors: tuple[str, ...] = ()
    #: The same, structured: (library soname, version name) pairs.
    unsatisfied_versions: tuple[tuple[str, str], ...] = ()

    @property
    def missing(self) -> tuple[str, ...]:
        return tuple(e.soname for e in self.entries if e.path is None)

    def versions_required_by(self, requester: str,
                             ) -> tuple[tuple[str, str], ...]:
        """(library, version) references carried by one object."""
        return tuple((lib, version)
                     for req, version, lib, _path in self.version_info
                     if req == requester)

    def render(self) -> str:
        if not self.recognised:
            return "\tnot a dynamic executable\n"
        lines = [e.render() for e in self.entries]
        if self.version_info:
            lines.append("\n\tVersion information:")
            current = None
            for requester, version, lib, path in self.version_info:
                if requester != current:
                    lines.append(f"\t{requester}:")
                    current = requester
                lines.append(f"\t\t{lib} ({version}) => {path or 'not found'}")
        return "\n".join(lines) + "\n"


class Toolbox:
    """Emulated utilities bound to one machine.

    *available* lists installed utilities; omitted utilities raise
    :class:`ToolUnavailable` so FEAM's fallback paths engage.
    """

    ALL_TOOLS = frozenset({
        "objdump", "readelf", "ldd", "uname", "locate", "find", "cat",
        "ldconfig", "nm"})

    def __init__(self, machine: Machine,
                 available: Optional[frozenset[str]] = None) -> None:
        self.machine = machine
        self.available = (frozenset(available) if available is not None
                          else self.ALL_TOOLS)

    def _require(self, tool: str) -> None:
        if tool not in self.available:
            raise ToolUnavailable(f"{tool}: command not found")

    def _read_elf_info(self, path: str) -> BinaryInfo:
        return describe_parsed(self.machine.read_elf(path))

    # -- objdump -p -----------------------------------------------------------

    def objdump_p(self, path: str) -> ObjdumpInfo:
        """``objdump -p <path>``: file-format specific information."""
        self._require("objdump")
        try:
            info = self._read_elf_info(path)
        except (FsError, ElfError) as exc:
            raise FsError(f"objdump: {path}: {exc}") from exc
        version_refs = tuple(
            (req.filename, v.name)
            for req in info.version_requirements
            for v in req.versions)
        return ObjdumpInfo(
            file_format=f"elf{info.bits}-{info.isa_name}",
            machine=info.isa_name,
            bits=info.bits,
            is_dynamic=info.is_dynamic,
            needed=info.needed,
            soname=info.soname,
            rpath=info.rpath,
            runpath=info.runpath,
            version_references=version_refs,
            version_definitions=info.version_definitions,
        )

    # -- readelf -p .comment -----------------------------------------------------

    def readelf_comment(self, path: str) -> tuple[str, ...]:
        """``readelf -p .comment <path>``: toolchain banner strings."""
        self._require("readelf")
        try:
            info = self._read_elf_info(path)
        except (FsError, ElfError) as exc:
            raise FsError(f"readelf: {path}: {exc}") from exc
        return info.comment

    # -- ldd -v ----------------------------------------------------------------------

    def _ldd_recognises(self, info: BinaryInfo) -> bool:
        """The paper's Section V.A quirk: ldd does not recognise some
        binaries as dynamically linked (emulated for PGI toolchains)."""
        return not any("PGI" in c for c in info.comment)

    def ldd(self, path: str, env: Optional[Environment] = None) -> LddResult:
        """``ldd -v <path>`` under *env* (defaults to the login env)."""
        self._require("ldd")
        effective_env = env if env is not None else self.machine.env
        data = self.machine.fs.read(self.machine.fs.realpath(path))
        info = describe_elf(data)
        if not info.is_dynamic:
            return LddResult(recognised=False)
        if not self._ldd_recognises(info):
            return LddResult(recognised=False)
        report: ResolutionReport = self.machine.loader.resolve(
            data, effective_env, origin=path)
        entries = []
        seen: set[str] = set()
        for e in report.entries:
            if e.soname in seen:
                continue
            seen.add(e.soname)
            entries.append(LddEntry(soname=e.soname, path=e.path))
        version_info = []
        for loaded_path, elf in report.loaded.items():
            for req in elf.version_requirements:
                resolved = next(
                    (e.path for e in report.entries
                     if e.soname == req.filename), None)
                for v in req.versions:
                    version_info.append(
                        (loaded_path, v.name, req.filename, resolved))
        version_errors = tuple(
            ve.message() for ve in report.version_errors)
        unsatisfied = tuple(dict.fromkeys(
            (ve.library, ve.version) for ve in report.version_errors))
        return LddResult(
            recognised=True,
            entries=tuple(entries),
            version_info=tuple(version_info),
            version_errors=version_errors,
            unsatisfied_versions=unsatisfied,
        )

    def ldd_r(self, path: str,
              env: Optional[Environment] = None) -> tuple["LddResult", list]:
        """``ldd -r``: relocation (symbol-level) checking on top of ldd.

        Returns ``(ldd result, unsatisfied imported symbols)``.
        """
        result = self.ldd(path, env)
        if not result.recognised:
            return result, []
        from repro.sysmodel.loader import undefined_symbols
        effective_env = env if env is not None else self.machine.env
        data = self.machine.fs.read(self.machine.fs.realpath(path))
        report = self.machine.loader.resolve(data, effective_env,
                                             origin=path)
        return result, undefined_symbols(report, origin=path)

    # -- uname ------------------------------------------------------------------------

    def uname_p(self) -> str:
        """``uname -p``."""
        self._require("uname")
        return self.machine.uname_processor()

    # -- file reading (cat of /proc and /etc files) -------------------------------------

    def cat(self, path: str) -> str:
        """Read a text file (``cat``)."""
        self._require("cat")
        return self.machine.fs.read_text(path)

    def file_exists(self, path: str) -> bool:
        """Shell ``test -e``."""
        return self.machine.fs.exists(path)

    def list_glob(self, directory: str, suffix: str = "") -> list[str]:
        """Shell globbing of ``directory/*suffix``."""
        if not self.machine.fs.is_dir(directory):
            return []
        return [posixpath.join(directory, name)
                for name in self.machine.fs.listdir(directory)
                if name.endswith(suffix)]

    # -- locate / find -----------------------------------------------------------------

    def locate(self, name: str) -> list[str]:
        """``locate <name>``: every path whose basename matches."""
        self._require("locate")
        return sorted(self.machine.fs.find_files(
            "/", name_filter=lambda fname: fname == name))

    def find_in_dirs(self, name: str, directories: list[str]) -> list[str]:
        """``find <dirs> -name <name>`` over specific directories."""
        self._require("find")
        hits = []
        for directory in directories:
            hits.extend(self.machine.fs.find_files(
                directory, name_filter=lambda fname: fname == name))
        return sorted(set(hits))

    def search_library(self, soname: str,
                       env: Optional[Environment] = None) -> list[str]:
        """FEAM's library search: common locations + LD_LIBRARY_PATH.

        Prefers ``locate`` and falls back to ``find`` (Section V.A).
        """
        try:
            hits = self.locate(soname)
            if hits:
                return hits
        except ToolUnavailable:
            pass
        effective_env = env if env is not None else self.machine.env
        dirs = list(COMMON_LIB_DIRS) + effective_env.ld_library_path
        return self.find_in_dirs(soname, dirs)

    def loader_visible_library(self, soname: str,
                               env: Optional[Environment] = None,
                               ) -> Optional[str]:
        """Where the dynamic loader would find *soname* under *env*.

        Unlike :meth:`search_library` (which hunts the whole filesystem to
        *locate copies*), this checks only the loader's search order:
        LD_LIBRARY_PATH, ``/etc/ld.so.conf`` directories, and the trusted
        default directories.  Presence elsewhere (an unloaded ``/opt``
        prefix) does not make a binary runnable, so readiness checks must
        use this test.
        """
        from repro.sysmodel.loader import DEFAULT_TRUSTED_DIRS, read_ld_so_conf
        effective_env = env if env is not None else self.machine.env
        dirs = list(effective_env.ld_library_path)
        dirs += read_ld_so_conf(self.machine.fs)
        dirs += list(DEFAULT_TRUSTED_DIRS)
        for directory in dirs:
            candidate = posixpath.join(directory, soname)
            if self.machine.fs.is_file(candidate):
                return candidate
        return None

    def search_library_stem(self, stem: str,
                            env: Optional[Environment] = None) -> list[str]:
        """Find any version of ``lib<stem>`` (used for MPI stack discovery)."""
        def matches(fname: str) -> bool:
            parsed = parse_library_name(fname)
            return parsed is not None and parsed.stem == stem

        effective_env = env if env is not None else self.machine.env
        dirs = list(COMMON_LIB_DIRS) + effective_env.ld_library_path
        self._require("find")
        hits = []
        for directory in dirs:
            hits.extend(self.machine.fs.find_files(
                directory, name_filter=matches))
        return sorted(set(hits))

    # -- nm -D -------------------------------------------------------------------------

    def nm_dynamic(self, path: str):
        """``nm -D <path>``: the dynamic symbol table.

        Returns a tuple of :class:`repro.elf.structs.DynamicSymbol`.
        """
        self._require("nm")
        try:
            elf = self.machine.read_elf(path)
        except (FsError, ElfError) as exc:
            raise FsError(f"nm: {path}: {exc}") from exc
        return elf.symbols

    def nm_render(self, path: str) -> str:
        """``nm -D`` text output."""
        symbols = self.nm_dynamic(path)
        if not symbols:
            return "nm: no symbols\n"
        return "\n".join(s.render() for s in symbols) + "\n"

    # -- ldconfig -----------------------------------------------------------------------

    def ldconfig_p(self):
        """``ldconfig -p``: the ld.so.cache index, or None when absent.

        Returns a list of :class:`repro.sysmodel.ldconfig.CacheEntry`.
        """
        self._require("ldconfig")
        from repro.sysmodel.ldconfig import read_cache
        return read_cache(self.machine.fs)

    def cache_lookup(self, soname: str) -> Optional[str]:
        """Path of *soname* per the ld.so.cache, or None."""
        try:
            entries = self.ldconfig_p()
        except ToolUnavailable:
            return None
        if not entries:
            return None
        for entry in entries:
            if entry.soname == soname:
                return entry.path
        return None

    # -- C library version ------------------------------------------------------------

    def run_libc_binary(self, path: str) -> Optional[str]:
        """Execute the C library binary and parse its banner.

        Real glibc prints its version banner when ``/lib64/libc.so.6`` is
        executed; the emulation recovers the banner the build embedded in
        the image's ``.comment`` section.
        """
        fs = self.machine.fs
        if not fs.is_file(path):
            return None
        try:
            info = self._read_elf_info(path)
        except (FsError, ElfError):
            return None
        for comment in info.comment:
            version = parse_banner(comment)
            if version is not None:
                return comment
        return None

    def libc_version_via_api(self, path: str) -> Optional[str]:
        """Fallback: ``gnu_get_libc_version()`` via the C library API.

        Emulated by reading the newest GLIBC_* version definition from the
        installed library's ELF image.
        """
        try:
            info = self._read_elf_info(path)
        except (FsError, ElfError):
            return None
        def numeric(name: str) -> Optional[tuple[int, ...]]:
            parts = name[len("GLIBC_"):].split(".")
            try:
                return tuple(int(p) for p in parts)
            except ValueError:
                # e.g. GLIBC_PRIVATE, GLIBC_ABI_DT_RELR on real glibc.
                return None

        glibc_defs = [(numeric(v), v) for v in info.version_definitions
                      if v.startswith("GLIBC_")]
        glibc_defs = [(key, v) for key, v in glibc_defs if key is not None]
        if not glibc_defs:
            return None
        return max(glibc_defs)[1][len("GLIBC_"):]

    # -- wrapper inspection ---------------------------------------------------------------

    def wrapper_compiler(self, wrapper_path: str) -> Optional[str]:
        """Parse an mpicc-style wrapper script for its compiler driver."""
        fs = self.machine.fs
        if not fs.is_file(wrapper_path):
            return None
        text = fs.read(wrapper_path)
        if text[:4] == b"\x7fELF":
            return None
        for line in text.decode("utf-8", errors="replace").splitlines():
            line = line.strip()
            if line.startswith("CC="):
                return line[len("CC="):].strip().strip('"')
        return None

    def compiler_banner(self, driver_path: str) -> Optional[str]:
        """``<driver> -V``: the compiler's identification banner."""
        try:
            info = self._read_elf_info(driver_path)
        except (FsError, ElfError):
            return None
        return info.comment[0] if info.comment else None
