"""Unix tool emulation.

FEAM is implemented with "various standard Unix-like operating system
utilities" (paper Section V): ``objdump -p``, ``readelf -p .comment``,
``ldd -v``, ``uname -p``, ``locate``, ``find``, and running the C library
binary.  This package emulates those tools over a simulated machine's
filesystem -- parsing the genuine ELF bytes stored there -- and models
their real-world failure modes:

* tools can be absent at a site (:class:`ToolUnavailable`), forcing FEAM's
  documented fallbacks (objdump -> ldd -> filesystem search);
* ``ldd`` sometimes fails to recognise a dynamically linked binary
  (Section V.A), emulated for PGI-produced binaries.

FEAM's components (:mod:`repro.core`) interact with sites exclusively
through this layer.
"""

from repro.tools.toolbox import (
    LddEntry,
    LddResult,
    ObjdumpInfo,
    Toolbox,
    ToolUnavailable,
)

__all__ = [
    "LddEntry",
    "LddResult",
    "ObjdumpInfo",
    "Toolbox",
    "ToolUnavailable",
]
