"""The five evaluation sites of the paper's Table II.

==========  =============================  ==========  ==========================================
Site        System                         C library   MPI stacks (compilers i/g/p)
==========  =============================  ==========  ==========================================
ranger      XSEDE Ranger, TACC (MPP)       2.3.4       Open MPI 1.3 (i/g/p), MVAPICH2 1.2 (i/g/p)
forge       XSEDE Forge, NCSA (Hybrid)     2.12        Open MPI 1.4 (g/i), MVAPICH2 1.7rc1 (i)
blacklight  XSEDE Blacklight, PSC (SMP)    2.11.1      Open MPI 1.4 (i/g)
india       FutureGrid India, IU (Cluster) 2.5         Open MPI 1.4 (i/g), MVAPICH2 1.7a2 (i/g),
                                                       MPICH2 1.4 (i/g)
fir         ITS Fir, UVa (Cluster)         2.5         Open MPI 1.4 (i/g/p), MVAPICH2 1.7a (i/g/p),
                                                       MPICH2 1.3 (i/g/p)
==========  =============================  ==========  ==========================================

PGI versions are not given in the paper; 7.2 (Ranger-era) and 10.3 (Fir)
are used.  One advertised-but-misconfigured stack is included (Fir's
PGI MPICH2), reproducing the paper's observation that advertised stack
combinations are sometimes unusable due to administrator misconfiguration
(Section III.B).
"""

from __future__ import annotations

import functools

from repro.mpi.implementations import mpich2, mvapich2, open_mpi
from repro.mpi.stack import Interconnect
from repro.sites.scheduler import SchedulerFlavor
from repro.sites.site import Site, SiteSpec, StackRequest
from repro.sysmodel import distro as distros
from repro.toolchain.compilers import CompilerFamily, intel, pgi
from repro.toolchain.products import LibraryProduct

_G = CompilerFamily.GNU
_I = CompilerFamily.INTEL
_P = CompilerFamily.PGI


def _stacks(release, *families) -> list[StackRequest]:
    return [StackRequest(release, family) for family in families]


#: Distro compatibility runtimes for binaries built by older toolchains
#: (RHEL/CentOS shipped compat-libf2c-34, RHEL 6 / SLES 11 additionally
#: compat-libgfortran-41).  Built for old-ABI consumers, hence the low
#: glibc ceiling.
_COMPAT_G77 = LibraryProduct(
    "libg2c.so.0", filename="libg2c.so.0.0.0", size=160_000,
    glibc_ceiling=(2, 3), comment=("compat-libf2c-34",),
    exports=("s_wsfe", "do_fio", "e_wsfe"))
_COMPAT_GFORTRAN_41 = LibraryProduct(
    "libgfortran.so.1", filename="libgfortran.so.1.0.0", size=640_000,
    verdefs=("GFORTRAN_1.0",), needed=("libm.so.6",),
    glibc_ceiling=(2, 3, 4), comment=("compat-libgfortran-41",),
    exports=("_gfortran_st_write", "_gfortran_st_read",
             "_gfortran_stop_numeric"))

_EL5_COMPAT = (_COMPAT_G77,)
_EL6_COMPAT = (_COMPAT_G77, _COMPAT_GFORTRAN_41)


PAPER_SITE_SPECS: tuple[SiteSpec, ...] = (
    SiteSpec(
        name="ranger",
        display_name="XSEDE Ranger",
        organization="Texas Advanced Computing Center",
        site_type="MPP", cores=62_976, arch="x86_64",
        distro=distros.CENTOS_4_9, libc_version="2.3.4",
        system_gnu_version="3.4.6",
        vendor_compilers=(intel("10.1"), pgi("7.2")),
        stacks=tuple(
            _stacks(open_mpi("1.3"), _I, _G, _P)
            + _stacks(mvapich2("1.2"), _I, _G, _P)),
        interconnect=Interconnect.INFINIBAND,
        module_system="modules",
        scheduler_flavor=SchedulerFlavor.SGE,
        missing_tools=("locate",),
    ),
    SiteSpec(
        name="forge",
        display_name="XSEDE Forge",
        organization="National Center for Supercomputing Applications",
        site_type="Hybrid", cores=576, arch="x86_64",
        distro=distros.RHEL_6_1, libc_version="2.12",
        system_gnu_version="4.4.5",
        vendor_compilers=(intel("12.0"),),
        stacks=tuple(
            _stacks(open_mpi("1.4"), _G, _I)
            + _stacks(mvapich2("1.7rc1"), _I)),
        interconnect=Interconnect.INFINIBAND,
        module_system="modules",
        scheduler_flavor=SchedulerFlavor.PBS,
        compat_products=_EL6_COMPAT,
    ),
    SiteSpec(
        name="blacklight",
        display_name="XSEDE Blacklight",
        organization="Pittsburgh Supercomputing Center",
        site_type="SMP", cores=4_096, arch="x86_64",
        distro=distros.SLES_11, libc_version="2.11.1",
        system_gnu_version="4.4.3",
        vendor_compilers=(intel("11.1"),),
        stacks=tuple(_stacks(open_mpi("1.4"), _I, _G)),
        interconnect=Interconnect.NUMALINK,
        module_system="softenv",
        scheduler_flavor=SchedulerFlavor.PBS,
        compat_products=_EL6_COMPAT,
    ),
    SiteSpec(
        name="india",
        display_name="FutureGrid India",
        organization="Indiana University",
        site_type="Cluster", cores=920, arch="x86_64",
        distro=distros.RHEL_5_6, libc_version="2.5",
        system_gnu_version="4.1.2",
        vendor_compilers=(intel("11.1"),),
        stacks=tuple(
            _stacks(open_mpi("1.4"), _I, _G)
            + _stacks(mvapich2("1.7a2"), _I, _G)
            + _stacks(mpich2("1.4"), _I, _G)),
        interconnect=Interconnect.INFINIBAND,
        module_system="modules",
        scheduler_flavor=SchedulerFlavor.PBS,
        compat_products=_EL5_COMPAT,
    ),
    SiteSpec(
        name="fir",
        display_name="ITS Fir",
        organization="University of Virginia",
        site_type="Cluster", cores=1_496, arch="x86_64",
        distro=distros.CENTOS_5_6, libc_version="2.5",
        system_gnu_version="4.1.2",
        vendor_compilers=(intel("12.0"), pgi("10.3")),
        stacks=tuple(
            _stacks(open_mpi("1.4"), _I, _G, _P)
            + _stacks(mvapich2("1.7a"), _I, _G, _P)
            + _stacks(mpich2("1.3"), _I, _G, _P)),
        interconnect=Interconnect.INFINIBAND,
        module_system="none",
        scheduler_flavor=SchedulerFlavor.PBS,
        misconfigured=("mpich2-1.3-pgi",),
        missing_tools=("locate",),
        compat_products=_EL5_COMPAT,
    ),
)


def site_spec(name: str) -> SiteSpec:
    """Look up one of the paper's site specs by name."""
    for spec in PAPER_SITE_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown paper site: {name!r}")


@functools.lru_cache(maxsize=4)
def _cached_sites(seed: int) -> tuple[Site, ...]:
    return tuple(Site(spec, seed) for spec in PAPER_SITE_SPECS)


def build_paper_sites(seed: int = 20130101,
                      cached: bool = True) -> list[Site]:
    """Materialise all five Table II sites.

    Building a site installs hundreds of ELF images; with ``cached=True``
    (the default) repeated calls with the same seed share the instances.
    Callers that mutate sites (e.g. FEAM staging library copies) should
    pass ``cached=False``.
    """
    if cached:
        return list(_cached_sites(seed))
    return [Site(spec, seed) for spec in PAPER_SITE_SPECS]
