"""Environment Modules emulation.

The paper's EDC consults user-environment management tools to discover MPI
stacks (Section V.B): it looks for Environment Modules configuration files,
uses ``module avail`` to enumerate stacks and ``module list`` to see what
is loaded.  This module implements a file-backed Environment Modules
system: modulefiles live under ``/usr/share/Modules/modulefiles`` in the
site's virtual filesystem, in (a subset of) real Tcl modulefile syntax, and
``load`` applies their ``prepend-path`` operations to an environment.

FEAM's discovery code never calls the Python objects directly for
information that should come from files: presence is detected by the
modulefile tree existing, and stack enumeration by walking it.
"""

from __future__ import annotations

import posixpath
from typing import Optional, Protocol

from repro.sysmodel.env import Environment
from repro.sysmodel.fs import VirtualFilesystem

MODULEFILES_ROOT = "/usr/share/Modules/modulefiles"
MODULES_INIT = "/usr/share/Modules/init/sh"


class ModuleSystem(Protocol):
    """Interface shared by the module-system emulations."""

    def is_present(self) -> bool:
        """Is this tool installed at the site?"""
        ...

    def avail(self) -> list[str]:
        """Names of available modules (``module avail``)."""
        ...

    def load(self, name: str, env: Environment) -> None:
        """Apply a module's environment operations (``module load``)."""
        ...

    def loaded(self, env: Environment) -> list[str]:
        """Currently loaded modules (``module list``)."""
        ...


class EnvironmentModules:
    """File-backed Environment Modules (Tcl ``modulefile`` subset)."""

    def __init__(self, fs: VirtualFilesystem,
                 root: str = MODULEFILES_ROOT) -> None:
        self._fs = fs
        self._root = root

    @property
    def root(self) -> str:
        return self._root

    def install(self) -> None:
        """Create the Modules installation markers."""
        self._fs.makedirs(self._root)
        self._fs.write_text(
            MODULES_INIT,
            "# Modules init script\nmodule() { eval `modulecmd sh $*`; }\n")

    def is_present(self) -> bool:
        return self._fs.is_dir(self._root) and self._fs.is_file(MODULES_INIT)

    # -- modulefile management ---------------------------------------------------

    def write_modulefile(self, name: str,
                         path_ops: list[tuple[str, str]],
                         description: str = "") -> None:
        """Write a modulefile for *name* with prepend-path operations."""
        lines = ["#%Module1.0"]
        if description:
            lines.append(f"## {description}")
        for var, value in path_ops:
            lines.append(f"prepend-path {var} {value}")
        self._fs.write_text(posixpath.join(self._root, name),
                            "\n".join(lines) + "\n")

    def avail(self) -> list[str]:
        if not self._fs.is_dir(self._root):
            return []
        names = []
        for path in self._fs.find_files(self._root):
            rel = path[len(self._root):].lstrip("/")
            if rel:
                names.append(rel)
        return sorted(names)

    def _parse(self, name: str) -> list[tuple[str, str]]:
        path = posixpath.join(self._root, name)
        if not self._fs.is_file(path):
            raise KeyError(f"no such module: {name}")
        ops = []
        for line in self._fs.read_text(path).splitlines():
            parts = line.split()
            if len(parts) == 3 and parts[0] in ("prepend-path", "append-path"):
                ops.append((parts[0], parts[1], parts[2]))
        return [(var, value) for op, var, value in ops]

    def load(self, name: str, env: Environment) -> None:
        for var, value in self._parse(name):
            env.prepend_path(var, value)
        env.append_path("LOADEDMODULES", name)

    def loaded(self, env: Environment) -> list[str]:
        return env.get_list("LOADEDMODULES")


class NoModuleSystem:
    """A site without any user-environment management tool.

    FEAM's discovery falls back to filesystem search (paper: "If no
    user-environment management tools are found, then we use the same
    search methods as used by the BDC to locate shared libraries").
    """

    def is_present(self) -> bool:
        return False

    def avail(self) -> list[str]:
        return []

    def load(self, name: str, env: Environment) -> None:
        raise KeyError(f"no module system available (loading {name!r})")

    def loaded(self, env: Environment) -> list[str]:
        return []


def detect_module_system(fs: VirtualFilesystem) -> Optional[EnvironmentModules]:
    """Detect an Environment Modules installation from its config files."""
    modules = EnvironmentModules(fs)
    return modules if modules.is_present() else None
