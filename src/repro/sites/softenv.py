"""SoftEnv emulation.

SoftEnv (the MCS Systems Administration Toolkit's environment manager,
paper reference [19]) is the second user-environment tool FEAM's discovery
understands.  Its database lives in ``/etc/softenv.db`` as ``+key``
entries, and users select keys in ``~/.soft``.

The emulation implements the subset FEAM needs: presence detection via the
database file, enumeration of keys, and applying a key's environment
operations.
"""

from __future__ import annotations

from repro.sysmodel.env import Environment
from repro.sysmodel.fs import VirtualFilesystem

SOFTENV_DB = "/etc/softenv.db"
SOFT_FILE = "/etc/softenv-aliases.db"


class SoftEnv:
    """File-backed SoftEnv database."""

    def __init__(self, fs: VirtualFilesystem, db_path: str = SOFTENV_DB) -> None:
        self._fs = fs
        self._db_path = db_path

    def install(self) -> None:
        """Create an empty database."""
        if not self._fs.is_file(self._db_path):
            self._fs.write_text(self._db_path, "# softenv database\n")

    def is_present(self) -> bool:
        return self._fs.is_file(self._db_path)

    def add_key(self, key: str, path_ops: list[tuple[str, str]]) -> None:
        """Register ``+key`` with its environment operations."""
        existing = ""
        if self._fs.is_file(self._db_path):
            existing = self._fs.read_text(self._db_path)
        ops = " ".join(f"{var}:{value}" for var, value in path_ops)
        self._fs.write_text(self._db_path, existing + f"+{key} {ops}\n")

    def avail(self) -> list[str]:
        """All registered keys (``softenv`` listing)."""
        if not self._fs.is_file(self._db_path):
            return []
        keys = []
        for line in self._fs.read_text(self._db_path).splitlines():
            line = line.strip()
            if line.startswith("+"):
                keys.append(line.split()[0][1:])
        return sorted(keys)

    def _ops_for(self, key: str) -> list[tuple[str, str]]:
        if not self._fs.is_file(self._db_path):
            raise KeyError(f"no softenv database at {self._db_path}")
        for line in self._fs.read_text(self._db_path).splitlines():
            parts = line.strip().split()
            if parts and parts[0] == f"+{key}":
                ops = []
                for op in parts[1:]:
                    var, _, value = op.partition(":")
                    if value:
                        ops.append((var, value))
                return ops
        raise KeyError(f"no such softenv key: {key}")

    def load(self, key: str, env: Environment) -> None:
        """Apply ``+key`` to *env* (what ``resoft`` does for ``~/.soft``)."""
        for var, value in self._ops_for(key):
            env.prepend_path(var, value)
        env.append_path("LOADEDMODULES", key)

    def loaded(self, env: Environment) -> list[str]:
        return env.get_list("LOADEDMODULES")
