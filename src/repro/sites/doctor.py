"""Site self-diagnosis.

:func:`diagnose_site` verifies a built site's internal consistency -- the
invariants everything downstream assumes.  It exists for two reasons:
catalog regressions (a refactor that silently breaks a site's layout
would skew every reproduced number) and as a library feature for users
defining custom sites.

Checks:

* every installed stack's application link footprint resolves under that
  stack's environment (hello-world compilability);
* module/SoftEnv entries exist for every stack (when the site has a
  user-environment tool) and load to the right prefixes;
* the ld.so.cache is fresh (matches a rescan of the trusted directories);
* the C library is discoverable and matches the spec;
* every stack's wrapper names a compiler driver that exists;
* launchers exist for every stack.

Intentional states (misconfigured stacks, compute-node divergence) are
reported as notes, not failures.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import TYPE_CHECKING

from repro.toolchain.compilers import Language

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sites.site import Site


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnosis result."""

    severity: str  # "error" | "note"
    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.check}: {self.detail}"


def diagnose_site(site: "Site") -> list[Finding]:
    """Run every check; returns the findings (empty = fully healthy)."""
    findings: list[Finding] = []
    findings += _check_stacks_resolve(site)
    findings += _check_env_tool_entries(site)
    findings += _check_ldconfig_fresh(site)
    findings += _check_libc(site)
    findings += _check_wrappers(site)
    findings += _check_launchers(site)
    findings += _notes(site)
    return findings


def errors(findings: list[Finding]) -> list[Finding]:
    """Only the error-severity findings."""
    return [f for f in findings if f.severity == "error"]


def _check_stacks_resolve(site: "Site") -> list[Finding]:
    findings = []
    for stack in site.stacks:
        try:
            env = site.env_with_stack(stack)
        except KeyError as exc:
            findings.append(Finding(
                "error", "stack-environment",
                f"{stack.spec.slug}: cannot compose environment ({exc})"))
            continue
        for language in (Language.C, Language.FORTRAN):
            try:
                linked = site.compile_mpi_program(
                    f"doctor-{stack.spec.slug}-{language.value}",
                    language, stack, payload_size=64)
            except Exception as exc:  # compile machinery itself broke
                findings.append(Finding(
                    "error", "stack-compile",
                    f"{stack.spec.slug}/{language.value}: {exc}"))
                continue
            report = site.machine.loader.resolve(linked.image, env)
            if not report.ok:
                findings.append(Finding(
                    "error", "stack-resolution",
                    f"{stack.spec.slug}/{language.value}: missing "
                    f"{report.missing_sonames}, version errors "
                    f"{[e.message() for e in report.version_errors]}"))
    return findings


def _check_env_tool_entries(site: "Site") -> list[Finding]:
    findings = []
    if site.modules is not None:
        available = set(site.modules.avail())
        for stack in site.stacks:
            if stack.module_name not in available:
                findings.append(Finding(
                    "error", "modulefile",
                    f"no modulefile for {stack.spec.slug}"))
    elif site.softenv is not None:
        available = set(site.softenv.avail())
        for stack in site.stacks:
            key = stack.module_name.replace("/", "-")
            if key not in available:
                findings.append(Finding(
                    "error", "softenv-key",
                    f"no softenv key for {stack.spec.slug}"))
    return findings


def _check_ldconfig_fresh(site: "Site") -> list[Finding]:
    from repro.sysmodel.ldconfig import read_cache, scan_trusted_directories
    cached = read_cache(site.machine.fs)
    if cached is None:
        return [Finding("error", "ldconfig", "no ld.so.cache")]
    fresh = scan_trusted_directories(site.machine)
    if set(cached) != set(fresh):
        return [Finding("error", "ldconfig",
                        "ld.so.cache is stale (rerun ldconfig)")]
    return []


def _check_libc(site: "Site") -> list[Finding]:
    toolbox = site.toolbox()
    path = toolbox.loader_visible_library("libc.so.6")
    if path is None:
        return [Finding("error", "libc", "libc.so.6 not loader-visible")]
    version = toolbox.libc_version_via_api(path)
    if version != site.spec.libc_version:
        return [Finding(
            "error", "libc",
            f"installed libc reports {version}, spec says "
            f"{site.spec.libc_version}")]
    return []


def _check_wrappers(site: "Site") -> list[Finding]:
    findings = []
    toolbox = site.toolbox()
    for stack in site.stacks:
        driver = toolbox.wrapper_compiler(stack.wrapper_path("mpicc"))
        if driver is None:
            findings.append(Finding(
                "error", "wrapper",
                f"{stack.spec.slug}: mpicc wrapper has no CC= line"))
        elif not site.machine.fs.is_executable(driver):
            findings.append(Finding(
                "error", "wrapper",
                f"{stack.spec.slug}: wrapper names missing driver "
                f"{driver}"))
    return findings


def _check_launchers(site: "Site") -> list[Finding]:
    findings = []
    for stack in site.stacks:
        for name in stack.launcher_names:
            path = posixpath.join(stack.bindir, name)
            if not site.machine.fs.is_executable(path):
                findings.append(Finding(
                    "error", "launcher",
                    f"{stack.spec.slug}: {name} missing"))
    return findings


def _notes(site: "Site") -> list[Finding]:
    notes = []
    for slug in site.spec.misconfigured:
        notes.append(Finding(
            "note", "misconfigured",
            f"{slug} is intentionally advertised-but-unusable"))
    if site.compute_machine is not site.machine:
        notes.append(Finding(
            "note", "compute-divergence",
            f"compute nodes lack {len(site.spec.compute_node_missing)} "
            f"file(s) present on the login node"))
    return notes
