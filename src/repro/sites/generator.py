"""Parametric fleet generation: thousands of deterministic synthetic sites.

The paper evaluates FEAM on 5 hand-picked sites; a production deployment
predicts readiness across a *fleet* of dissimilar hosts, where the matrix
has thousands to hundreds of thousands of cells.  :class:`SiteGenerator`
stands that fleet up: a seeded parametric sampler over the primitives of
:mod:`repro.sites.catalog` -- distro/libc platform, MPI stack sets,
module systems, interconnects, installed-library subsets -- that turns a
compact spec string such as ``fleet:n=1000,seed=7`` into 1k-10k fully
materialised :class:`~repro.sites.site.Site` objects.

Two properties make fleet scale tractable:

* **Determinism.**  Every sampling draw derives from
  :func:`repro.util.hashing.stable_uniform` keyed by (fleet seed, site
  index, field), so the same spec string produces byte-identical site
  specs -- and :func:`spec_fingerprint` digests -- in any process.
* **Template cloning.**  Sampled specs collapse onto a bounded set of
  *installation templates* (:func:`template_key`: the spec fields that
  determine filesystem content).  One site per template is built the
  expensive way; every other site of that template is
  :meth:`~repro.sites.site.Site.cloned` from it in well under a
  millisecond, with only the non-install fields (scheduler flavor,
  misconfigured stacks, missing tools) re-applied.

Generated sites carry a ``content_key`` attribute -- the digest of every
spec field that can influence discovery or evaluation outcomes
(:func:`content_key`).  The evaluation engine uses it to share discovery
results and evaluation cells between sites whose environments are
provably identical; hand-built sites (the paper's five) have no
``content_key`` and keep the fully per-site path.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.mpi.implementations import mpich2, mvapich2, open_mpi
from repro.mpi.stack import Interconnect
from repro.sites.catalog import (
    _EL5_COMPAT,
    _EL6_COMPAT,
    build_paper_sites,
)
from repro.sites.scheduler import SchedulerFlavor
from repro.sites.site import Site, SiteSpec, StackRequest
from repro.sysmodel import distro as distros
from repro.toolchain.compilers import Compiler, CompilerFamily, intel, pgi
from repro.util.hashing import stable_digest, stable_uniform

_G = CompilerFamily.GNU
_I = CompilerFamily.INTEL
_P = CompilerFamily.PGI


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """A parsed fleet spec string (``fleet:n=1000,seed=7``)."""

    count: int
    seed: int
    name_prefix: str = "gen"

    def render(self) -> str:
        return f"fleet:n={self.count},seed={self.seed}"


#: Fleet sizes outside this range are almost certainly typos (and the
#: upper bound keeps memory use within the 10k-site design envelope).
_MAX_FLEET = 10_000


def parse_fleet_spec(text: str) -> FleetSpec:
    """Parse ``fleet:n=<count>[,seed=<seed>][,prefix=<name>]``."""
    if not text.startswith("fleet:"):
        raise ValueError(f"not a fleet spec: {text!r}")
    count, seed, prefix = 100, 0, "gen"
    body = text[len("fleet:"):].strip()
    for item in filter(None, (p.strip() for p in body.split(","))):
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"fleet spec item {item!r}: expected key=value")
        key, value = key.strip(), value.strip()
        if key == "n":
            count = int(value)
        elif key == "seed":
            seed = int(value)
        elif key == "prefix":
            if not value or "/" in value:
                raise ValueError(f"bad fleet prefix {value!r}")
            prefix = value
        else:
            raise ValueError(f"unknown fleet spec key {key!r} "
                             f"(known: n, seed, prefix)")
    if not 1 <= count <= _MAX_FLEET:
        raise ValueError(f"fleet size must be 1..{_MAX_FLEET}, got {count}")
    return FleetSpec(count=count, seed=seed, name_prefix=prefix)


# -- the sampling space ---------------------------------------------------------

#: Era platforms: (distro, libc version, system GNU version,
#: vendor compilers, compat library products).  These are the Table II
#: platform rows, reused as the population the fleet samples from.
_PLATFORMS = (
    (distros.CENTOS_4_9, "2.3.4", "3.4.6", (intel("10.1"), pgi("7.2")), ()),
    (distros.CENTOS_5_6, "2.5", "4.1.2", (intel("11.1"),), _EL5_COMPAT),
    (distros.RHEL_5_6, "2.5", "4.1.2", (intel("11.1"),), _EL5_COMPAT),
    (distros.RHEL_6_1, "2.12", "4.4.5", (intel("12.0"),), _EL6_COMPAT),
    (distros.SLES_11, "2.11.1", "4.4.3", (intel("11.1"),), _EL6_COMPAT),
)


def _stacks(release, *families) -> tuple[StackRequest, ...]:
    return tuple(StackRequest(release, family) for family in families)


def _stack_menu(platform_index: int) -> tuple[tuple[StackRequest, ...], ...]:
    """The admissible stack sets for one platform (era-matched releases)."""
    if platform_index == 0:  # the CentOS 4.9 / Ranger era
        return (
            _stacks(open_mpi("1.3"), _I, _G),
            _stacks(open_mpi("1.3"), _I, _G) + _stacks(mvapich2("1.2"), _I),
            _stacks(mvapich2("1.2"), _I, _G),
        )
    return (
        _stacks(open_mpi("1.4"), _I, _G),
        _stacks(open_mpi("1.4"), _I, _G) + _stacks(mvapich2("1.7a"), _I),
        _stacks(open_mpi("1.4"), _G) + _stacks(mpich2("1.4"), _I, _G),
    )


_MODULE_SYSTEMS = (("modules", 0.7), ("softenv", 0.2), ("none", 0.1))
_INTERCONNECTS = ((Interconnect.INFINIBAND, 0.7),
                  (Interconnect.ETHERNET, 0.25),
                  (Interconnect.NUMALINK, 0.05))
_SCHEDULERS = ((SchedulerFlavor.PBS, 0.7), (SchedulerFlavor.SGE, 0.3))
_STACK_SET_WEIGHTS = (0.5, 0.3, 0.2)
_SITE_TYPES = ("Cluster", "MPP", "SMP", "Hybrid")
_CORE_COUNTS = (64, 128, 256, 512, 1_024, 4_096)


class SiteGenerator:
    """Seeded parametric sampling of synthetic fleet sites."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec

    # -- draws -----------------------------------------------------------------

    def _uniform(self, index: int, field: str) -> float:
        return stable_uniform("fleetgen", self.spec.seed, index, field)

    def _weighted(self, index: int, field: str, options):
        draw = self._uniform(index, field)
        acc = 0.0
        for value, weight in options:
            acc += weight
            if draw < acc:
                return value
        return options[-1][0]

    # -- one site spec ---------------------------------------------------------

    def site_spec(self, index: int) -> SiteSpec:
        """The sampled spec of fleet member *index* (pure, deterministic)."""
        if not 0 <= index < self.spec.count:
            raise IndexError(f"fleet index {index} out of range "
                             f"0..{self.spec.count - 1}")
        platform_index = int(self._uniform(index, "platform")
                             * len(_PLATFORMS))
        distro, libc, gnu, vendors, compat = _PLATFORMS[platform_index]
        menu = _stack_menu(platform_index)
        stack_weights = tuple(zip(range(len(menu)), _STACK_SET_WEIGHTS))
        stacks = menu[self._weighted(index, "stackset", stack_weights)]
        misconfigured: tuple[str, ...] = ()
        if self._uniform(index, "misconfigured") < 0.1:
            request = stacks[0]
            misconfigured = (
                f"{request.release.slug}-{request.compiler_family.value}",)
        missing_tools: tuple[str, ...] = ()
        if self._uniform(index, "missing-locate") < 0.3:
            missing_tools = ("locate",)
        name = f"{self.spec.name_prefix}-{index:04d}"
        return SiteSpec(
            name=name,
            display_name=f"Fleet {name}",
            organization="Synthetic Fleet",
            site_type=_SITE_TYPES[int(self._uniform(index, "site-type")
                                      * len(_SITE_TYPES))],
            cores=_CORE_COUNTS[int(self._uniform(index, "cores")
                                   * len(_CORE_COUNTS))],
            arch="x86_64",
            distro=distro,
            libc_version=libc,
            system_gnu_version=gnu,
            vendor_compilers=vendors,
            stacks=stacks,
            interconnect=self._weighted(index, "interconnect",
                                        _INTERCONNECTS),
            module_system=self._weighted(index, "modules", _MODULE_SYSTEMS),
            scheduler_flavor=self._weighted(index, "scheduler", _SCHEDULERS),
            misconfigured=misconfigured,
            missing_tools=missing_tools,
            compat_products=compat,
        )

    def site_specs(self) -> list[SiteSpec]:
        return [self.site_spec(i) for i in range(self.spec.count)]

    def fingerprints(self) -> list[str]:
        """Per-site spec digests, computable without building anything.

        The determinism contract: two processes constructing the same
        :class:`FleetSpec` must produce byte-identical fingerprint lists.
        """
        return [spec_fingerprint(self.site_spec(i))
                for i in range(self.spec.count)]

    # -- materialisation -------------------------------------------------------

    def build(self) -> list[Site]:
        """Materialise the whole fleet (templates built, the rest cloned)."""
        sites: list[Site] = []
        templates: dict[str, Site] = {}
        for index in range(self.spec.count):
            spec = self.site_spec(index)
            tkey = template_key(spec)
            template = templates.get(tkey)
            if template is None:
                site = Site(spec, self.spec.seed)
                templates[tkey] = site
            else:
                site = Site.cloned(
                    template, spec.name, self.spec.seed,
                    display_name=spec.display_name,
                    site_type=spec.site_type,
                    cores=spec.cores,
                    scheduler_flavor=spec.scheduler_flavor,
                    misconfigured=spec.misconfigured,
                    missing_tools=spec.missing_tools)
            site.content_key = content_key(spec)
            sites.append(site)
        return sites

    @property
    def template_count(self) -> int:
        """Distinct installation templates in this fleet (no building)."""
        return len({template_key(self.site_spec(i))
                    for i in range(self.spec.count)})


# -- content addressing ---------------------------------------------------------

def _compiler_part(compiler: Compiler) -> str:
    return f"{compiler.family.value}-{compiler.version}"


def _install_parts(spec: SiteSpec) -> list:
    """Every spec field that determines installed filesystem content."""
    parts: list = [
        spec.arch, spec.distro.family, spec.distro.version,
        spec.libc_version, spec.system_gnu_version,
        spec.interconnect.value, spec.module_system,
    ]
    parts.extend(_compiler_part(c) for c in spec.vendor_compilers)
    for request in spec.stacks:
        parts.extend((request.release.slug,
                      request.compiler_family.value,
                      request.static_libs))
    parts.extend(p.soname for p in spec.compat_products)
    parts.extend(spec.compute_node_missing)
    return parts


def template_key(spec: SiteSpec) -> str:
    """Digest of the spec fields that determine filesystem content.

    Two specs with equal template keys install byte-identical trees, so
    one can be cloned from the other's built site.
    """
    return stable_digest("site-template", *_install_parts(spec))


def content_key(spec: SiteSpec) -> str:
    """Digest of every field that can influence discovery or evaluation.

    A superset of :func:`template_key`: adds the non-install fields that
    still steer FEAM's behaviour (misconfigured stacks change hello-test
    outcomes, missing tools change discovery fallbacks, the scheduler
    flavor shapes submission).  Sites with equal content keys are
    evaluation-equivalent, which is the engine's licence to share their
    discovery results and cells.
    """
    return stable_digest("site-content", *_install_parts(spec),
                         spec.scheduler_flavor.value,
                         *sorted(spec.misconfigured),
                         *sorted(spec.missing_tools))


def spec_fingerprint(spec: SiteSpec) -> str:
    """Digest over the *entire* spec, cosmetics included."""
    return stable_digest(
        "site-spec", spec.name, spec.display_name, spec.organization,
        spec.site_type, spec.cores, *_install_parts(spec),
        spec.scheduler_flavor.value, *sorted(spec.misconfigured),
        *sorted(spec.missing_tools))


# -- spec-string resolution ------------------------------------------------------

def resolve_sites(spec_text: str, default_seed: int = 20130101,
                  ) -> list[Site]:
    """Sites from a generator spec string.

    * ``paper`` -- the five Table II sites, built fresh (the named spec
      that reproduces the paper's evaluation population);
    * ``fleet:n=...,seed=...`` -- a generated synthetic fleet.
    """
    text = spec_text.strip()
    if text == "paper":
        return build_paper_sites(default_seed, cached=False)
    if text.startswith("fleet:"):
        return SiteGenerator(parse_fleet_spec(text)).build()
    raise ValueError(
        f"unknown sites spec {spec_text!r}; expected 'paper' or "
        f"'fleet:n=<count>[,seed=<seed>][,prefix=<name>]'")


def describe_fleet(sites: Sequence[Site]) -> str:
    """One-line fleet summary (size, distinct templates/content groups)."""
    content_keys = {getattr(s, "content_key", None) for s in sites}
    content_keys.discard(None)
    groups: Optional[int] = len(content_keys) or None
    if groups is None:
        return f"{len(sites)} site(s)"
    return f"{len(sites)} site(s) in {groups} evaluation-equivalent group(s)"
