"""Site assembly.

A :class:`SiteSpec` declares a computing site the way the paper's Table II
does (operating system, C library, compilers, MPI stacks, interconnect);
:meth:`Site.build` materialises it: a machine with genuine ELF libraries on
its virtual filesystem, compiler and MPI-stack installations, a module
system or SoftEnv database, a batch scheduler, and the ground-truth
execution simulator.

FEAM itself (:mod:`repro.core`) must only interact with a site through its
filesystem, environment, module files and scheduler -- the same interfaces
the real tool has -- never through the construction-time spec.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional

from repro.elf.constants import ElfClass, ElfData, ElfMachine
from repro.mpi.implementations import MpiImplementationKind, MpiRelease
from repro.mpi.provenance import GLOBAL_REGISTRY
from repro.mpi.runtime import BuildProvenance, ExecutionSimulator, RunRequest
from repro.mpi.stack import Interconnect, MpiStackInstall, MpiStackSpec
from repro.sites.modules import EnvironmentModules, NoModuleSystem
from repro.sites.scheduler import JobRecord, Scheduler, SchedulerFlavor
from repro.sites.softenv import SoftEnv
from repro.sysmodel.distro import Distro
from repro.sysmodel.env import Environment
from repro.sysmodel.errors import ExecutionResult
from repro.sysmodel.machine import Machine
from repro.toolchain.compilers import Compiler, CompilerFamily, Language
from repro.toolchain.installs import CompilerInstall
from repro.toolchain.libc import GlibcRelease, glibc
from repro.toolchain.linker import LinkInput, LinkedObject, link_program
from repro.toolchain.products import LibraryProduct


class StaticLibrariesUnavailable(RuntimeError):
    """The MPI implementation was not installed with static libraries.

    The paper (Section VI.C): "Scientists compiling their own or community
    MPI applications at sites where MPI implementations have not been
    installed with static libraries do not have the option to prepare
    statically linked binaries for migration."
    """


@dataclasses.dataclass(frozen=True)
class StackRequest:
    """One MPI stack to install: a release built with a compiler family."""

    release: MpiRelease
    compiler_family: CompilerFamily
    #: Were static archives (.a) installed alongside the shared libraries?
    static_libs: bool = False


#: Common system libraries every distro ships.
_SYSTEM_PRODUCTS = (
    LibraryProduct("libz.so.1", filename="libz.so.1.2.3", size=90_000,
                   glibc_ceiling=(2, 3, 4), comment=("zlib",)),
)

#: System InfiniBand userspace libraries (present on IB sites).
_IB_PRODUCTS = (
    LibraryProduct("libibverbs.so.1", filename="libibverbs.so.1.0.0",
                   size=85_000, glibc_ceiling=(2, 3, 4),
                   comment=("libibverbs",)),
    LibraryProduct("libibumad.so.3", filename="libibumad.so.3.0.2",
                   size=30_000, glibc_ceiling=(2, 3, 4),
                   comment=("libibumad",)),
    LibraryProduct("librdmacm.so.1", filename="librdmacm.so.1.0.0",
                   size=60_000, glibc_ceiling=(2, 3, 4),
                   comment=("librdmacm",)),
)


@dataclasses.dataclass(frozen=True)
class SiteSpec:
    """Declarative description of a computing site (one Table II row)."""

    name: str
    display_name: str
    organization: str
    site_type: str  # "MPP" | "SMP" | "Hybrid" | "Cluster"
    cores: int
    arch: str
    distro: Distro
    libc_version: str
    system_gnu_version: str
    vendor_compilers: tuple[Compiler, ...]
    stacks: tuple[StackRequest, ...]
    interconnect: Interconnect
    module_system: str  # "modules" | "softenv" | "none"
    scheduler_flavor: SchedulerFlavor
    #: Stack slugs that are advertised but misconfigured (unusable).
    misconfigured: tuple[str, ...] = ()
    #: Utilities not installed at this site (exercises FEAM's fallbacks).
    missing_tools: tuple[str, ...] = ()
    #: Distro compatibility packages (compat-libgfortran, compat-libf2c,
    #: ...) installed into the system library directory.
    compat_products: tuple[LibraryProduct, ...] = ()
    #: Absolute file paths present on the login node but MISSING on the
    #: compute nodes (diverged images -- a real-world trap FEAM cannot
    #: see, since its discovery runs on the login node).  Empty on the
    #: paper's sites.
    compute_node_missing: tuple[str, ...] = ()

    def compiler_for(self, family: CompilerFamily) -> Compiler:
        """The site's compiler of *family* (system GNU or a vendor one)."""
        if family is CompilerFamily.GNU:
            from repro.toolchain.compilers import gnu
            return gnu(self.system_gnu_version)
        for comp in self.vendor_compilers:
            if comp.family is family:
                return comp
        raise KeyError(f"{self.name} has no {family.value} compiler")


class Site:
    """A fully materialised computing site."""

    def __init__(self, spec: SiteSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self.machine = Machine(spec.name, spec.arch, spec.distro)
        self.libc: GlibcRelease = glibc(spec.libc_version)
        self.compiler_installs: dict[str, CompilerInstall] = {}
        self.stacks: list[MpiStackInstall] = []
        self.scheduler = Scheduler(spec.scheduler_flavor, spec.name, seed)
        self.modules: Optional[EnvironmentModules] = None
        self.softenv: Optional[SoftEnv] = None
        self._install()
        #: The machine jobs actually run on.  Identical to the login
        #: machine unless the spec declares compute-node divergence.
        self.compute_machine = self._build_compute_machine()
        self.simulator = ExecutionSimulator(
            self.compute_machine, spec.name, seed,
            misconfigured_stacks=frozenset(spec.misconfigured))

    #: SiteSpec fields that do not influence ``_install`` output and may
    #: therefore differ between a clone and its template.
    _CLONE_SAFE_OVERRIDES = frozenset((
        "display_name", "organization", "site_type", "cores",
        "scheduler_flavor", "misconfigured", "missing_tools"))

    @classmethod
    def cloned(cls, template: "Site", name: str, seed: int,
               **spec_overrides) -> "Site":
        """A new site copied from a fully-built *template*.

        Skips ``_install`` entirely: the template's filesystem tree is
        cloned (contents shared), its install records are reused, and
        only the per-site identity -- hostname, scheduler, execution
        simulator -- is rebuilt around *name* and *seed*.  This is what
        makes standing up thousands of same-configuration fleet sites
        tractable; building each from its spec costs ~100x more.

        *spec_overrides* may adjust fields that do not affect the
        installed filesystem (scheduler flavor, misconfigured stacks,
        missing tools, cosmetics); anything else must go through a full
        build.
        """
        unsafe = set(spec_overrides) - cls._CLONE_SAFE_OVERRIDES
        if unsafe:
            raise ValueError(
                f"spec fields {sorted(unsafe)} affect installation and "
                f"cannot be overridden on a clone")
        site = cls.__new__(cls)
        site.spec = dataclasses.replace(template.spec, name=name,
                                        **spec_overrides)
        site.seed = seed
        site.machine = template.machine.clone(name)
        site.libc = template.libc
        site.compiler_installs = dict(template.compiler_installs)
        site.stacks = list(template.stacks)
        site.scheduler = Scheduler(site.spec.scheduler_flavor, name, seed)
        site.modules = (EnvironmentModules(site.machine.fs)
                        if template.modules is not None else None)
        site.softenv = (SoftEnv(site.machine.fs)
                        if template.softenv is not None else None)
        if template.compute_machine is template.machine:
            site.compute_machine = site.machine
        else:
            site.compute_machine = template.compute_machine.clone(
                name + "-compute")
        site.simulator = ExecutionSimulator(
            site.compute_machine, name, seed,
            misconfigured_stacks=frozenset(site.spec.misconfigured))
        return site

    def _build_compute_machine(self) -> Machine:
        if not self.spec.compute_node_missing:
            return self.machine
        # Re-run the identical (deterministic) install on a fresh machine,
        # then take away what the compute image lacks.
        compute = Machine(self.spec.name + "-compute", self.spec.arch,
                          self.spec.distro)
        saved = (self.machine, self.modules, self.softenv, self.stacks,
                 self.compiler_installs)
        self.machine = compute
        self.modules = None
        self.softenv = None
        self.stacks = []
        self.compiler_installs = {}
        try:
            self._install()
        finally:
            (self.machine, self.modules, self.softenv, self.stacks,
             self.compiler_installs) = saved
        for path in self.spec.compute_node_missing:
            if compute.fs.lexists(path):
                compute.fs.remove(path)
        from repro.sysmodel.ldconfig import run_ldconfig
        run_ldconfig(compute)
        return compute

    # -- construction ------------------------------------------------------------

    @property
    def _elf_target(self) -> tuple[ElfMachine, ElfClass, ElfData]:
        primary = self.machine.isa_support[0]
        return primary.machine, primary.elf_class, ElfData.LSB

    def _install(self) -> None:
        fs = self.machine.fs
        machine_kind, elf_class, data = self._elf_target
        # C library into the primary trusted directory.
        libdir = "/lib64" if elf_class is ElfClass.ELF64 else "/lib"
        self.libc.install(fs, libdir, machine_kind, elf_class, data)
        fs.write_text("/etc/ld.so.conf",
                      "include /etc/ld.so.conf.d/*.conf\n")
        fs.makedirs("/etc/ld.so.conf.d")
        # Compilers: the distro GNU toolchain plus any vendor compilers.
        from repro.toolchain.compilers import gnu
        system = CompilerInstall.system_gnu(gnu(self.spec.system_gnu_version))
        system.install(self.machine, self.libc, machine_kind, elf_class, data)
        self.compiler_installs[str(system.compiler)] = system
        for comp in self.spec.vendor_compilers:
            install = CompilerInstall.vendor(comp)
            install.install(self.machine, self.libc,
                            machine_kind, elf_class, data)
            self.compiler_installs[str(comp)] = install
        # Common system libraries, plus InfiniBand userspace libraries
        # where the fabric exists.
        sysdir = "/usr/lib64" if elf_class is ElfClass.ELF64 else "/usr/lib"
        for product in _SYSTEM_PRODUCTS + self.spec.compat_products:
            product.install(fs, sysdir, self.libc,
                            machine_kind, elf_class, data)
        if self.spec.interconnect is Interconnect.INFINIBAND:
            for product in _IB_PRODUCTS:
                product.install(fs, sysdir, self.libc,
                                machine_kind, elf_class, data)
        # User-environment management tool.
        if self.spec.module_system == "modules":
            self.modules = EnvironmentModules(fs)
            self.modules.install()
        elif self.spec.module_system == "softenv":
            self.softenv = SoftEnv(fs)
            self.softenv.install()
        # MPI stacks.
        for request in self.spec.stacks:
            compiler = self.spec.compiler_for(request.compiler_family)
            comp_install = self.compiler_installs[str(compiler)]
            stack_spec = MpiStackSpec(
                release=request.release, compiler=compiler,
                interconnect=self.spec.interconnect)
            install = MpiStackInstall.conventional(
                stack_spec, comp_install,
                has_static_libs=request.static_libs)
            install.install(self.machine, self.libc,
                            machine_kind, elf_class, data)
            self.stacks.append(install)
            if self.modules is not None:
                self.modules.write_modulefile(
                    install.module_name, install.env_additions(),
                    description=str(stack_spec))
            elif self.softenv is not None:
                self.softenv.add_key(
                    install.module_name.replace("/", "-"),
                    install.env_additions())
        # Index the trusted directories, as distro post-install does.
        from repro.sysmodel.ldconfig import run_ldconfig
        run_ldconfig(self.machine)

    # -- identity ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    def toolbox(self):
        """A toolbox over this site's machine, honouring missing tools."""
        from repro.tools.toolbox import Toolbox
        available = Toolbox.ALL_TOOLS - frozenset(self.spec.missing_tools)
        return Toolbox(self.machine, available)

    def module_system(self):
        """The site's user-environment tool (never None; may be a no-op)."""
        if self.modules is not None:
            return self.modules
        if self.softenv is not None:
            return self.softenv
        return NoModuleSystem()

    # -- stacks ----------------------------------------------------------------------

    def stacks_of_kind(self, kind: MpiImplementationKind) -> list[MpiStackInstall]:
        """Installed stacks of one implementation type."""
        return [s for s in self.stacks if s.spec.kind is kind]

    def find_stack(self, slug: str) -> MpiStackInstall:
        """Look up an installed stack by its slug."""
        for stack in self.stacks:
            if stack.spec.slug == slug:
                return stack
        raise KeyError(f"no stack {slug!r} at {self.name}")

    def stack_by_prefix(self, prefix: str) -> MpiStackInstall:
        """Look up an installed stack by its installation prefix.

        This is how an ``mpiexec`` path maps back to the stack that owns
        it -- the only stack identity a user-level process actually has.
        """
        norm = prefix.rstrip("/")
        for stack in self.stacks:
            if stack.prefix.rstrip("/") == norm:
                return stack
        raise KeyError(f"no stack installed at {prefix!r} on {self.name}")

    def env_with_stack(self, stack: MpiStackInstall) -> Environment:
        """A login environment with *stack* selected (``module load``)."""
        env = self.machine.env.copy()
        tool = self.module_system()
        if isinstance(tool, EnvironmentModules):
            tool.load(stack.module_name, env)
        elif isinstance(tool, SoftEnv):
            tool.load(stack.module_name.replace("/", "-"), env)
        else:
            for var, value in stack.env_additions():
                env.prepend_path(var, value)
        return env

    # -- compilation -------------------------------------------------------------------

    def compile_mpi_program(self, name: str, language: Language,
                            stack: MpiStackInstall,
                            glibc_ceiling: tuple[int, ...] = (2, 2, 5),
                            payload_size: int = 40_000,
                            extra_deps: tuple = (),
                            static: bool = False) -> LinkedObject:
        """Compile an MPI program natively with *stack*'s wrapper.

        Raises FsError when the wrapper or underlying compiler driver is
        missing (FEAM then falls back to imported test binaries), and
        :class:`StaticLibrariesUnavailable` when ``static=True`` but the
        stack was installed without static archives (the paper's
        Section VI.C remark).
        """
        if static and not stack.has_static_libs:
            raise StaticLibrariesUnavailable(
                f"{stack.spec.slug} at {self.name} was installed without "
                f"static libraries")
        wrapper = {"fortran": "mpif90", "c++": "mpicxx"}.get(
            language.value, "mpicc")
        wrapper_path = stack.wrapper_path(wrapper)
        if not self.machine.fs.is_executable(wrapper_path):
            from repro.sysmodel.fs import FsError
            raise FsError(f"compiler wrapper missing: {wrapper_path}")
        driver = stack.compiler_install.driver_path(language)
        if not self.machine.fs.is_executable(driver):
            from repro.sysmodel.fs import FsError
            raise FsError(f"compiler driver missing: {driver}")
        machine_kind, elf_class, data = self._elf_target
        linked = link_program(LinkInput(
            name=name, language=language, compiler=stack.spec.compiler,
            libc=self.libc, glibc_ceiling=glibc_ceiling,
            mpi_deps=stack.spec.release.app_deps(language),
            extra_deps=extra_deps,
            machine=machine_kind, elf_class=elf_class, data=data,
            payload_size=payload_size, static=static,
            build_tag=f"{self.name}/{stack.spec.slug}"))
        GLOBAL_REGISTRY.register(linked.image, BuildProvenance(
            stack=stack.spec, build_site=self.name, binary_name=name))
        return linked

    def compile_with_wrapper(self, wrapper_path: str, name: str,
                             language: Language,
                             payload_size: int = 40_000) -> LinkedObject:
        """Compile through a wrapper identified only by its path.

        This is what FEAM does when it runs ``<prefix>/bin/mpicc
        hello.c``: it knows the wrapper's location (from discovery), not
        which installed stack object owns it.
        """
        prefix = posixpath.dirname(posixpath.dirname(wrapper_path))
        stack = self.stack_by_prefix(prefix)
        return self.compile_mpi_program(
            name, language, stack, payload_size=payload_size)

    # -- execution ----------------------------------------------------------------------

    def execute(self, name: str, binary: bytes, stack: MpiStackInstall,
                env: Optional[Environment] = None,
                provenance: Optional[BuildProvenance] = None,
                curse_probability: float = 0.0,
                attempt: int = 0, nprocs: int = 4,
                queue: str = "debug",
                launcher: str = "mpiexec") -> JobRecord:
        """Submit one execution of *binary* through the batch system.

        When *provenance* is omitted it is recovered from the provenance
        registry (the simulation's "bytes remember their build" channel).
        """
        effective_env = env if env is not None else self.env_with_stack(stack)
        if provenance is None:
            provenance = GLOBAL_REGISTRY.lookup(binary)
        request = RunRequest(
            binary=binary, stack=stack, env=effective_env,
            provenance=provenance, nprocs=nprocs,
            curse_probability=curse_probability, attempt=attempt,
            launcher=launcher)
        return self.scheduler.submit(
            name, lambda: self.simulator.run(request),
            queue=queue, nprocs=nprocs)

    def run_with_retries(self, name: str, binary: bytes,
                         stack: MpiStackInstall,
                         env: Optional[Environment] = None,
                         provenance: Optional[BuildProvenance] = None,
                         curse_probability: float = 0.0,
                         attempts: int = 5, nprocs: int = 4,
                         queue: str = "normal",
                         launcher: str = "mpiexec") -> ExecutionResult:
        """The paper's methodology: up to five spaced attempts.

        Returns the first success, or the last failure when every attempt
        fails.
        """
        last: Optional[ExecutionResult] = None
        for attempt in range(attempts):
            record = self.execute(
                name, binary, stack, env=env, provenance=provenance,
                curse_probability=curse_probability, attempt=attempt,
                nprocs=nprocs, queue=queue, launcher=launcher)
            last = record.result
            if record.result.ok:
                return record.result
        assert last is not None
        return last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.name!r}, stacks={len(self.stacks)})"
