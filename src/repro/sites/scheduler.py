"""Batch scheduler simulation.

The paper's sites run PBS, SGE or SLURM; FEAM requires the user to supply
a serial and a parallel submission script per site (Section V), runs its
phases through the batch system, and the evaluation measures the CPU hours
consumed ("both FEAM's source and target phases always took less than five
minutes to complete.  This makes FEAM ideal for submission via a debug
queue").

The :class:`Scheduler` keeps a simulated wall clock, models per-queue wait
times deterministically, renders flavour-correct submission script
templates, and accounts CPU hours per job.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional

from repro.sysmodel.errors import ExecutionResult
from repro.util.hashing import stable_uniform


class SchedulerFlavor(enum.Enum):
    """Batch systems found on the paper's sites."""

    PBS = "pbs"
    SGE = "sge"
    SLURM = "slurm"


@dataclasses.dataclass(frozen=True)
class Queue:
    """One batch queue."""

    name: str
    max_walltime_seconds: int
    #: Mean queue wait; actual waits draw deterministically around it.
    typical_wait_seconds: float

    @property
    def is_debug(self) -> bool:
        return self.name == "debug"


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """Accounting record of one submitted job."""

    job_id: int
    name: str
    queue: str
    nprocs: int
    wait_seconds: float
    run_seconds: float
    result: ExecutionResult

    @property
    def cpu_hours(self) -> float:
        """CPU hours charged (cores x wall time of the run)."""
        return self.nprocs * self.run_seconds / 3600.0


DEFAULT_QUEUES = (
    Queue("debug", max_walltime_seconds=1800, typical_wait_seconds=45.0),
    Queue("normal", max_walltime_seconds=86400, typical_wait_seconds=1800.0),
)


class Scheduler:
    """A site's batch system."""

    def __init__(self, flavor: SchedulerFlavor, site_name: str, seed: int,
                 queues: tuple[Queue, ...] = DEFAULT_QUEUES) -> None:
        self.flavor = flavor
        self.site_name = site_name
        self.seed = seed
        self.queues = {q.name: q for q in queues}
        self.clock_seconds = 0.0
        self.records: list[JobRecord] = []
        self._next_job_id = 1

    # -- submission scripts ------------------------------------------------------

    def serial_template(self) -> str:
        """The site's serial submission script (user-supplied FEAM input)."""
        if self.flavor is SchedulerFlavor.PBS:
            return ("#!/bin/sh\n#PBS -N {name}\n#PBS -q {queue}\n"
                    "#PBS -l walltime={walltime}\n{command}\n")
        if self.flavor is SchedulerFlavor.SGE:
            return ("#!/bin/sh\n#$ -N {name}\n#$ -q {queue}\n"
                    "#$ -l h_rt={walltime}\n{command}\n")
        return ("#!/bin/sh\n#SBATCH -J {name}\n#SBATCH -p {queue}\n"
                "#SBATCH -t {walltime}\n{command}\n")

    def parallel_template(self) -> str:
        """The site's parallel submission script."""
        if self.flavor is SchedulerFlavor.PBS:
            return ("#!/bin/sh\n#PBS -N {name}\n#PBS -q {queue}\n"
                    "#PBS -l nodes={nodes}:ppn={ppn}\n"
                    "{mpiexec} -n {nprocs} {command}\n")
        if self.flavor is SchedulerFlavor.SGE:
            return ("#!/bin/sh\n#$ -N {name}\n#$ -q {queue}\n"
                    "#$ -pe mpi {nprocs}\n{mpiexec} -n {nprocs} {command}\n")
        return ("#!/bin/sh\n#SBATCH -J {name}\n#SBATCH -p {queue}\n"
                "#SBATCH -n {nprocs}\n{mpiexec} -n {nprocs} {command}\n")

    # -- submission scripts as files -----------------------------------------------

    def parse_directives(self, script_text: str) -> dict:
        """Parse a submission script's directives (the inverse of the
        templates above).

        Understands the directive syntax of this scheduler's flavour and
        returns the fields FEAM needs: ``name``, ``queue``, ``nprocs``
        and the command line (the last non-directive, non-shebang line).
        """
        marker = {SchedulerFlavor.PBS: "#PBS",
                  SchedulerFlavor.SGE: "#$",
                  SchedulerFlavor.SLURM: "#SBATCH"}[self.flavor]
        fields: dict = {"name": "job", "queue": "debug", "nprocs": 1,
                        "command": ""}
        for line in script_text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#!"):
                continue
            if stripped.startswith(marker):
                parts = stripped[len(marker):].split()
                self._apply_directive(fields, parts)
            elif not stripped.startswith("#"):
                fields["command"] = stripped
        return fields

    def _apply_directive(self, fields: dict, parts: list[str]) -> None:
        if len(parts) < 2:
            return
        flag, value = parts[0], parts[1]
        if self.flavor is SchedulerFlavor.PBS:
            if flag == "-N":
                fields["name"] = value
            elif flag == "-q":
                fields["queue"] = value
            elif flag == "-l" and value.startswith("nodes="):
                spec = dict(part.split("=", 1) for part in
                            value.split(":") if "=" in part)
                fields["nprocs"] = (int(spec.get("nodes", 1))
                                    * int(spec.get("ppn", 1)))
        elif self.flavor is SchedulerFlavor.SGE:
            if flag == "-N":
                fields["name"] = value
            elif flag == "-q":
                fields["queue"] = value
            elif flag == "-pe" and len(parts) >= 3:
                fields["nprocs"] = int(parts[2])
        else:  # SLURM
            if flag == "-J":
                fields["name"] = value
            elif flag == "-p":
                fields["queue"] = value
            elif flag == "-n":
                fields["nprocs"] = int(value)

    def submit_script(self, script_text: str, run: Callable[[], ExecutionResult],
                      ) -> JobRecord:
        """Submit a rendered submission script (``qsub``/``sbatch``).

        The script's directives decide the queue, job name and size; the
        *run* callable performs the work the command line stands for.
        """
        fields = self.parse_directives(script_text)
        return self.submit(fields["name"], run, queue=fields["queue"],
                           nprocs=max(1, int(fields["nprocs"])))

    # -- execution ------------------------------------------------------------------

    def _wait_time(self, queue: Queue, job_id: int) -> float:
        """Deterministic queue wait around the queue's typical value."""
        jitter = stable_uniform(self.seed, "qwait", self.site_name,
                                queue.name, job_id)
        return queue.typical_wait_seconds * (0.5 + jitter)

    def submit(self, name: str, run: Callable[[], ExecutionResult],
               queue: str = "debug", nprocs: int = 1) -> JobRecord:
        """Submit a job; advances the simulated clock and accounts it.

        *run* performs the actual work and reports its outcome with an
        ``elapsed_seconds`` measurement; the scheduler adds queue wait.
        """
        q = self.queues.get(queue)
        if q is None:
            raise KeyError(f"no such queue at {self.site_name}: {queue}")
        job_id = self._next_job_id
        self._next_job_id += 1
        wait = self._wait_time(q, job_id)
        result = run()
        run_seconds = min(result.elapsed_seconds, q.max_walltime_seconds)
        self.clock_seconds += wait + run_seconds
        record = JobRecord(
            job_id=job_id, name=name, queue=queue, nprocs=nprocs,
            wait_seconds=wait, run_seconds=run_seconds, result=result)
        self.records.append(record)
        return record

    # -- accounting -----------------------------------------------------------------

    @property
    def total_cpu_hours(self) -> float:
        return sum(r.cpu_hours for r in self.records)

    def cpu_hours_for(self, name_prefix: str) -> float:
        """CPU hours charged to jobs whose name starts with *name_prefix*."""
        return sum(r.cpu_hours for r in self.records
                   if r.name.startswith(name_prefix))

    def has_debug_queue(self) -> bool:
        return any(q.is_debug for q in self.queues.values())
