"""Computing-site models.

A *site* is a machine plus the operational layers FEAM interacts with: a
user-environment management tool (Environment Modules or SoftEnv, paper
Section V.B), a batch scheduler with queues and CPU-hour accounting
(Section VI.C measures FEAM's cost through it), installed compilers, and
installed MPI stacks.

:mod:`repro.sites.catalog` reproduces the paper's Table II: the five
evaluation sites (Ranger, Forge, Blacklight, India, Fir) with their exact
operating systems, C-library and compiler versions, and MPI stacks.
"""

from repro.sites.modules import EnvironmentModules, ModuleSystem, NoModuleSystem
from repro.sites.softenv import SoftEnv
from repro.sites.scheduler import JobRecord, Queue, Scheduler, SchedulerFlavor
from repro.sites.site import Site, SiteSpec, StackRequest
from repro.sites.catalog import (
    PAPER_SITE_SPECS,
    build_paper_sites,
    site_spec,
)

__all__ = [
    "EnvironmentModules",
    "JobRecord",
    "ModuleSystem",
    "NoModuleSystem",
    "PAPER_SITE_SPECS",
    "Queue",
    "Scheduler",
    "SchedulerFlavor",
    "Site",
    "SiteSpec",
    "SoftEnv",
    "StackRequest",
    "build_paper_sites",
    "site_spec",
]
