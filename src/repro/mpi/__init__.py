"""MPI stack substrate.

MPI is an interface specification, not a link-level one (paper
Section III.B): each implementation produces differently named libraries
with different dependencies.  This package models the three open-source
implementations of the paper -- Open MPI, MPICH2 and MVAPICH2 -- at the
level that matters for migration:

* :mod:`repro.mpi.implementations` -- per-release library sonames, the
  dependencies injected into applications by the compiler wrappers, and
  the installable library products (Table I's identification scheme falls
  out of these).
* :mod:`repro.mpi.stack` -- an MPI *stack* = implementation + compiler +
  interconnect, and its installation layout at a site (lib/, bin/
  wrappers, module file).
* :mod:`repro.mpi.runtime` -- the simulated ``mpiexec``: ISA check, dynamic
  loading against the site's filesystem, ABI/floating-point compatibility
  between build and runtime stacks, and seeded system errors.
"""

from repro.mpi.implementations import (
    MpiImplementationKind,
    MpiRelease,
    mpich2,
    mvapich2,
    open_mpi,
)
from repro.mpi.stack import Interconnect, MpiStackInstall, MpiStackSpec
from repro.mpi.runtime import BuildProvenance, ExecutionSimulator, RunRequest

__all__ = [
    "BuildProvenance",
    "ExecutionSimulator",
    "Interconnect",
    "MpiImplementationKind",
    "MpiRelease",
    "MpiStackInstall",
    "MpiStackSpec",
    "RunRequest",
    "mpich2",
    "mvapich2",
    "open_mpi",
]
