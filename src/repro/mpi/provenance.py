"""Ground-truth provenance registry.

The execution simulator needs to know which stack a binary was built with
to model ABI/floating-point compatibility -- information that in reality
lives in symbol-level details our ELF model does not carry.  The registry
records it at compile time, keyed by the SHA-256 of the image, and the
site's launcher looks it up at run time.

FEAM never reads this registry: its predictions come exclusively from the
tools layer.  The registry is the simulation's stand-in for "the bytes
remember how they were built".
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.mpi.runtime import BuildProvenance


def _key(image: bytes) -> str:
    return hashlib.sha256(image).hexdigest()


class ProvenanceRegistry:
    """Image-hash -> build provenance map."""

    def __init__(self) -> None:
        self._by_hash: dict[str, BuildProvenance] = {}

    def register(self, image: bytes, provenance: BuildProvenance) -> None:
        self._by_hash[_key(image)] = provenance

    def lookup(self, image: bytes) -> Optional[BuildProvenance]:
        return self._by_hash.get(_key(image))

    def __len__(self) -> int:
        return len(self._by_hash)


#: Process-wide registry shared by all sites of a simulation run.
GLOBAL_REGISTRY = ProvenanceRegistry()
