"""MPI stacks and their installation at sites.

The paper defines an *MPI stack* as the combination of the MPI
implementation, associated compilers, and interconnection network
(Section I).  :class:`MpiStackSpec` captures that triple;
:class:`MpiStackInstall` lays a stack out in a site's filesystem, the way
site administrators install them:

* ``<prefix>/lib`` -- the implementation's shared libraries, built against
  the site's C library;
* ``<prefix>/bin`` -- ``mpicc``/``mpif90``/... compiler wrapper *scripts*
  (whose text reveals the underlying compiler, which is how FEAM's
  environment discovery identifies the stack's compiler) and the
  ``mpiexec``/``mpirun`` launchers;
* path naming of the form ``/opt/openmpi-1.4-intel`` -- the convention the
  paper's Section V.B mines for stack discovery when no module system is
  available.
"""

from __future__ import annotations

import dataclasses
import enum
import posixpath
from typing import Optional

from repro.elf.constants import ElfClass, ElfData, ElfMachine, ElfType
from repro.elf.writer import BinarySpec, write_elf
from repro.sysmodel.machine import Machine
from repro.toolchain.compilers import Compiler, Language
from repro.toolchain.installs import CompilerInstall
from repro.toolchain.libc import GlibcRelease, glibc_symbol
from repro.mpi.implementations import MpiImplementationKind, MpiRelease


class Interconnect(enum.Enum):
    """Interconnection network types of the paper's sites."""

    ETHERNET = "ethernet"
    INFINIBAND = "infiniband"
    NUMALINK = "numalink"  # Blacklight's SGI UV shared-memory fabric


@dataclasses.dataclass(frozen=True)
class MpiStackSpec:
    """Implementation + compiler + interconnect."""

    release: MpiRelease
    compiler: Compiler
    interconnect: Interconnect

    @property
    def kind(self) -> MpiImplementationKind:
        return self.release.kind

    @property
    def slug(self) -> str:
        """Conventional install/module name, e.g. ``openmpi-1.4-intel``."""
        return f"{self.release.slug}-{self.compiler.family.value}"

    @property
    def fingerprint(self) -> tuple[str, str, str, str]:
        """Key used for ABI-compatibility comparisons between stacks."""
        return (self.kind.value, self.release.version,
                self.compiler.family.value, self.compiler.version)

    def __str__(self) -> str:
        return (f"{self.release} ({self.compiler.family.value} "
                f"{self.compiler.version}, {self.interconnect.value})")


_WRAPPER_LANGS = {
    "mpicc": Language.C,
    "mpicxx": Language.CXX,
    "mpiCC": Language.CXX,
    "mpif77": Language.FORTRAN,
    "mpif90": Language.FORTRAN,
}


@dataclasses.dataclass(frozen=True)
class MpiStackInstall:
    """An MPI stack laid out at a site."""

    spec: MpiStackSpec
    compiler_install: CompilerInstall
    prefix: str
    #: Were static archives installed alongside the shared libraries?
    #: Most sites of the era did not (paper Section VI.C).
    has_static_libs: bool = False

    @property
    def bindir(self) -> str:
        return posixpath.join(self.prefix, "bin")

    @property
    def libdir(self) -> str:
        return posixpath.join(self.prefix, "lib")

    @property
    def module_name(self) -> str:
        """Environment-module name, e.g. ``openmpi/1.4-intel``."""
        return (f"{self.spec.release.kind.slug}/"
                f"{self.spec.release.version}-"
                f"{self.spec.compiler.family.value}")

    def wrapper_path(self, name: str = "mpicc") -> str:
        return posixpath.join(self.bindir, name)

    @property
    def mpiexec_path(self) -> str:
        return posixpath.join(self.bindir, "mpiexec")

    @property
    def launcher_names(self) -> tuple[str, ...]:
        """Launch commands this stack installs.

        MVAPICH2 additionally ships ``mpirun_rsh`` (its native launcher,
        which some sites document as the *only* supported one -- the
        reason FEAM's configuration file allows a per-MPI-type override
        of the default ``mpiexec``, Section V.C).
        """
        names = ("mpiexec", "mpirun")
        if self.spec.kind is MpiImplementationKind.MVAPICH2:
            names = names + ("mpirun_rsh",)
        return names

    # -- environment ------------------------------------------------------------

    def env_additions(self) -> list[tuple[str, str]]:
        """(variable, path) pairs a ``module load`` of this stack prepends.

        The compiler's library directory rides along (module systems
        express this as a dependency between the MPI and compiler
        modules), unless the compiler runtimes already live on the default
        loader path.
        """
        additions = [("PATH", self.bindir), ("LD_LIBRARY_PATH", self.libdir)]
        if not self.compiler_install.on_default_loader_path:
            additions.append(
                ("LD_LIBRARY_PATH", self.compiler_install.libdir))
            additions.append(("PATH", self.compiler_install.bindir))
        return additions

    # -- installation --------------------------------------------------------------

    def _wrapper_text(self, name: str) -> str:
        lang = _WRAPPER_LANGS.get(name, Language.C)
        driver = self.compiler_install.driver_path(lang)
        libs = " ".join(
            "-l" + dep.soname[len("lib"):].split(".so")[0]
            for dep in self.spec.release.app_deps(lang))
        return (
            "#!/bin/sh\n"
            f"# {self.spec.release} compiler wrapper\n"
            f"CC=\"{driver}\"\n"
            f"prefix=\"{self.prefix}\"\n"
            f"exec \"$CC\" -I\"$prefix/include\" -L\"$prefix/lib\" "
            f"{libs} \"$@\"\n"
        )

    def install(self, machine: Machine, libc: GlibcRelease,
                machine_kind: ElfMachine = ElfMachine.X86_64,
                elf_class: ElfClass = ElfClass.ELF64,
                data: ElfData = ElfData.LSB) -> None:
        """Write the stack's libraries, wrappers and launchers into *machine*."""
        fs = machine.fs
        for product in self.spec.release.products():
            product.install(fs, self.libdir, libc,
                            machine_kind, elf_class, data)
            if self.has_static_libs:
                # Static archives alongside: ar(1) magic plus the stem.
                stem = product.soname.split(".so")[0]
                fs.write(posixpath.join(self.libdir, stem + ".a"),
                         b"!<arch>\n" + stem.encode() + b"\n",
                         mode=0o644)
        for name in ("mpicc", "mpicxx", "mpif77", "mpif90"):
            fs.write_text(self.wrapper_path(name),
                          self._wrapper_text(name), mode=0o755)
        launcher = BinarySpec(
            machine=machine_kind, elf_class=elf_class, data=data,
            etype=ElfType.EXEC, needed=("libc.so.6",),
            version_requirements={"libc.so.6": (
                glibc_symbol(libc.highest_at_most((2, 3, 4))),)},
            comment=(f"{self.spec.release} launcher",),
            payload_size=60_000)
        image = write_elf(launcher)
        for name in self.launcher_names:
            fs.write(posixpath.join(self.bindir, name), image, mode=0o755)
        fs.makedirs(posixpath.join(self.prefix, "include"))
        fs.write_text(posixpath.join(self.prefix, "include", "mpi.h"),
                      f"/* {self.spec.release} */\n")

    @staticmethod
    def conventional(spec: MpiStackSpec,
                     compiler_install: CompilerInstall,
                     prefix: Optional[str] = None,
                     has_static_libs: bool = False) -> "MpiStackInstall":
        """An install at the conventional ``/opt/<impl>-<ver>-<comp>`` path."""
        return MpiStackInstall(
            spec=spec,
            compiler_install=compiler_install,
            prefix=prefix or f"/opt/{spec.slug}",
            has_static_libs=has_static_libs)
