"""MPI implementation releases and their link-level footprints.

The paper's Table I identifies implementations by the shared libraries
applications are linked against:

=============  ====================================================
MVAPICH2       libmpich/libmpichf90, libibverbs, libibumad
Open MPI       libnsl, libutil (alongside libmpi/libopen-rte/-pal)
MPICH2         libmpich/libmpichf90 and *not* the MVAPICH identifiers
=============  ====================================================

The modelled soname schemes follow the real releases closely enough to
reproduce the paper's migration behaviour: Open MPI 1.3 and 1.4 share
``libmpi.so.0`` (so migrations load but may hit ABI divergence, "executes
in some instances but not others"), while MVAPICH2 1.2 and the 1.7 series
changed the libmpich soname (so migrations fail with a *missing* library
that FEAM's resolution model can fix by copying).
"""

from __future__ import annotations

import dataclasses
import enum
import functools

from repro.toolchain.compilers import Language, RuntimeDep
from repro.toolchain.products import LibraryProduct


class MpiImplementationKind(enum.Enum):
    """The implementation *type*; compatibility requires equal types."""

    OPEN_MPI = "Open MPI"
    MPICH2 = "MPICH2"
    MVAPICH2 = "MVAPICH2"

    @property
    def slug(self) -> str:
        """Lower-case identifier used in paths and module names."""
        return {"Open MPI": "openmpi", "MPICH2": "mpich2",
                "MVAPICH2": "mvapich2"}[self.value]


@dataclasses.dataclass(frozen=True)
class MpiRelease:
    """One release of an MPI implementation (e.g. Open MPI 1.4)."""

    kind: MpiImplementationKind
    version: str

    def __str__(self) -> str:
        return f"{self.kind.value} {self.version}"

    @property
    def slug(self) -> str:
        return f"{self.kind.slug}-{self.version}"

    @property
    def version_tuple(self) -> tuple[int, ...]:
        # "1.7rc1" / "1.7a2" -> (1, 7); suffixes denote pre-releases.
        parts = []
        for piece in self.version.split("."):
            digits = ""
            for ch in piece:
                if ch.isdigit():
                    digits += ch
                else:
                    break
            if not digits:
                break
            parts.append(int(digits))
        return tuple(parts)

    # -- soname schemes -------------------------------------------------------

    def _mpich_soname(self, fortran: bool = False) -> str:
        """libmpich soname for MPICH-derived releases.

        MVAPICH2 1.2 used the old ``libmpich.so.1.0`` naming; the 1.7
        series and MPICH2 1.3/1.4 use ``libmpich.so.3``.
        """
        stem = "libmpichf90" if fortran else "libmpich"
        if self.kind is MpiImplementationKind.MVAPICH2 and \
                self.version_tuple < (1, 7):
            return f"{stem}.so.1.0"
        return f"{stem}.so.3"

    # -- application link footprint ---------------------------------------------

    def app_deps(self, language: Language) -> tuple[RuntimeDep, ...]:
        """Libraries the compiler wrapper links into an application."""
        if self.kind is MpiImplementationKind.OPEN_MPI:
            deps = [RuntimeDep("libmpi.so.0"),
                    RuntimeDep("libopen-rte.so.0"),
                    RuntimeDep("libopen-pal.so.0"),
                    RuntimeDep("libnsl.so.1"),
                    RuntimeDep("libutil.so.1"),
                    RuntimeDep("libdl.so.2")]
            if language is Language.FORTRAN:
                deps.insert(0, RuntimeDep("libmpi_f77.so.0"))
                deps.insert(1, RuntimeDep("libmpi_f90.so.0"))
            if language is Language.CXX:
                deps.insert(0, RuntimeDep("libmpi_cxx.so.0"))
            return tuple(deps)
        # MPICH-derived (MPICH2 and MVAPICH2).
        deps = [RuntimeDep(self._mpich_soname()),
                RuntimeDep("librt.so.1")]
        if self.version_tuple >= (1, 3):
            deps.extend([RuntimeDep("libopa.so.1"), RuntimeDep("libmpl.so.1")])
        if language is Language.FORTRAN:
            deps.insert(0, RuntimeDep(self._mpich_soname(fortran=True)))
        if self.kind is MpiImplementationKind.MVAPICH2:
            deps.extend([RuntimeDep("libibverbs.so.1"),
                         RuntimeDep("libibumad.so.3"),
                         RuntimeDep("librdmacm.so.1")])
        return tuple(deps)

    # -- installed products --------------------------------------------------------

    def products(self) -> tuple[LibraryProduct, ...]:
        """Shared libraries shipped in ``<prefix>/lib`` by this release.

        MPI implementations are usually compiled from source at the site,
        so their glibc ceiling is moderate (2.7): libraries built on a
        newer-glibc site produce copies that do not load on older-glibc
        sites -- one of the paper's two causes of unresolvable missing
        libraries (Section VI.C).
        """
        ceiling = (2, 7)
        banner = (f"{self.kind.value} {self.version}",)
        v = self.version
        if self.kind is MpiImplementationKind.OPEN_MPI:
            return (
                LibraryProduct("libopen-pal.so.0",
                               filename=f"libopen-pal.so.0.{v}",
                               size=680_000,
                               needed=("libnsl.so.1", "libutil.so.1",
                                       "libm.so.6", "libdl.so.2"),
                               glibc_ceiling=ceiling, comment=banner),
                LibraryProduct("libopen-rte.so.0",
                               filename=f"libopen-rte.so.0.{v}",
                               size=920_000,
                               needed=("libopen-pal.so.0", "libnsl.so.1",
                                       "libutil.so.1"),
                               glibc_ceiling=ceiling, comment=banner),
                LibraryProduct("libmpi.so.0",
                               filename=f"libmpi.so.0.{v}",
                               size=2_400_000,
                               exports=("MPI_Init", "MPI_Comm_size",
                                        "MPI_Comm_rank", "MPI_Send",
                                        "MPI_Recv", "MPI_Finalize"),
                               needed=("libopen-rte.so.0",
                                       "libopen-pal.so.0",
                                       "libnsl.so.1", "libutil.so.1",
                                       "libm.so.6"),
                               glibc_ceiling=ceiling, comment=banner),
                LibraryProduct("libmpi_f77.so.0",
                               filename=f"libmpi_f77.so.0.{v}",
                               size=260_000, needed=("libmpi.so.0",),
                               exports=("mpi_init_", "mpi_comm_rank_",
                                        "mpi_comm_size_", "mpi_finalize_"),
                               glibc_ceiling=ceiling, comment=banner),
                LibraryProduct("libmpi_f90.so.0",
                               filename=f"libmpi_f90.so.0.{v}",
                               size=90_000, needed=("libmpi_f77.so.0",
                                                    "libmpi.so.0"),
                               glibc_ceiling=ceiling, comment=banner),
                LibraryProduct("libmpi_cxx.so.0",
                               filename=f"libmpi_cxx.so.0.{v}",
                               size=180_000, needed=("libmpi.so.0",),
                               glibc_ceiling=ceiling, comment=banner),
            )
        # MPICH-derived.
        mpich = self._mpich_soname()
        mpichf90 = self._mpich_soname(fortran=True)
        extra_needed: tuple[str, ...] = ("librt.so.1", "libm.so.6")
        products = []
        if self.version_tuple >= (1, 3):
            products.append(LibraryProduct(
                "libmpl.so.1", filename=f"libmpl.so.1.0.{v[-1] if v else 0}",
                size=60_000, glibc_ceiling=ceiling, comment=banner))
            products.append(LibraryProduct(
                "libopa.so.1", size=40_000,
                glibc_ceiling=ceiling, comment=banner))
            extra_needed = extra_needed + ("libmpl.so.1", "libopa.so.1")
        if self.kind is MpiImplementationKind.MVAPICH2:
            extra_needed = extra_needed + (
                "libibverbs.so.1", "libibumad.so.3", "librdmacm.so.1")
        products.append(LibraryProduct(
            mpich, filename=f"{mpich}.0.1", size=3_100_000,
            needed=extra_needed, glibc_ceiling=ceiling, comment=banner,
            exports=("MPI_Init", "MPI_Comm_size", "MPI_Comm_rank",
                     "MPI_Send", "MPI_Recv", "MPI_Finalize")))
        products.append(LibraryProduct(
            mpichf90, filename=f"{mpichf90}.0.1", size=150_000,
            needed=(mpich,), glibc_ceiling=ceiling, comment=banner,
            exports=("mpi_init_", "mpi_comm_rank_", "mpi_comm_size_",
                     "mpi_finalize_")))
        return tuple(products)


@functools.lru_cache(maxsize=None)
def open_mpi(version: str) -> MpiRelease:
    """Open MPI release *version*."""
    return MpiRelease(MpiImplementationKind.OPEN_MPI, version)


@functools.lru_cache(maxsize=None)
def mpich2(version: str) -> MpiRelease:
    """MPICH2 release *version*."""
    return MpiRelease(MpiImplementationKind.MPICH2, version)


@functools.lru_cache(maxsize=None)
def mvapich2(version: str) -> MpiRelease:
    """MVAPICH2 release *version*."""
    return MpiRelease(MpiImplementationKind.MVAPICH2, version)
