"""Simulated ``mpiexec``: the ground-truth execution model.

The evaluation needs to know whether a migrated binary *actually* executes
at a target site.  :class:`ExecutionSimulator` reproduces the runtime
behaviour of the paper's Section VI.C, in the real system's order:

1. a misconfigured MPI stack fails every launch (the paper's "useable
   stack" observation -- advertised stacks that run no programs at all);
2. the kernel's ISA check and the dynamic loader run against the site's
   filesystem (missing shared libraries, unsatisfied ``GLIBC_x.y``
   versions);
3. when the binary's MPI/compiler runtime resolves from a *different*
   stack build than it was linked against (same soname, different release
   or compiler), a deterministic pair-level draw decides between success,
   an ABI failure and a floating-point exception -- modelling the paper's
   "executes on Open MPI 1.3 in some instances but not others";
4. seeded system errors: persistent per-(binary, site) "cursed" pairs
   (failed daemon spawning, communication time-outs -- the failures FEAM
   cannot predict) and transient per-attempt faults that retries absorb.

All randomness is derived from :func:`repro.util.stable_uniform`, so runs
are reproducible and a pair-level draw comes out identically for an
application and for the hello-world probe built with the same stack --
which is exactly why the paper's extended prediction catches ABI and
floating-point issues.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sysmodel.env import Environment
from repro.sysmodel.errors import ExecutionResult, FailureKind
from repro.sysmodel.machine import Machine
from repro.util.hashing import stable_uniform
from repro.mpi.stack import MpiStackInstall, MpiStackSpec


@dataclasses.dataclass(frozen=True)
class BuildProvenance:
    """Ground-truth build information for a binary (never visible to FEAM)."""

    stack: MpiStackSpec
    build_site: str
    binary_name: str
    suite: Optional[str] = None


@dataclasses.dataclass
class RunRequest:
    """One launch of a binary through a stack's ``mpiexec``."""

    binary: bytes
    stack: MpiStackInstall
    env: Environment
    provenance: Optional[BuildProvenance] = None
    nprocs: int = 4
    #: Probability that this (binary, site, stack) pair persistently fails
    #: with a system error (workload-dependent; hello-world probes use 0).
    curse_probability: float = 0.0
    attempt: int = 0
    #: Launch command name; overridable per MPI type via FEAM's
    #: configuration file (Section V.C).
    launcher: str = "mpiexec"


@dataclasses.dataclass(frozen=True)
class AbiPairRates:
    """Failure rates for one build-vs-runtime stack relationship."""

    abi: float
    floating_point: float

    @property
    def total(self) -> float:
        return self.abi + self.floating_point


def classify_pair(build: MpiStackSpec, runtime: MpiStackSpec) -> AbiPairRates:
    """ABI/FP failure rates for running a *build*-stack binary on *runtime*.

    Same release and compiler family: clean.  A pre-release/patch-level
    difference (1.7a vs 1.7a2) is mildly risky; a minor-version difference
    (1.3 vs 1.4) more so; crossing compiler families on top of that is the
    worst case.  Rates are pair-level: every binary of the pair shares the
    same deterministic draw.
    """
    same_version = build.release.version == runtime.release.version
    same_series = build.release.version_tuple == runtime.release.version_tuple
    same_compiler = (build.compiler.family is runtime.compiler.family)
    if same_version and same_compiler:
        return AbiPairRates(0.0, 0.0)
    if same_version:  # compiler family differs only
        return AbiPairRates(0.10, 0.05)
    if same_series:  # e.g. 1.7a vs 1.7rc1
        rates = AbiPairRates(0.08, 0.04)
    else:  # e.g. 1.3 vs 1.4
        rates = AbiPairRates(0.18, 0.08)
    if not same_compiler:
        rates = AbiPairRates(rates.abi + 0.08, rates.floating_point + 0.04)
    return rates


class ExecutionSimulator:
    """Ground-truth launcher for one site."""

    def __init__(self, machine: Machine, site_name: str, seed: int,
                 misconfigured_stacks: frozenset[str] = frozenset(),
                 transient_error_probability: float = 0.02,
                 abi_scale: float = 1.0) -> None:
        self.machine = machine
        self.site_name = site_name
        self.seed = seed
        self.misconfigured_stacks = misconfigured_stacks
        self.transient_error_probability = transient_error_probability
        #: Multiplier on every ABI/floating-point pair rate -- the
        #: sensitivity-analysis knob for the model's main free parameter.
        self.abi_scale = abi_scale

    # -- helpers -----------------------------------------------------------------

    def stack_is_misconfigured(self, stack: MpiStackInstall) -> bool:
        """Is this stack advertised but unable to launch anything?"""
        return stack.spec.slug in self.misconfigured_stacks

    @staticmethod
    def _is_mpi_soname(soname: str) -> bool:
        stem = soname.split(".so")[0]
        return stem.startswith(("libmpi", "libmpich", "libopen-"))

    def _mpi_resolved_from_stack(self, report, stack: MpiStackInstall) -> bool:
        """Did any MPI library resolve from the stack's own libdir?"""
        prefix = stack.libdir.rstrip("/") + "/"
        for entry in report.entries:
            if entry.path and entry.path.startswith(prefix):
                return True
        return False

    def _mpi_resolved_from_copies(self, report,
                                  stack: MpiStackInstall) -> bool:
        """Did the MPI libraries resolve from staged copies instead?

        Copies live outside both the stack prefix and the trusted system
        directories (FEAM stages them under the user's home).
        """
        prefix = stack.libdir.rstrip("/") + "/"
        for entry in report.entries:
            if (entry.path and self._is_mpi_soname(entry.soname)
                    and not entry.path.startswith(prefix)
                    and not entry.path.startswith(("/lib", "/usr/lib"))):
                return True
        return False

    # -- launch ---------------------------------------------------------------------

    def run(self, request: RunRequest) -> ExecutionResult:
        """Execute one launch attempt and report its outcome."""
        stack = request.stack
        launcher_path = stack.bindir.rstrip("/") + "/" + request.launcher
        if not self.machine.fs.is_executable(launcher_path):
            return ExecutionResult.fail(
                FailureKind.MPI_STACK_UNUSABLE,
                f"{request.launcher}: command not found in {stack.bindir}",
                elapsed_seconds=1.0)
        if self.stack_is_misconfigured(stack):
            return ExecutionResult.fail(
                FailureKind.MPI_STACK_UNUSABLE,
                f"mpiexec ({stack.spec.slug}): daemon failed to start: "
                f"stack is misconfigured",
                elapsed_seconds=5.0)

        failure, report = self.machine.check_loadable(
            request.binary, request.env)
        if failure is not None:
            return failure

        prov = request.provenance
        if (prov is not None and report is not None
                and prov.stack.fingerprint != stack.spec.fingerprint
                and self._mpi_resolved_from_stack(report, stack)):
            rates = classify_pair(prov.stack, stack.spec)
            if self.abi_scale != 1.0:
                rates = AbiPairRates(
                    min(1.0, rates.abi * self.abi_scale),
                    min(1.0, rates.floating_point * self.abi_scale))
            if rates.total > 0:
                draw = stable_uniform(
                    self.seed, "abi-pair",
                    *prov.stack.fingerprint, *stack.spec.fingerprint,
                    self.site_name)
                if draw < rates.abi:
                    return ExecutionResult.fail(
                        FailureKind.ABI_MISMATCH,
                        f"symbol lookup error: MPI ABI mismatch between "
                        f"{prov.stack.release} and {stack.spec.release}",
                        elapsed_seconds=2.0)
                if draw < rates.total:
                    return ExecutionResult.fail(
                        FailureKind.FLOATING_POINT,
                        "program received SIGFPE: floating-point exception "
                        "in mismatched runtime library",
                        elapsed_seconds=8.0)

        # Staged MPI library copies run the application's own MPI code
        # under the *target's* launcher daemons -- a protocol pairing that
        # fails for some release combinations (the paper's resolution
        # attempts that "failed due to system errors" and ABI issues).
        if (prov is not None and report is not None
                and prov.stack.release.version != stack.spec.release.version
                and self._mpi_resolved_from_copies(report, stack)):
            draw = stable_uniform(
                self.seed, "copy-launch",
                *prov.stack.fingerprint, *stack.spec.fingerprint,
                self.site_name)
            copy_abi = min(1.0, 0.12 * self.abi_scale)
            copy_fp = min(1.0, 0.05 * self.abi_scale)
            if draw < copy_abi:
                return ExecutionResult.fail(
                    FailureKind.ABI_MISMATCH,
                    f"copied {prov.stack.release} runtime is incompatible "
                    f"with the {stack.spec.release} launcher",
                    elapsed_seconds=4.0)
            if draw < copy_abi + copy_fp:
                return ExecutionResult.fail(
                    FailureKind.FLOATING_POINT,
                    "program received SIGFPE under copied MPI runtime",
                    elapsed_seconds=9.0)

        if prov is not None and request.curse_probability > 0:
            curse = stable_uniform(
                self.seed, "curse", prov.binary_name, prov.build_site,
                self.site_name, stack.spec.slug)
            if curse < request.curse_probability:
                return ExecutionResult.fail(
                    FailureKind.SYSTEM_ERROR,
                    "mpiexec: timed out waiting for daemons / "
                    "communication error",
                    elapsed_seconds=300.0)

        transient = stable_uniform(
            self.seed, "transient",
            prov.binary_name if prov else "<anon>",
            self.site_name, stack.spec.slug, request.attempt)
        if transient < self.transient_error_probability:
            return ExecutionResult.fail(
                FailureKind.SYSTEM_ERROR,
                "mpiexec: transient daemon spawn failure",
                elapsed_seconds=60.0)

        elapsed = 2.0 + len(request.binary) / 200_000.0
        return ExecutionResult.success(
            stdout=f"[{self.site_name}] {request.nprocs} ranks completed\n",
            elapsed_seconds=elapsed)
