"""FEAM reproduction: predicting execution readiness of MPI binaries.

A from-scratch reproduction of *"Predicting Execution Readiness of MPI
Binaries with FEAM, a Framework for Efficient Application Migration"*
(Sarnowska-Upton & Grimshaw, ICPP 2013), including every substrate the
evaluation needs:

* :mod:`repro.elf` -- ELF reader/writer (the binaries are real bytes);
* :mod:`repro.sysmodel` -- virtual Linux machines with a faithful dynamic
  loader;
* :mod:`repro.tools` -- objdump/readelf/ldd/uname/locate/find emulation;
* :mod:`repro.toolchain` -- GNU/Intel/PGI compilers and glibc releases;
* :mod:`repro.mpi` -- Open MPI / MPICH2 / MVAPICH2 stacks and a simulated
  ``mpiexec`` with the paper's failure taxonomy;
* :mod:`repro.sites` -- the five Table II evaluation sites;
* :mod:`repro.corpus` -- the NPB / SPEC MPI2007 test set (110 + 147
  binaries);
* :mod:`repro.core` -- **FEAM itself**: the BDC, EDC, TEC, prediction and
  resolution models, and the two phases;
* :mod:`repro.evaluation` -- the full Section VI evaluation and the
  regeneration of every table and figure.

Quick start::

    from repro.sites import build_paper_sites
    from repro.core import Feam
    from repro.toolchain.compilers import Language

    sites = build_paper_sites(cached=False)
    fir, ranger = sites[4], sites[0]

    stack = fir.find_stack("openmpi-1.4-intel")
    app = fir.compile_mpi_program("myapp", Language.FORTRAN, stack)
    fir.machine.fs.write("/home/user/myapp", app.image, mode=0o755)

    feam = Feam()
    bundle = feam.run_source_phase(
        fir, "/home/user/myapp", env=fir.env_with_stack(stack))
    ranger.machine.fs.write("/home/user/myapp", app.image, mode=0o755)
    report = feam.run_target_phase(
        ranger, binary_path="/home/user/myapp", bundle=bundle)
    print("ready:", report.ready)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
