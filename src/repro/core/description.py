"""The Binary Description Component (BDC).

Gathers the paper's Figure 3 information about an MPI application binary:

* ISA and file format of the binary;
* library name and version, if the binary is itself a shared library;
* required shared libraries, with copies and descriptions when run at a
  guaranteed execution environment;
* C library version requirements;
* MPI stack, operating system and C library version used to build it.

Information is gathered "in multiple ways ... in case some tools are not
present or functioning" (Section V): ``objdump -p`` is primary; ``ldd -v``
is both a fallback source of the dependency list and the locator of
library copies; ``locate``/``find``/a locally compiled hello-world binary
back up the search when ``ldd`` does not cooperate.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.sysmodel.library import parse_library_name
from repro.tools.toolbox import ObjdumpInfo, Toolbox, ToolUnavailable


class DescriptionError(RuntimeError):
    """The binary could not be described by any available method."""


def _glibc_key(name: str) -> tuple[int, ...]:
    return tuple(int(p) for p in name[len("GLIBC_"):].split("."))


def required_glibc_from_versions(references: tuple[tuple[str, str], ...],
                                 definitions: tuple[str, ...]) -> Optional[str]:
    """The newest GLIBC version among version references and definitions.

    This is the paper's *required C library version* computation
    (Section V.A): the newest version listed under "Version Definitions"
    and "Version References".  Returns e.g. ``"2.7"``.
    """
    candidates = [v for _file, v in references
                  if v.startswith("GLIBC_") and v != "GLIBC_PRIVATE"]
    candidates += [v for v in definitions
                   if v.startswith("GLIBC_") and v != "GLIBC_PRIVATE"]
    if not candidates:
        return None
    best = max(candidates, key=_glibc_key)
    return best[len("GLIBC_"):]


def identify_mpi_implementation(needed: tuple[str, ...]) -> Optional[str]:
    """Table I's identification scheme.

    MPI is not a link-level specification, so the implementation shows in
    the dependency list: ``libmpich``/``libmpichf90`` plus the InfiniBand
    userspace libraries means MVAPICH2; ``libmpich`` without them means
    MPICH2; Open MPI links ``libmpi`` (and characteristically ``libnsl`` +
    ``libutil``).
    """
    stems = set()
    for soname in needed:
        parsed = parse_library_name(soname)
        stems.add(parsed.stem if parsed else soname)
    if "libmpich" in stems or "libmpichf90" in stems:
        if "libibverbs" in stems or "libibumad" in stems:
            return "MVAPICH2"
        return "MPICH2"
    if "libmpi" in stems or "libmpi_f77" in stems:
        return "Open MPI"
    return None


def _build_hints(comment: tuple[str, ...]) -> tuple[Optional[str], Optional[str]]:
    """(compiler hint, libc hint) from the .comment banner strings."""
    compiler = None
    libc = None
    for line in comment:
        if line.startswith(("GCC:", "Intel", "PGI")) and compiler is None:
            compiler = line
        if "GNU C Library" in line and libc is None:
            libc = line
    return compiler, libc


@dataclasses.dataclass(frozen=True)
class LibraryRecord:
    """Description (and optionally a copy) of one required shared library.

    Each library a binary links against goes "through the same description
    process as an application binary" (Section V.A); the recursive fields
    here are what the resolution model's recursive prediction consumes.
    """

    soname: str
    located_path: Optional[str]
    file_format: Optional[str] = None
    isa_name: Optional[str] = None
    bits: Optional[int] = None
    embedded_soname: Optional[str] = None
    #: Version embedded in the soname (paper: "extract from it the
    #: embedded version information"), e.g. (1, 0) for libmpich.so.1.0.
    embedded_version: tuple[int, ...] = ()
    needed: tuple[str, ...] = ()
    version_references: tuple[tuple[str, str], ...] = ()
    version_definitions: tuple[str, ...] = ()
    required_glibc: Optional[str] = None
    comment: tuple[str, ...] = ()
    #: The gathered copy (source phase only).
    image: Optional[bytes] = None

    @property
    def located(self) -> bool:
        return self.located_path is not None

    @property
    def copied(self) -> bool:
        return self.image is not None

    @property
    def copy_size(self) -> int:
        return len(self.image) if self.image is not None else 0


@dataclasses.dataclass(frozen=True)
class BinaryDescription:
    """The Figure 3 description of an application binary."""

    path: str
    file_format: str
    isa_name: str
    bits: int
    is_dynamic: bool
    is_shared_library: bool
    soname: Optional[str]
    library_version: tuple[int, ...]
    needed: tuple[str, ...]
    version_references: tuple[tuple[str, str], ...]
    version_definitions: tuple[str, ...]
    required_glibc: Optional[str]
    comment: tuple[str, ...]
    mpi_implementation: Optional[str]
    build_compiler_hint: Optional[str]
    build_libc_hint: Optional[str]
    gathered_via: str  # "objdump" | "ldd"

    @property
    def required_glibc_tuple(self) -> tuple[int, ...]:
        if self.required_glibc is None:
            return ()
        return tuple(int(p) for p in self.required_glibc.split("."))


class BinaryDescriptionComponent:
    """The BDC, bound to one machine's toolbox."""

    def __init__(self, toolbox: Toolbox,
                 env: Optional[Environment] = None) -> None:
        self.toolbox = toolbox
        self.env = env if env is not None else toolbox.machine.env

    # -- describing ---------------------------------------------------------------

    def describe(self, path: str) -> BinaryDescription:
        """Produce the Figure 3 description of the binary at *path*."""
        try:
            return self._describe_via_objdump(path)
        except ToolUnavailable:
            return self._describe_via_ldd(path)

    def _describe_via_objdump(self, path: str) -> BinaryDescription:
        info: ObjdumpInfo = self.toolbox.objdump_p(path)
        comment: tuple[str, ...] = ()
        try:
            comment = self.toolbox.readelf_comment(path)
        except ToolUnavailable:
            pass
        soname = info.soname
        embedded = parse_library_name(soname) if soname else None
        compiler_hint, libc_hint = _build_hints(comment)
        return BinaryDescription(
            path=path,
            file_format=info.file_format,
            isa_name=info.machine,
            bits=info.bits,
            is_dynamic=info.is_dynamic,
            is_shared_library=soname is not None,
            soname=soname,
            library_version=embedded.version if embedded else (),
            needed=info.needed,
            version_references=info.version_references,
            version_definitions=info.version_definitions,
            required_glibc=required_glibc_from_versions(
                info.version_references, info.version_definitions),
            comment=comment,
            mpi_implementation=identify_mpi_implementation(info.needed),
            build_compiler_hint=compiler_hint,
            build_libc_hint=libc_hint,
            gathered_via="objdump",
        )

    def _describe_via_ldd(self, path: str) -> BinaryDescription:
        """Fallback description from ``ldd -v`` when objdump is absent.

        ldd reveals the dependency list and version requirements but not
        the file format; the ISA fields fall back to the machine's own
        (ldd only runs binaries for the host ISA).
        """
        result = self.toolbox.ldd(path, self.env)
        if not result.recognised:
            raise DescriptionError(
                f"{path}: no objdump and ldd does not recognise the binary")
        needed = tuple(e.soname for e in result.entries)
        # Only the binary's own version block -- the loaded libraries'
        # requirements are theirs, not the application's.
        references = result.versions_required_by(path)
        comment: tuple[str, ...] = ()
        try:
            comment = self.toolbox.readelf_comment(path)
        except ToolUnavailable:
            pass
        compiler_hint, libc_hint = _build_hints(comment)
        # ldd only runs binaries the host executes, so the binary's format
        # is the host's primary one -- expressed in the same (objdump)
        # vocabulary the rest of the model uses.
        machine = self.toolbox.machine
        primary = machine.isa_support[0]
        isa_name = primary.machine.display_name
        bits = primary.bits
        return BinaryDescription(
            path=path,
            file_format=f"elf{bits}-{isa_name}",
            isa_name=isa_name,
            bits=bits,
            is_dynamic=True,
            is_shared_library=False,
            soname=None,
            library_version=(),
            needed=needed,
            version_references=references,
            version_definitions=(),
            required_glibc=required_glibc_from_versions(references, ()),
            comment=comment,
            mpi_implementation=identify_mpi_implementation(needed),
            build_compiler_hint=compiler_hint,
            build_libc_hint=libc_hint,
            gathered_via="ldd",
        )

    # -- locating libraries ------------------------------------------------------------

    def locate_libraries(self, description: BinaryDescription,
                         hello_path: Optional[str] = None,
                         ) -> dict[str, Optional[str]]:
        """Locate each required shared library in the local filesystem.

        Section V.A's methods, in order: ``ldd`` of the binary itself;
        when it cannot provide locations, ``locate``/``find`` over common
        locations and LD_LIBRARY_PATH; and ``ldd`` of a locally compiled
        hello-world program for the commonly linked libraries.
        """
        locations: dict[str, Optional[str]] = {
            soname: None for soname in description.needed}
        try:
            result = self.toolbox.ldd(description.path, self.env)
        except (ToolUnavailable, FsError):
            result = None
        if result is not None and result.recognised:
            for entry in result.entries:
                if entry.soname in locations and entry.path:
                    locations[entry.soname] = entry.path
        unresolved = [s for s, p in locations.items() if p is None]
        for soname in unresolved:
            hits = self.toolbox.search_library(soname, self.env)
            if hits:
                locations[soname] = hits[0]
        if hello_path is not None and any(
                p is None for p in locations.values()):
            try:
                hello = self.toolbox.ldd(hello_path, self.env)
            except (ToolUnavailable, FsError):
                hello = None
            if hello is not None and hello.recognised:
                for entry in hello.entries:
                    if locations.get(entry.soname) is None and entry.path:
                        locations[entry.soname] = entry.path
        return locations

    # -- describing and copying libraries ----------------------------------------------

    def describe_library(self, soname: str, path: Optional[str],
                         copy: bool = False) -> LibraryRecord:
        """Describe one shared library (optionally gathering a copy)."""
        if path is None:
            return LibraryRecord(soname=soname, located_path=None)
        try:
            info = self.toolbox.objdump_p(path)
        except (ToolUnavailable, FsError):
            return LibraryRecord(soname=soname, located_path=path)
        comment: tuple[str, ...] = ()
        try:
            comment = self.toolbox.readelf_comment(path)
        except (ToolUnavailable, FsError):
            pass
        image: Optional[bytes] = None
        if copy:
            fs = self.toolbox.machine.fs
            try:
                from repro.util.intern import intern_bytes
                image = intern_bytes(fs.read(fs.realpath(path)))
            except FsError:
                image = None
        embedded = parse_library_name(info.soname) if info.soname else None
        return LibraryRecord(
            soname=soname,
            located_path=path,
            file_format=info.file_format,
            isa_name=info.machine,
            bits=info.bits,
            embedded_soname=info.soname,
            embedded_version=embedded.version if embedded else (),
            needed=info.needed,
            version_references=info.version_references,
            version_definitions=info.version_definitions,
            required_glibc=required_glibc_from_versions(
                info.version_references, info.version_definitions),
            comment=comment,
            image=image,
        )

    def gather_library_copies(self, description: BinaryDescription,
                              copy_excludes: tuple[str, ...] = ("libc.so.6",),
                              hello_path: Optional[str] = None,
                              ) -> list[LibraryRecord]:
        """Describe and copy every required library (source phase).

        Copies everything except the C library (Section IV; licensing is
        out of scope).  Recursively includes the dependencies of the
        located libraries so the resolution model can satisfy transitive
        requirements.
        """
        locations = self.locate_libraries(description, hello_path=hello_path)
        records: dict[str, LibraryRecord] = {}
        queue = list(description.needed)
        while queue:
            soname = queue.pop(0)
            if soname in records:
                continue
            path = locations.get(soname)
            if path is None:
                hits = self.toolbox.search_library(soname, self.env)
                path = hits[0] if hits else None
            copy = soname not in copy_excludes
            record = self.describe_library(soname, path, copy=copy)
            records[soname] = record
            queue.extend(dep for dep in record.needed
                         if dep not in records)
        return list(records.values())
