"""FEAM orchestration: the source and target phases.

* The **source phase** (optional, once per binary) runs the BDC and EDC at
  a guaranteed execution environment: it describes the binary, gathers
  copies and descriptions of its shared libraries, confirms the currently
  selected MPI stack matches the BDC's identification, and compiles MPI
  hello-world programs for later compatibility testing.  Its output is a
  :class:`~repro.core.bundle.SourceBundle`.

* The **target phase** (required, once per target site) runs the BDC (when
  the binary is present), the EDC and the TEC at the target and produces a
  :class:`~repro.core.evaluation.TargetReport`: the readiness prediction,
  the reasons, and -- when the source phase ran -- the resolution staging
  and an activation script.

Running both phases enables the resolution model and the extended
compatibility tests, and removes the need for the binary to be present at
the target (Section V).
"""

from __future__ import annotations

import posixpath
from typing import Optional

from repro import obs
from repro.core.bundle import HelloPrograms, SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import (
    BinaryDescription,
    BinaryDescriptionComponent,
)
from repro.core.discovery import EnvironmentDiscoveryComponent
from repro.core.evaluation import TargetEvaluationComponent, TargetReport
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.toolchain.compilers import Language


class Feam:
    """The framework entry point."""

    def __init__(self, config: Optional[FeamConfig] = None,
                 engine: Optional["EvaluationEngine"] = None) -> None:
        self.config = config or FeamConfig()
        if engine is None:
            from repro.core.engine import EvaluationEngine
            engine = EvaluationEngine(self.config)
        #: The batch evaluation engine: caches TECs (so environment
        #: discovery runs once per site), content-addressed descriptions,
        #: and whole evaluation cells.
        self.engine = engine

    # -- source phase -----------------------------------------------------------

    def run_source_phase(self, site, binary_path: str,
                         env: Optional[Environment] = None,
                         write_archive: bool = False) -> SourceBundle:
        """Run the optional source phase at a guaranteed environment.

        *env* is the environment in which the binary runs successfully
        (with its MPI stack selected); the default is the site login
        environment.  With ``write_archive=True`` the bundle is also
        serialized to ``<output_root>/bundle-<name>.tar.gz`` in the site's
        filesystem -- the artifact the user copies to each target site.
        """
        toolbox = site.toolbox()
        effective_env = env if env is not None else site.machine.env
        with obs.span("feam.source_phase", site=site.name,
                      binary=binary_path) as sp:
            bdc = BinaryDescriptionComponent(toolbox, effective_env)
            with obs.span("bdc.describe", binary=binary_path):
                description = bdc.describe(binary_path)
            with obs.span("bdc.gather_copies") as gather_span:
                libraries = bdc.gather_library_copies(
                    description, copy_excludes=self.config.copy_excludes)
                gather_span.set_attrs(
                    libraries=len(libraries),
                    copied=sum(1 for r in libraries if r.copied))
            edc = EnvironmentDiscoveryComponent(toolbox, effective_env)
            guaranteed_env = edc.discover()
            hello = self._compile_hellos(site, description, effective_env)
            sp.set_attrs(libraries=len(libraries),
                         hello=(sorted(hello.images) if hello else []))
        bundle = SourceBundle(
            description=description,
            libraries=tuple(libraries),
            hello=hello,
            guaranteed_environment=guaranteed_env,
            created_at=site.name,
        )
        from repro.core.report import render_source_summary
        summary_path = posixpath.join(
            self.config.output_root,
            f"source-{posixpath.basename(binary_path)}.txt")
        site.machine.fs.write_text(summary_path,
                                   render_source_summary(bundle))
        if write_archive:
            from repro.core.bundlefile import pack_bundle
            archive_path = posixpath.join(
                self.config.output_root,
                f"bundle-{posixpath.basename(binary_path)}.tar.gz")
            site.machine.fs.write(archive_path, pack_bundle(bundle))
        return bundle

    def _compile_hellos(self, site, description: BinaryDescription,
                        env: Environment) -> Optional[HelloPrograms]:
        """Compile hello-world programs with the currently selected stack.

        The wrapper is taken from PATH (the stack the environment has
        loaded) -- FEAM confirms it matches the BDC's identification of the
        binary's MPI implementation.
        """
        wrapper = self._wrapper_on_path(site, env, "mpicc")
        if wrapper is None:
            return None
        images: dict[str, bytes] = {}
        label = posixpath.basename(posixpath.dirname(
            posixpath.dirname(wrapper)))
        for language, name in ((Language.C, "c"),
                               (Language.FORTRAN, "fortran")):
            lang_wrapper = wrapper if language is Language.C else \
                posixpath.join(posixpath.dirname(wrapper), "mpif90")
            if not site.machine.fs.is_file(lang_wrapper):
                continue
            try:
                linked = site.compile_with_wrapper(
                    lang_wrapper, f"feam-hello-{name}", language)
            except (FsError, KeyError):
                continue
            images[name] = linked.image
        if not images:
            return None
        return HelloPrograms(images=images, stack_label=label,
                             compiled_at=site.name)

    @staticmethod
    def _wrapper_on_path(site, env: Environment,
                         name: str) -> Optional[str]:
        for directory in env.path:
            candidate = posixpath.join(directory, name)
            if site.machine.fs.is_file(candidate):
                return candidate
        return None

    # -- target phase --------------------------------------------------------------

    def _tec_for(self, site) -> TargetEvaluationComponent:
        return self.engine.tec_for(site)

    def run_target_phase(self, site,
                         binary_path: Optional[str] = None,
                         bundle: Optional[SourceBundle] = None,
                         bundle_path: Optional[str] = None,
                         staging_tag: Optional[str] = None) -> TargetReport:
        """Run the required target phase at *site*.

        Either the binary must be present at the target (*binary_path*) or
        a source-phase bundle must be supplied (or both -- which enables
        every method the paper describes).  The bundle may be given as an
        object (*bundle*) or as the path of a ``bundle-*.tar.gz`` archive
        the user copied into the target site (*bundle_path*).

        Evaluation goes through the engine: the site's discovery, the
        binary's (content-addressed) description and the full cell are
        all memoised, so repeating a target phase is near-free.
        """
        if bundle is None and bundle_path is not None:
            from repro.core.bundlefile import unpack_bundle
            bundle = unpack_bundle(site.machine.fs.read(bundle_path))
        if binary_path is None and bundle is None:
            raise ValueError(
                "target phase needs a binary at the site or a source bundle")
        tag = staging_tag or posixpath.basename(
            binary_path or bundle.description.path).replace("/", "-")
        return self.engine.evaluate_cell(
            site, binary_path=binary_path, bundle=bundle, staging_tag=tag)

    def evaluate_matrix(self, binaries, sites, bundles=None):
        """Batch-evaluate binaries x sites through the engine."""
        return self.engine.evaluate_matrix(binaries, sites, bundles=bundles)
