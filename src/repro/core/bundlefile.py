"""Source-bundle serialization.

"The output from a source phase is bundled for the user and must be
copied to each target site if it is to be used in a target phase"
(Section V).  This module makes that concrete: a bundle serializes to a
single gzipped POSIX tar archive containing

* ``MANIFEST.json`` -- the binary description, per-library records,
  guaranteed-environment description and metadata;
* ``libs/<soname>`` -- the gathered library copies (genuine ELF bytes);
* ``hello/<language>`` -- the compiled hello-world probes.

The archive round-trips losslessly (:func:`pack_bundle` /
:func:`unpack_bundle`), can be written into a site's virtual filesystem
for the user to ``scp`` onward, and is introspectable with any real tar
tool.
"""

from __future__ import annotations

import dataclasses
import io
import json
import tarfile
from typing import Optional

from repro.core.bundle import HelloPrograms, SourceBundle
from repro.core.description import BinaryDescription, LibraryRecord
from repro.core.discovery import DiscoveredStack, EnvironmentDescription

FORMAT_VERSION = 1


class BundleFormatError(ValueError):
    """The archive is not a valid FEAM bundle."""


# -- JSON codecs for the dataclass tree ---------------------------------------

def _description_to_json(d: BinaryDescription) -> dict:
    return {
        "path": d.path,
        "file_format": d.file_format,
        "isa_name": d.isa_name,
        "bits": d.bits,
        "is_dynamic": d.is_dynamic,
        "is_shared_library": d.is_shared_library,
        "soname": d.soname,
        "library_version": list(d.library_version),
        "needed": list(d.needed),
        "version_references": [list(ref) for ref in d.version_references],
        "version_definitions": list(d.version_definitions),
        "required_glibc": d.required_glibc,
        "comment": list(d.comment),
        "mpi_implementation": d.mpi_implementation,
        "build_compiler_hint": d.build_compiler_hint,
        "build_libc_hint": d.build_libc_hint,
        "gathered_via": d.gathered_via,
    }


def _description_from_json(data: dict) -> BinaryDescription:
    return BinaryDescription(
        path=data["path"],
        file_format=data["file_format"],
        isa_name=data["isa_name"],
        bits=data["bits"],
        is_dynamic=data["is_dynamic"],
        is_shared_library=data["is_shared_library"],
        soname=data["soname"],
        library_version=tuple(data["library_version"]),
        needed=tuple(data["needed"]),
        version_references=tuple(
            (ref[0], ref[1]) for ref in data["version_references"]),
        version_definitions=tuple(data["version_definitions"]),
        required_glibc=data["required_glibc"],
        comment=tuple(data["comment"]),
        mpi_implementation=data["mpi_implementation"],
        build_compiler_hint=data["build_compiler_hint"],
        build_libc_hint=data["build_libc_hint"],
        gathered_via=data["gathered_via"],
    )


def _record_to_json(r: LibraryRecord) -> dict:
    return {
        "soname": r.soname,
        "located_path": r.located_path,
        "file_format": r.file_format,
        "isa_name": r.isa_name,
        "bits": r.bits,
        "embedded_soname": r.embedded_soname,
        "embedded_version": list(r.embedded_version),
        "needed": list(r.needed),
        "version_references": [list(ref) for ref in r.version_references],
        "version_definitions": list(r.version_definitions),
        "required_glibc": r.required_glibc,
        "comment": list(r.comment),
        "copied": r.copied,
    }


def _record_from_json(data: dict, image: Optional[bytes]) -> LibraryRecord:
    return LibraryRecord(
        soname=data["soname"],
        located_path=data["located_path"],
        file_format=data["file_format"],
        isa_name=data["isa_name"],
        bits=data["bits"],
        embedded_soname=data["embedded_soname"],
        embedded_version=tuple(data["embedded_version"]),
        needed=tuple(data["needed"]),
        version_references=tuple(
            (ref[0], ref[1]) for ref in data["version_references"]),
        version_definitions=tuple(data["version_definitions"]),
        required_glibc=data["required_glibc"],
        comment=tuple(data["comment"]),
        image=image,
    )


def _stack_to_json(s: DiscoveredStack) -> dict:
    return {
        "label": s.label, "kind": s.kind, "version": s.version,
        "compiler_family": s.compiler_family,
        "compiler_version": s.compiler_version,
        "prefix": s.prefix, "via": s.via, "module_name": s.module_name,
    }


def _stack_from_json(data: dict) -> DiscoveredStack:
    return DiscoveredStack(**data)


def _environment_to_json(e: EnvironmentDescription) -> dict:
    return {
        "hostname": e.hostname, "isa": e.isa, "os_type": e.os_type,
        "os_version": e.os_version, "distro": e.distro,
        "libc_version": e.libc_version, "libc_path": e.libc_path,
        "libc_via": e.libc_via,
        "stacks": [_stack_to_json(s) for s in e.stacks],
        "env_tool": e.env_tool,
        "loaded_stacks": list(e.loaded_stacks),
    }


def _environment_from_json(data: dict) -> EnvironmentDescription:
    return EnvironmentDescription(
        hostname=data["hostname"], isa=data["isa"],
        os_type=data["os_type"], os_version=data["os_version"],
        distro=data["distro"], libc_version=data["libc_version"],
        libc_path=data["libc_path"], libc_via=data["libc_via"],
        stacks=tuple(_stack_from_json(s) for s in data["stacks"]),
        env_tool=data["env_tool"],
        loaded_stacks=tuple(data["loaded_stacks"]),
    )


# -- pack / unpack --------------------------------------------------------------

def pack_bundle(bundle: SourceBundle) -> bytes:
    """Serialize *bundle* to a gzipped tar archive."""
    manifest = {
        "format_version": FORMAT_VERSION,
        "created_at": bundle.created_at,
        "description": _description_to_json(bundle.description),
        "libraries": [_record_to_json(r) for r in bundle.libraries],
        "guaranteed_environment": _environment_to_json(
            bundle.guaranteed_environment),
        "hello": ({"stack_label": bundle.hello.stack_label,
                   "compiled_at": bundle.hello.compiled_at,
                   "languages": sorted(bundle.hello.images)}
                  if bundle.hello is not None else None),
    }
    import gzip

    buffer = io.BytesIO()
    # mtime=0 in the gzip header keeps archives byte-deterministic.
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as gz:
        with tarfile.open(fileobj=gz, mode="w") as tar:
            def add(name: str, data: bytes) -> None:
                info = tarfile.TarInfo(name)
                info.size = len(data)
                info.mtime = 0  # deterministic archives
                tar.addfile(info, io.BytesIO(data))

            add("MANIFEST.json",
                json.dumps(manifest, indent=2, sort_keys=True).encode())
            for record in bundle.libraries:
                if record.image is not None:
                    add(f"libs/{record.soname}", record.image)
            if bundle.hello is not None:
                for language, image in sorted(bundle.hello.images.items()):
                    add(f"hello/{language}", image)
    return buffer.getvalue()


def unpack_bundle(data: bytes) -> SourceBundle:
    """Deserialize an archive produced by :func:`pack_bundle`."""
    try:
        buffer = io.BytesIO(data)
        with tarfile.open(fileobj=buffer, mode="r:gz") as tar:
            members = {m.name: tar.extractfile(m).read()
                       for m in tar.getmembers() if m.isfile()}
    except (tarfile.TarError, OSError) as exc:
        raise BundleFormatError(f"not a FEAM bundle archive: {exc}") from exc
    if "MANIFEST.json" not in members:
        raise BundleFormatError("archive has no MANIFEST.json")
    try:
        manifest = json.loads(members["MANIFEST.json"])
    except json.JSONDecodeError as exc:
        raise BundleFormatError(f"corrupt manifest: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise BundleFormatError(
            f"unsupported bundle format version: {version!r}")

    libraries = []
    for record_json in manifest["libraries"]:
        image = None
        if record_json.get("copied"):
            image = members.get(f"libs/{record_json['soname']}")
            if image is None:
                raise BundleFormatError(
                    f"manifest lists a copy of {record_json['soname']} "
                    f"but the archive member is missing")
        libraries.append(_record_from_json(record_json, image))

    hello = None
    hello_json = manifest.get("hello")
    if hello_json is not None:
        images = {}
        for language in hello_json["languages"]:
            image = members.get(f"hello/{language}")
            if image is None:
                raise BundleFormatError(
                    f"manifest lists a {language} hello probe but the "
                    f"archive member is missing")
            images[language] = image
        hello = HelloPrograms(
            images=images,
            stack_label=hello_json["stack_label"],
            compiled_at=hello_json["compiled_at"])

    return SourceBundle(
        description=_description_from_json(manifest["description"]),
        libraries=tuple(libraries),
        hello=hello,
        guaranteed_environment=_environment_from_json(
            manifest["guaranteed_environment"]),
        created_at=manifest["created_at"],
    )
