"""Multi-site readiness surveys.

The paper's use case in one call: a scientist with a binary at a
guaranteed execution environment asks which of many sites can run it.
:func:`survey_sites` runs the source phase once and a target phase per
site, returning one :class:`SiteVerdict` per target -- the programmatic
version of ``examples/survey_sites.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core.bundle import SourceBundle
from repro.core.feam import Feam
from repro.core.evaluation import TargetReport
from repro.sysmodel.env import Environment


@dataclasses.dataclass(frozen=True)
class SiteVerdict:
    """FEAM's verdict for one target site."""

    site_name: str
    basic: Optional[TargetReport]
    extended: TargetReport

    @property
    def ready(self) -> bool:
        return self.extended.ready

    @property
    def reasons(self) -> tuple[str, ...]:
        return self.extended.prediction.reasons

    def summary_line(self) -> str:
        basic_word = ("ready" if self.basic and self.basic.ready else
                      "no" if self.basic else "--")
        extended_word = "ready" if self.extended.ready else "no"
        note = "; ".join(self.reasons) or "ready"
        return (f"{self.site_name:<12}{basic_word:>8}{extended_word:>10}"
                f"  {note}")


@dataclasses.dataclass(frozen=True)
class SurveyResult:
    """The full survey: the bundle plus one verdict per target."""

    bundle: SourceBundle
    verdicts: tuple[SiteVerdict, ...]

    @property
    def ready_sites(self) -> tuple[str, ...]:
        return tuple(v.site_name for v in self.verdicts if v.ready)

    def render(self) -> str:
        header = f"{'site':<12}{'basic':>8}{'extended':>10}  notes"
        lines = [header, "-" * len(header)]
        lines += [v.summary_line() for v in self.verdicts]
        return "\n".join(lines) + "\n"


def survey_sites(source_site, binary_path: str, targets: Sequence,
                 env: Optional[Environment] = None,
                 feam: Optional[Feam] = None,
                 run_basic: bool = True) -> SurveyResult:
    """Survey *targets* for the binary at *source_site*.

    The binary is copied to each target (so the basic prediction and
    ldd-based checks can run); the source-phase bundle enables the
    extended prediction and resolution everywhere.
    """
    feam = feam or Feam()
    bundle = feam.run_source_phase(source_site, binary_path, env=env)
    image = source_site.machine.fs.read(binary_path)
    name = binary_path.rsplit("/", 1)[-1]
    verdicts = []
    for target in targets:
        if target.name == source_site.name:
            continue
        migrated = f"/home/user/survey/{name}"
        target.machine.fs.write(migrated, image, mode=0o755)
        basic = None
        if run_basic:
            basic = feam.run_target_phase(
                target, binary_path=migrated,
                staging_tag=f"survey-{name}-basic")
        extended = feam.run_target_phase(
            target, binary_path=migrated, bundle=bundle,
            staging_tag=f"survey-{name}-ext")
        verdicts.append(SiteVerdict(
            site_name=target.name, basic=basic, extended=extended))
    return SurveyResult(bundle=bundle, verdicts=tuple(verdicts))
