"""The resolution model (paper Section IV).

When required shared libraries are missing at a target site, FEAM
determines whether the copies gathered at the guaranteed execution
environment can stand in.  "Our prediction methods are applied recursively
to determine if a shared library copy is able to execute at a target
site": a copy is usable when

* it was compiled for an ISA the target executes,
* its own required C library version is satisfied by the target's C
  library (copies of the C library itself are never made), and
* each of its own required shared libraries is either present at the
  target or recursively resolvable from the bundle.

Usable copies are staged into a per-binary directory at the target and
made reachable at runtime through the dynamic loader's environment (the
generated activation script; Section V.C).
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional

from repro import obs
from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import LibraryRecord
from repro.core.discovery import EnvironmentDescription
from repro.sysmodel import faults
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.tools.toolbox import Toolbox


@dataclasses.dataclass(frozen=True)
class CopyDecision:
    """Whether one library copy can be used at the target."""

    soname: str
    usable: bool
    reason: str
    record: Optional[LibraryRecord] = None
    staged_path: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ResolutionPlan:
    """The staging plan for one binary at one target site."""

    decisions: tuple[CopyDecision, ...]
    staging_dir: str
    resolved_all: bool
    #: Environment additions ((variable, path) pairs) to activate staging.
    env_additions: tuple[tuple[str, str], ...] = ()

    @property
    def staged(self) -> tuple[CopyDecision, ...]:
        return tuple(d for d in self.decisions if d.usable)

    @property
    def unresolved(self) -> tuple[CopyDecision, ...]:
        return tuple(d for d in self.decisions if not d.usable)

    @property
    def staged_bytes(self) -> int:
        return sum(d.record.copy_size for d in self.staged
                   if d.record is not None)

    def activation_script(self) -> str:
        """The shell script FEAM hands the user (Section V.C)."""
        lines = ["#!/bin/sh",
                 "# FEAM site configuration: library copies staged at",
                 f"#   {self.staging_dir}"]
        for var, path in self.env_additions:
            lines.append(f'export {var}="{path}:${{{var}}}"')
        for decision in self.unresolved:
            lines.append(f"# UNRESOLVED: {decision.soname}: {decision.reason}")
        return "\n".join(lines) + "\n"


def _version_tuple(version: Optional[str]) -> tuple[int, ...]:
    if not version:
        return ()
    return tuple(int(p) for p in version.split("."))


class ResolutionModel:
    """Recursive copy-usability analysis + staging for one target site."""

    def __init__(self, toolbox: Toolbox, environment: EnvironmentDescription,
                 config: Optional[FeamConfig] = None) -> None:
        self.toolbox = toolbox
        self.environment = environment
        self.config = config or FeamConfig()

    # -- usability ---------------------------------------------------------------

    def copy_usable(self, record: LibraryRecord, bundle: SourceBundle,
                    env: Environment,
                    _depth: int = 0,
                    _visiting: Optional[frozenset[str]] = None,
                    ) -> CopyDecision:
        """Recursively decide whether *record*'s copy runs at the target."""
        visiting = _visiting or frozenset()
        if record.soname in visiting:
            # Dependency cycle: treat the in-progress ancestor as satisfied.
            return CopyDecision(record.soname, True, "dependency cycle",
                                record=record)
        if _depth > self.config.max_resolution_depth:
            return CopyDecision(
                record.soname, False,
                f"resolution depth exceeds {self.config.max_resolution_depth}",
                record=record)
        if not record.copied:
            return CopyDecision(
                record.soname, False,
                "no copy was gathered at the guaranteed environment",
                record=record)
        # ISA: the copy must execute at the target.
        if record.isa_name is not None and not self._isa_ok(record):
            return CopyDecision(
                record.soname, False,
                f"copy is {record.isa_name}/{record.bits}-bit; target is "
                f"{self.environment.isa}", record=record)
        # C library: the copy's own requirement must be satisfied.
        required = _version_tuple(record.required_glibc)
        available = self.environment.libc_version_tuple
        if required and available and required > available:
            return CopyDecision(
                record.soname, False,
                f"copy requires GLIBC_{record.required_glibc}; target has "
                f"{self.environment.libc_version}", record=record)
        # Recursive shared-library requirements of the copy.
        visiting = visiting | {record.soname}
        for dep in record.needed:
            if dep in self.config.copy_excludes:
                continue  # satisfied by the target's own C library
            if self._present_at_target(dep, env):
                continue
            dep_record = bundle.library(dep)
            if dep_record is None:
                return CopyDecision(
                    record.soname, False,
                    f"dependency {dep} is missing at the target and absent "
                    f"from the bundle", record=record)
            sub = self.copy_usable(dep_record, bundle, env,
                                   _depth=_depth + 1, _visiting=visiting)
            if not sub.usable:
                return CopyDecision(
                    record.soname, False,
                    f"dependency {dep} unusable: {sub.reason}",
                    record=record)
        return CopyDecision(record.soname, True, "copy is usable",
                            record=record)

    def _isa_ok(self, record: LibraryRecord) -> bool:
        target = self.environment.isa
        if record.isa_name in (target, None):
            return True
        # 64-bit x86 executes 32-bit x86 libraries only for 32-bit
        # binaries; for staging purposes require an exact match except
        # for the x86-64 alias spellings.
        aliases = {"x86_64": {"x86-64", "x86_64"},
                   "i686": {"i386", "i686"}}
        return record.isa_name in aliases.get(target, {target})

    def _present_at_target(self, soname: str, env: Environment) -> bool:
        """Presence means *loader-visible* presence.

        A library sitting in an unloaded ``/opt`` prefix does not satisfy
        a staged copy's dependency at run time.
        """
        return self.toolbox.loader_visible_library(soname, env) is not None

    # -- staging -----------------------------------------------------------------------

    def resolve(self, needed: list[str], bundle: SourceBundle,
                env: Environment, staging_dir: str) -> ResolutionPlan:
        """Decide and stage copies for every soname in *needed*.

        Stages the transitive closure: a usable copy's bundle-satisfied
        dependencies are staged with it.  Returns the plan; the
        environment additions make the staging directory visible to the
        dynamic loader.
        """
        decisions: list[CopyDecision] = []
        to_stage: dict[str, LibraryRecord] = {}
        fs = self.toolbox.machine.fs
        with obs.span("resolution.resolve", needed=len(needed),
                      staging_dir=staging_dir) as sp:
            for soname in needed:
                with obs.span("resolution.copy", soname=soname) as copy_span:
                    record = bundle.library(soname)
                    if record is None:
                        decision = CopyDecision(
                            soname, False,
                            "not present in the source-phase bundle")
                    else:
                        decision = self.copy_usable(record, bundle, env)
                    copy_span.set_attrs(usable=decision.usable,
                                        reason=decision.reason)
                decisions.append(decision)
                obs.counter("resolution.copies."
                            + ("usable" if decision.usable
                               else "unusable")).inc()
                if decision.usable and record is not None:
                    self._collect_closure(record, bundle, env, to_stage)
            staged_paths: dict[str, str] = {}
            hostname = self.toolbox.machine.hostname
            try:
                for soname, record in to_stage.items():
                    assert record.image is not None
                    path = posixpath.join(staging_dir, soname)
                    faults.check(hostname, faults.FaultKind.COPY_FAILURE,
                                 key=path)
                    fs.write(path, record.image, mode=0o755)
                    staged_paths[soname] = path
                    obs.event("resolution.staged", soname=soname,
                              bytes=len(record.image), path=path)
                    obs.counter("resolution.staged_bytes").inc(
                        len(record.image))
            except Exception as exc:
                # A copy died mid-plan: a half-staged directory would be
                # found by the loader and mask the failure.  Roll back
                # what this plan staged, then let the caller decide.
                self._rollback(staged_paths, staging_dir, exc)
                raise
            sp.set_attrs(staged=len(to_stage))
        decisions = [
            dataclasses.replace(d, staged_path=staged_paths.get(d.soname))
            if d.usable else d
            for d in decisions]
        resolved_all = all(d.usable for d in decisions)
        env_additions: tuple[tuple[str, str], ...] = ()
        if to_stage:
            # The loader finds the copies through LD_LIBRARY_PATH; PATH is
            # also extended as in the paper's Section V.C description.
            env_additions = (("LD_LIBRARY_PATH", staging_dir),
                             ("PATH", staging_dir))
        return ResolutionPlan(
            decisions=tuple(decisions),
            staging_dir=staging_dir,
            resolved_all=resolved_all,
            env_additions=env_additions)

    def _rollback(self, staged_paths: dict[str, str], staging_dir: str,
                  cause: Exception) -> None:
        fs = self.toolbox.machine.fs
        removed = 0
        for path in staged_paths.values():
            try:
                fs.remove(path)
                removed += 1
            except FsError:
                pass  # never let cleanup mask the original failure
        obs.event("resolution.rollback", staging_dir=staging_dir,
                  rolled_back=removed, reason=str(cause))
        obs.counter("resolution.rollbacks").inc()

    def _collect_closure(self, record: LibraryRecord, bundle: SourceBundle,
                         env: Environment,
                         acc: dict[str, LibraryRecord],
                         _depth: int = 0) -> None:
        if record.soname in acc or _depth > self.config.max_resolution_depth:
            return
        if not record.copied:
            return
        acc[record.soname] = record
        for dep in record.needed:
            if dep in self.config.copy_excludes:
                continue
            if self._present_at_target(dep, env):
                continue
            dep_record = bundle.library(dep)
            if dep_record is not None:
                self._collect_closure(dep_record, bundle, env, acc,
                                      _depth=_depth + 1)
