"""The Target Evaluation Component (TEC).

"The TEC uses the information gathered by the BDC and EDC to determine
whether execution can occur at a target site without recompilation"
(Section V.C).  Order of operations, per the paper:

1. match ISA and C-library version; stop with detailed reasons on failure;
2. for each compatible MPI stack detected, compile and run a hello-world
   program natively to confirm the stack functions; when hello-world
   programs from a guaranteed execution environment are available (the
   source phase ran), run them too to confirm compatibility with the
   binary's own build stack;
3. under the selected stack's environment, identify missing shared
   libraries and unsatisfied symbol-version references;
4. with a source-phase bundle, apply the resolution model to the missing
   libraries and re-check;
5. emit the verdict, the reasons, and a site-configuration activation
   script.

All of FEAM's own work runs through the site's batch scheduler (debug
queue), which is how the paper measures its sub-five-minute cost.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import Optional

from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import BinaryDescription
from repro.core.discovery import (
    DiscoveredStack,
    EnvironmentDescription,
    EnvironmentDiscoveryComponent,
)
from repro.core.prediction import (
    Determinant,
    DeterminantResult,
    Prediction,
    PredictionMode,
    StackAssessment,
)
from repro.core.resolution import ResolutionModel, ResolutionPlan
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.toolchain.compilers import Language

#: ISA compatibility: uname -p value -> (objdump arch, bits) it executes.
_ISA_ACCEPTS: dict[str, frozenset[tuple[str, int]]] = {
    "x86_64": frozenset({("x86-64", 64), ("i386", 32)}),
    "i686": frozenset({("i386", 32)}),
    "ppc64": frozenset({("powerpc64", 64), ("powerpc", 32)}),
    "ia64": frozenset({("ia64", 64)}),
    "sparc64": frozenset({("sparcv9", 64), ("sparc", 32)}),
}


def isa_compatible(binary_isa: str, binary_bits: int, target_isa: str) -> bool:
    """Determinant 1: can the target's hardware execute this format?"""
    accepted = _ISA_ACCEPTS.get(target_isa)
    if accepted is None:
        return binary_isa == target_isa
    return (binary_isa, binary_bits) in accepted


def _loader_failure(detail: str) -> bool:
    """Does this stderr text look like a dynamic-loader failure?

    Loader failures of the *imported* hello-world probe (missing shared
    objects, unsatisfied versions) are inconclusive for stack
    compatibility: the probe shares the application's own library
    requirements, which the resolution model may satisfy.  Launch/ABI/FPE
    failures, by contrast, condemn the stack pairing.
    """
    return ("cannot open shared object file" in detail
            or "version `" in detail)


def _compiler_family_hint(description: BinaryDescription) -> Optional[str]:
    """Guess the build compiler family from the .comment banner."""
    hint = description.build_compiler_hint or ""
    if hint.startswith("GCC"):
        return "gnu"
    if hint.startswith("Intel"):
        return "intel"
    if hint.startswith("PGI"):
        return "pgi"
    return None


@dataclasses.dataclass
class TargetReport:
    """Everything a target phase produces."""

    prediction: Prediction
    environment: EnvironmentDescription
    resolution: Optional[ResolutionPlan] = None
    #: Ready-to-run environment (stack + staging) when prediction is ready.
    run_environment: Optional[Environment] = None
    selected_stack_prefix: Optional[str] = None
    #: Simulated seconds of FEAM's own work (scheduler-visible).
    feam_seconds: float = 0.0
    output_path: Optional[str] = None

    @property
    def ready(self) -> bool:
        return self.prediction.ready


class TargetEvaluationComponent:
    """The TEC, bound to one target site."""

    def __init__(self, site, config: Optional[FeamConfig] = None) -> None:
        self.site = site
        self.config = config or FeamConfig()
        self.toolbox = site.toolbox()
        self.edc = EnvironmentDiscoveryComponent(self.toolbox)
        self._environment: Optional[EnvironmentDescription] = None

    # -- cached discovery ----------------------------------------------------------

    def environment(self) -> EnvironmentDescription:
        """The (cached) EDC description of this site."""
        if self._environment is None:
            self._environment = self.edc.discover()
        return self._environment

    # -- hello-world stack tests ------------------------------------------------------

    def _hello_dir(self) -> str:
        return posixpath.join(self.config.output_root, "hello")

    def assess_stack(self, stack: DiscoveredStack,
                     bundle: Optional[SourceBundle]) -> StackAssessment:
        """Functional tests for one candidate stack (Section V.C)."""
        env = self.edc.env_for_stack(stack)
        native_ok: Optional[bool] = None
        imported_ok: Optional[bool] = None
        notes = []
        if stack.prefix is None:
            return StackAssessment(stack=stack, notes="no install prefix")
        try:
            hello = self.site.compile_with_wrapper(
                posixpath.join(stack.prefix, "bin", "mpicc"),
                f"feam-hello-{stack.label.replace('/', '-')}",
                Language.C)
        except (FsError, KeyError) as exc:
            hello = None
            notes.append(f"native compile failed: {exc}")
        if hello is not None:
            path = posixpath.join(
                self._hello_dir(), f"native-{stack.label.replace('/', '-')}")
            self.site.machine.fs.write(path, hello.image, mode=0o755)
            native_ok = False
            for attempt in range(2):  # absorb transient scheduler faults
                record = self.site.execute(
                    f"feam:hello-native:{stack.label}", hello.image,
                    self.site.stack_by_prefix(stack.prefix), env=env,
                    attempt=attempt, nprocs=self.config.hello_nprocs,
                    queue=self.config.parallel_queue,
                    launcher=self.config.mpiexec_for(stack.kind))
                if record.result.ok:
                    native_ok = True
                    break
            if not native_ok:
                notes.append(f"native hello failed: {record.result.failure}")
        if bundle is not None and bundle.hello is not None:
            image = bundle.hello.best()
            if image is not None:
                path = posixpath.join(
                    self._hello_dir(),
                    f"imported-{stack.label.replace('/', '-')}")
                self.site.machine.fs.write(path, image, mode=0o755)
                record = None
                for attempt in range(2):  # absorb transient faults
                    record = self.site.execute(
                        f"feam:hello-imported:{stack.label}", image,
                        self.site.stack_by_prefix(stack.prefix), env=env,
                        attempt=attempt, nprocs=self.config.hello_nprocs,
                        queue=self.config.parallel_queue,
                        launcher=self.config.mpiexec_for(stack.kind))
                    if record.result.ok:
                        break
                if record.result.ok:
                    imported_ok = True
                elif _loader_failure(record.result.failure.detail):
                    # The probe shares the binary's library needs; a
                    # loader failure here is resolvable, not a stack
                    # incompatibility.  Re-tested after resolution.
                    imported_ok = None
                    notes.append(
                        f"imported hello inconclusive: "
                        f"{record.result.failure}")
                else:
                    imported_ok = False
                    notes.append(
                        f"imported hello failed: {record.result.failure}")
        return StackAssessment(
            stack=stack, native_hello_ok=native_ok,
            imported_hello_ok=imported_ok, notes="; ".join(notes))

    def _order_candidates(self, candidates: list[DiscoveredStack],
                          description: BinaryDescription,
                          ) -> list[DiscoveredStack]:
        """Prefer the binary's own compiler family, then stable order."""
        hint = _compiler_family_hint(description)
        return sorted(
            candidates,
            key=lambda s: (0 if s.compiler_family == hint else 1, s.label))

    # -- the evaluation --------------------------------------------------------------

    def evaluate(self, description: BinaryDescription,
                 binary_path: Optional[str] = None,
                 bundle: Optional[SourceBundle] = None,
                 staging_tag: str = "default") -> TargetReport:
        """Run the full prediction (and resolution) for one binary."""
        mode = (PredictionMode.EXTENDED if bundle is not None
                else PredictionMode.BASIC)
        environment = self.environment()
        determinants: list[DeterminantResult] = []
        reasons: list[str] = []
        feam_seconds = 10.0 + 0.2 * len(description.needed)

        # Determinant 1: ISA.
        isa_ok = isa_compatible(
            description.isa_name, description.bits, environment.isa)
        determinants.append(DeterminantResult(
            Determinant.ISA, isa_ok,
            f"binary {description.isa_name}/{description.bits}-bit, "
            f"target {environment.isa}"))
        if not isa_ok:
            reasons.append("incompatible ISA")

        # Determinant 3 (checked before MPI per Section V.C): C library.
        libc_ok: Optional[bool] = None
        required = description.required_glibc_tuple
        available = environment.libc_version_tuple
        if required and available:
            libc_ok = required <= available
        elif required and not available:
            libc_ok = None  # could not determine the site's libc version
        else:
            libc_ok = True
        determinants.append(DeterminantResult(
            Determinant.C_LIBRARY, libc_ok,
            f"binary requires GLIBC_{description.required_glibc or '?'}, "
            f"target has {environment.libc_version or 'unknown'}"))
        if libc_ok is False:
            reasons.append(
                f"C library too old (needs "
                f"{description.required_glibc}, site has "
                f"{environment.libc_version})")

        if not isa_ok or libc_ok is False:
            prediction = Prediction(
                ready=False, mode=mode, determinants=tuple(determinants),
                reasons=tuple(reasons))
            return self._finish(prediction, environment, None, None,
                                feam_seconds, staging_tag)

        # Determinant 2: MPI stack.
        mpi_type = description.mpi_implementation
        selected: Optional[DiscoveredStack] = None
        assessments: list[StackAssessment] = []
        if mpi_type is None:
            determinants.append(DeterminantResult(
                Determinant.MPI_STACK, True,
                "binary does not appear to be an MPI application"))
        else:
            candidates = environment.stacks_of_kind(mpi_type)
            if not candidates:
                determinants.append(DeterminantResult(
                    Determinant.MPI_STACK, False,
                    f"no {mpi_type} stack available"))
                reasons.append(f"no matching MPI implementation "
                               f"({mpi_type}) at the site")
            else:
                for candidate in self._order_candidates(
                        candidates, description):
                    assessment = self.assess_stack(candidate, bundle)
                    assessments.append(assessment)
                    feam_seconds += 25.0
                    if assessment.usable:
                        selected = candidate
                        break
                determinants.append(DeterminantResult(
                    Determinant.MPI_STACK, selected is not None,
                    (f"selected {selected.label}" if selected else
                     f"{len(candidates)} {mpi_type} stack(s) found but none "
                     f"passed the functional tests")))
                if selected is None:
                    reasons.append(
                        f"no usable {mpi_type} stack (hello-world tests "
                        f"failed)")

        if mpi_type is not None and selected is None:
            prediction = Prediction(
                ready=False, mode=mode, determinants=tuple(determinants),
                stack_assessments=tuple(assessments),
                reasons=tuple(reasons))
            return self._finish(prediction, environment, None, None,
                                feam_seconds, staging_tag)

        # Determinant 4: shared libraries (under the selected stack).
        env = (self.edc.env_for_stack(selected) if selected is not None
               else self.toolbox.machine.env.copy())
        missing, unsatisfied = self.edc.missing_libraries(
            description, env, binary_path=binary_path)
        feam_seconds += 0.5 * len(description.needed)
        glibc_unsatisfied = [(lib, v) for lib, v in unsatisfied
                             if v.startswith("GLIBC_")]
        other_unsatisfied = [(lib, v) for lib, v in unsatisfied
                             if not v.startswith("GLIBC_")]
        if glibc_unsatisfied:
            # Deeper C-library incompatibility discovered via ldd -v.
            determinants = [
                d if d.determinant is not Determinant.C_LIBRARY else
                DeterminantResult(
                    Determinant.C_LIBRARY, False,
                    "unsatisfied GLIBC version references: " + ", ".join(
                        f"{v} from {lib}" for lib, v in glibc_unsatisfied))
                for d in determinants]
            reasons.append("unsatisfied GLIBC symbol versions")

        resolution: Optional[ResolutionPlan] = None
        to_resolve = list(dict.fromkeys(
            missing + [lib for lib, _v in other_unsatisfied]))
        if to_resolve and bundle is not None and not glibc_unsatisfied:
            resolver = ResolutionModel(self.toolbox, environment, self.config)
            staging_dir = posixpath.join(self.config.staging_root, staging_tag)
            resolution = resolver.resolve(to_resolve, bundle, env, staging_dir)
            feam_seconds += 2.0 * len(to_resolve)
            if resolution.staged:
                for var, path in resolution.env_additions:
                    env.prepend_path(var, path)
                missing, unsatisfied = self.edc.missing_libraries(
                    description, env, binary_path=binary_path)
                other_unsatisfied = [(lib, v) for lib, v in unsatisfied
                                     if not v.startswith("GLIBC_")]

        shared_ok = (not missing and not other_unsatisfied
                     and not glibc_unsatisfied)

        # Extended compatibility re-test: when the imported hello-world was
        # inconclusive (its own libraries were missing pre-resolution), run
        # it again in the final environment to expose ABI/floating-point
        # incompatibilities between the build stack and the selected stack.
        if (shared_ok and selected is not None and bundle is not None
                and bundle.hello is not None):
            selected_assessment = next(
                (a for a in assessments if a.stack is selected), None)
            # Retest when the earlier probe was inconclusive OR when
            # resolution changed the runtime environment (staged copies
            # alter which MPI/runtime libraries actually load).
            needs_retest = (
                (selected_assessment is not None
                 and selected_assessment.imported_hello_ok is None)
                or (resolution is not None and bool(resolution.staged)))
            if needs_retest:
                retest_ok, failure_detail = self._run_imported_hello(
                    selected, bundle, env,
                    staging_dir=posixpath.join(
                        self.config.staging_root, staging_tag))
                feam_seconds += 20.0
                if retest_ok is False:
                    determinants = [
                        d if d.determinant is not Determinant.MPI_STACK else
                        DeterminantResult(
                            Determinant.MPI_STACK, False,
                            f"imported hello-world fails on "
                            f"{selected.label}: {failure_detail}")
                        for d in determinants]
                    reasons.append(
                        "guaranteed-environment hello-world is incompatible "
                        "with the selected stack")
                    prediction = Prediction(
                        ready=False, mode=mode,
                        determinants=tuple(determinants),
                        stack_assessments=tuple(assessments),
                        selected_stack=selected,
                        missing_libraries=tuple(missing),
                        unsatisfied_versions=tuple(unsatisfied),
                        reasons=tuple(reasons))
                    return self._finish(
                        prediction, environment, resolution, None,
                        feam_seconds, staging_tag, selected)
        detail_parts = []
        if missing:
            detail_parts.append("missing: " + ", ".join(missing))
        if other_unsatisfied:
            detail_parts.append("unsatisfied versions: " + ", ".join(
                f"{v} from {lib}" for lib, v in other_unsatisfied))
        determinants.append(DeterminantResult(
            Determinant.SHARED_LIBRARIES,
            shared_ok if not glibc_unsatisfied else False,
            "; ".join(detail_parts) or "all shared libraries available"))
        if missing:
            reasons.append("missing shared libraries: " + ", ".join(missing))
        if other_unsatisfied:
            reasons.append("incompatible shared library versions")

        ready = (isa_ok and libc_ok is not False
                 and (mpi_type is None or selected is not None)
                 and shared_ok)
        prediction = Prediction(
            ready=ready, mode=mode, determinants=tuple(determinants),
            stack_assessments=tuple(assessments),
            selected_stack=selected,
            missing_libraries=tuple(missing),
            unsatisfied_versions=tuple(unsatisfied),
            requires_resolution=bool(resolution and resolution.staged),
            reasons=tuple(reasons))
        return self._finish(prediction, environment, resolution,
                            env if ready else None, feam_seconds,
                            staging_tag, selected)

    def _run_imported_hello(self, stack: DiscoveredStack,
                            bundle: SourceBundle, env: Environment,
                            staging_dir: str) -> tuple[Optional[bool], str]:
        """Run the guaranteed-environment hello under *env*.

        The probe's *own* missing libraries are first resolved from the
        bundle (the probe was built with the application's stack, so its
        requirements are a subset of the application's) -- otherwise a
        loader failure of the probe would mask the ABI signal the test
        exists to expose.  Returns (ok, failure detail); ok is None when
        the outcome remains a loader failure (inconclusive).
        """
        image = bundle.hello.best() if bundle.hello else None
        if image is None or stack.prefix is None:
            return None, "no imported hello available"
        hello_path = posixpath.join(
            self._hello_dir(), f"retest-{stack.label.replace('/', '-')}")
        self.site.machine.fs.write(hello_path, image, mode=0o755)
        probe_env = env.copy()
        try:
            ldd = self.toolbox.ldd(hello_path, probe_env)
            hello_missing = list(ldd.missing) if ldd.recognised else []
        except FsError:
            hello_missing = []
        if hello_missing:
            resolver = ResolutionModel(
                self.toolbox, self.environment(), self.config)
            plan = resolver.resolve(hello_missing, bundle, probe_env,
                                    posixpath.join(staging_dir, "hello"))
            for var, path in plan.env_additions:
                probe_env.prepend_path(var, path)
        last_detail = ""
        for attempt in range(2):
            record = self.site.execute(
                f"feam:hello-retest:{stack.label}", image,
                self.site.stack_by_prefix(stack.prefix), env=probe_env,
                attempt=attempt, nprocs=self.config.hello_nprocs,
                queue=self.config.parallel_queue,
                launcher=self.config.mpiexec_for(stack.kind))
            if record.result.ok:
                return True, ""
            last_detail = record.result.failure.detail
        if _loader_failure(last_detail):
            return None, last_detail
        return False, last_detail

    # -- reporting -----------------------------------------------------------------------

    def _finish(self, prediction: Prediction,
                environment: EnvironmentDescription,
                resolution: Optional[ResolutionPlan],
                run_env: Optional[Environment],
                feam_seconds: float, staging_tag: str,
                selected: Optional[DiscoveredStack] = None) -> TargetReport:
        from repro.core.report import render_target_report
        report = TargetReport(
            prediction=prediction,
            environment=environment,
            resolution=resolution,
            run_environment=run_env,
            selected_stack_prefix=(selected.prefix if selected else None),
            feam_seconds=feam_seconds)
        output_path = posixpath.join(
            self.config.output_root, f"prediction-{staging_tag}.txt")
        self.site.machine.fs.write_text(
            output_path, render_target_report(report))
        if resolution is not None:
            script_path = posixpath.join(
                self.config.output_root, f"activate-{staging_tag}.sh")
            self.site.machine.fs.write_text(
                script_path, resolution.activation_script(), mode=0o755)
        report.output_path = output_path
        return report
