"""The Target Evaluation Component (TEC).

"The TEC uses the information gathered by the BDC and EDC to determine
whether execution can occur at a target site without recompilation"
(Section V.C).  Order of operations, per the paper:

1. match ISA and C-library version; stop with detailed reasons on failure;
2. for each compatible MPI stack detected, compile and run a hello-world
   program natively to confirm the stack functions; when hello-world
   programs from a guaranteed execution environment are available (the
   source phase ran), run them too to confirm compatibility with the
   binary's own build stack;
3. under the selected stack's environment, identify missing shared
   libraries and unsatisfied symbol-version references;
4. with a source-phase bundle, apply the resolution model to the missing
   libraries and re-check;
5. emit the verdict, the reasons, and a site-configuration activation
   script.

The determinant logic itself lives in the pluggable pipeline under
:mod:`repro.core.determinants`; the TEC provides the site-bound services
the checks need (environment discovery, hello-world probes) and turns the
pipeline's results into a :class:`TargetReport`.

All of FEAM's own work runs through the site's batch scheduler (debug
queue), which is how the paper measures its sub-five-minute cost.
"""

from __future__ import annotations

import dataclasses
import posixpath
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import BinaryDescription
from repro.core.determinants import (
    DeterminantContext,
    DeterminantRegistry,
    default_registry,
    isa_compatible,  # noqa: F401  (re-exported for back-compat)
)
from repro.core.discovery import (
    DiscoveredStack,
    EnvironmentDescription,
    EnvironmentDiscoveryComponent,
)
from repro.core.prediction import (
    Outcome,
    Prediction,
    PredictionMode,
    StackAssessment,
)
from repro.core.resolution import ResolutionModel, ResolutionPlan
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.toolchain.compilers import Language

if TYPE_CHECKING:
    from repro.core.resilience import FailureProvenance


def _loader_failure(detail: str) -> bool:
    """Does this stderr text look like a dynamic-loader failure?

    Loader failures of the *imported* hello-world probe (missing shared
    objects, unsatisfied versions) are inconclusive for stack
    compatibility: the probe shares the application's own library
    requirements, which the resolution model may satisfy.  Launch/ABI/FPE
    failures, by contrast, condemn the stack pairing.
    """
    return ("cannot open shared object file" in detail
            or "version `" in detail)


def _compiler_family_hint(description: BinaryDescription) -> Optional[str]:
    """Guess the build compiler family from the .comment banner."""
    hint = description.build_compiler_hint or ""
    if hint.startswith("GCC"):
        return "gnu"
    if hint.startswith("Intel"):
        return "intel"
    if hint.startswith("PGI"):
        return "pgi"
    return None


@dataclasses.dataclass(frozen=True)
class CellCacheInfo:
    """Which evaluation-engine caches served one (binary, site) cell."""

    description_hit: bool = False
    discovery_hit: bool = False
    evaluation_hit: bool = False
    #: Which tier served the evaluation layer: ``"memory"`` (in-process
    #: ShardedMap), ``"disk"`` (the persistent store), ``"journal"``
    #: (resume restore), or None for a freshly computed cell.  Wide
    #: events surface this as ``cache_tier``; :meth:`render` does not
    #: (the verbose grid stays byte-stable across tiers by design).
    tier: Optional[str] = None

    def render(self) -> str:
        def word(hit: bool) -> str:
            return "hit" if hit else "miss"

        return (f"description={word(self.description_hit)} "
                f"discovery={word(self.discovery_hit)} "
                f"evaluation={word(self.evaluation_hit)}")


@dataclasses.dataclass
class TargetReport:
    """Everything a target phase produces."""

    prediction: Prediction
    environment: EnvironmentDescription
    resolution: Optional[ResolutionPlan] = None
    #: Ready-to-run environment (stack + staging) when prediction is ready.
    run_environment: Optional[Environment] = None
    selected_stack_prefix: Optional[str] = None
    #: Simulated seconds of FEAM's own work (scheduler-visible).
    feam_seconds: float = 0.0
    output_path: Optional[str] = None
    #: Engine cache provenance (None when evaluated outside the engine).
    cache: Optional[CellCacheInfo] = None
    #: Set when evaluation degraded to UNKNOWN instead of completing
    #: (injected or real fault; see :mod:`repro.core.resilience`).
    failure: Optional["FailureProvenance"] = None

    @property
    def ready(self) -> bool:
        return self.prediction.ready

    @property
    def faulted(self) -> bool:
        return self.failure is not None


class TargetEvaluationComponent:
    """The TEC, bound to one target site."""

    def __init__(self, site, config: Optional[FeamConfig] = None,
                 registry: Optional[DeterminantRegistry] = None) -> None:
        self.site = site
        self.config = config or FeamConfig()
        self.registry = registry if registry is not None else \
            default_registry()
        self.toolbox = site.toolbox()
        self.edc = EnvironmentDiscoveryComponent(self.toolbox)
        self._environment: Optional[EnvironmentDescription] = None

    # -- cached discovery ----------------------------------------------------------

    def environment(self) -> EnvironmentDescription:
        """The (cached) EDC description of this site."""
        if self._environment is None:
            self._environment = self.edc.discover()
        return self._environment

    def invalidate_environment(self) -> None:
        """Drop the cached discovery (the site's environment changed)."""
        self._environment = None

    def adopt_environment(self,
                          environment: EnvironmentDescription) -> None:
        """Seed the discovery cache with an externally obtained description.

        The evaluation engine uses this to share one discovery across
        evaluation-equivalent fleet sites (equal ``content_key``); the
        adopted description must be re-hosted to this site's hostname by
        the caller.
        """
        self._environment = environment

    # -- hello-world stack tests ------------------------------------------------------

    def _hello_dir(self) -> str:
        return posixpath.join(self.config.output_root, "hello")

    def assess_stack(self, stack: DiscoveredStack,
                     bundle: Optional[SourceBundle]) -> StackAssessment:
        """Functional tests for one candidate stack (Section V.C)."""
        with obs.span("tec.assess_stack", stack=stack.label) as sp:
            assessment = self._assess_stack(stack, bundle)
            sp.set_attrs(native_ok=assessment.native_hello_ok,
                         imported_ok=assessment.imported_hello_ok,
                         usable=assessment.usable)
        return assessment

    def _assess_stack(self, stack: DiscoveredStack,
                      bundle: Optional[SourceBundle]) -> StackAssessment:
        env = self.edc.env_for_stack(stack)
        native_ok: Optional[bool] = None
        imported_ok: Optional[bool] = None
        notes = []
        if stack.prefix is None:
            return StackAssessment(stack=stack, notes="no install prefix")
        try:
            hello = self.site.compile_with_wrapper(
                posixpath.join(stack.prefix, "bin", "mpicc"),
                f"feam-hello-{stack.label.replace('/', '-')}",
                Language.C)
        except (FsError, KeyError) as exc:
            hello = None
            notes.append(f"native compile failed: {exc}")
        if hello is not None:
            path = posixpath.join(
                self._hello_dir(), f"native-{stack.label.replace('/', '-')}")
            self.site.machine.fs.write(path, hello.image, mode=0o755)
            native_ok = False
            for attempt in range(2):  # absorb transient scheduler faults
                record = self.site.execute(
                    f"feam:hello-native:{stack.label}", hello.image,
                    self.site.stack_by_prefix(stack.prefix), env=env,
                    attempt=attempt, nprocs=self.config.hello_nprocs,
                    queue=self.config.parallel_queue,
                    launcher=self.config.mpiexec_for(stack.kind))
                if record.result.ok:
                    native_ok = True
                    break
            if not native_ok:
                notes.append(f"native hello failed: {record.result.failure}")
        if bundle is not None and bundle.hello is not None:
            image = bundle.hello.best()
            if image is not None:
                path = posixpath.join(
                    self._hello_dir(),
                    f"imported-{stack.label.replace('/', '-')}")
                self.site.machine.fs.write(path, image, mode=0o755)
                record = None
                for attempt in range(2):  # absorb transient faults
                    record = self.site.execute(
                        f"feam:hello-imported:{stack.label}", image,
                        self.site.stack_by_prefix(stack.prefix), env=env,
                        attempt=attempt, nprocs=self.config.hello_nprocs,
                        queue=self.config.parallel_queue,
                        launcher=self.config.mpiexec_for(stack.kind))
                    if record.result.ok:
                        break
                if record.result.ok:
                    imported_ok = True
                elif _loader_failure(record.result.failure.detail):
                    # The probe shares the binary's library needs; a
                    # loader failure here is resolvable, not a stack
                    # incompatibility.  Re-tested after resolution.
                    imported_ok = None
                    notes.append(
                        f"imported hello inconclusive: "
                        f"{record.result.failure}")
                else:
                    imported_ok = False
                    notes.append(
                        f"imported hello failed: {record.result.failure}")
        return StackAssessment(
            stack=stack, native_hello_ok=native_ok,
            imported_hello_ok=imported_ok, notes="; ".join(notes))

    def order_candidates(self, candidates: list[DiscoveredStack],
                         description: BinaryDescription,
                         ) -> list[DiscoveredStack]:
        """Prefer the binary's own compiler family, then stable order."""
        hint = _compiler_family_hint(description)
        return sorted(
            candidates,
            key=lambda s: (0 if s.compiler_family == hint else 1, s.label))

    # -- the evaluation --------------------------------------------------------------

    def evaluate(self, description: BinaryDescription,
                 binary_path: Optional[str] = None,
                 bundle: Optional[SourceBundle] = None,
                 staging_tag: str = "default") -> TargetReport:
        """Run the full prediction (and resolution) for one binary.

        Delegates the determinant logic to the registry's pipeline; this
        method only assembles the context, derives the verdict from the
        pipeline's results and writes the report.
        """
        mode = (PredictionMode.EXTENDED if bundle is not None
                else PredictionMode.BASIC)
        with obs.span("tec.evaluate", site=self.site.name,
                      binary=description.path, mode=mode.value,
                      tag=staging_tag) as sp:
            environment = self.environment()
            ctx = DeterminantContext(
                description=description,
                environment=environment,
                config=self.config,
                services=self,
                mode=mode,
                binary_path=binary_path,
                bundle=bundle,
                staging_tag=staging_tag,
            )
            ctx.feam_seconds = (
                self.config.feam_base_seconds
                + self.config.feam_seconds_per_dependency
                * len(description.needed))
            results = self.registry.run(ctx)
            ready = all(r.outcome is not Outcome.FAIL for r in results)
            sp.set_attrs(ready=ready, reasons=len(ctx.reasons))
            sp.add_sim_seconds(ctx.feam_seconds)
        prediction = Prediction(
            ready=ready, mode=mode, determinants=results,
            stack_assessments=tuple(ctx.assessments),
            selected_stack=ctx.selected,
            missing_libraries=tuple(ctx.missing),
            unsatisfied_versions=tuple(ctx.unsatisfied),
            requires_resolution=(
                bool(ctx.resolution and ctx.resolution.staged)
                and not ctx.retest_failed),
            reasons=tuple(ctx.reasons))
        return self._finish(prediction, environment, ctx.resolution,
                            ctx.env if ready else None, ctx.feam_seconds,
                            staging_tag, ctx.selected)

    def run_imported_hello(self, stack: DiscoveredStack,
                           bundle: SourceBundle, env: Environment,
                           staging_dir: str) -> tuple[Optional[bool], str]:
        """Run the guaranteed-environment hello under *env*.

        The probe's *own* missing libraries are first resolved from the
        bundle (the probe was built with the application's stack, so its
        requirements are a subset of the application's) -- otherwise a
        loader failure of the probe would mask the ABI signal the test
        exists to expose.  Returns (ok, failure detail); ok is None when
        the outcome remains a loader failure (inconclusive).
        """
        with obs.span("tec.hello_retest", stack=stack.label) as sp:
            ok, detail = self._run_imported_hello(
                stack, bundle, env, staging_dir)
            sp.set_attrs(ok=ok, detail=detail or "passed")
        return ok, detail

    def _run_imported_hello(self, stack: DiscoveredStack,
                            bundle: SourceBundle, env: Environment,
                            staging_dir: str) -> tuple[Optional[bool], str]:
        image = bundle.hello.best() if bundle.hello else None
        if image is None or stack.prefix is None:
            return None, "no imported hello available"
        hello_path = posixpath.join(
            self._hello_dir(), f"retest-{stack.label.replace('/', '-')}")
        self.site.machine.fs.write(hello_path, image, mode=0o755)
        probe_env = env.copy()
        try:
            ldd = self.toolbox.ldd(hello_path, probe_env)
            hello_missing = list(ldd.missing) if ldd.recognised else []
        except FsError:
            hello_missing = []
        if hello_missing:
            resolver = ResolutionModel(
                self.toolbox, self.environment(), self.config)
            plan = resolver.resolve(hello_missing, bundle, probe_env,
                                    posixpath.join(staging_dir, "hello"))
            for var, path in plan.env_additions:
                probe_env.prepend_path(var, path)
        last_detail = ""
        for attempt in range(2):
            record = self.site.execute(
                f"feam:hello-retest:{stack.label}", image,
                self.site.stack_by_prefix(stack.prefix), env=probe_env,
                attempt=attempt, nprocs=self.config.hello_nprocs,
                queue=self.config.parallel_queue,
                launcher=self.config.mpiexec_for(stack.kind))
            if record.result.ok:
                return True, ""
            last_detail = record.result.failure.detail
        if _loader_failure(last_detail):
            return None, last_detail
        return False, last_detail

    # -- reporting -----------------------------------------------------------------------

    def _finish(self, prediction: Prediction,
                environment: EnvironmentDescription,
                resolution: Optional[ResolutionPlan],
                run_env: Optional[Environment],
                feam_seconds: float, staging_tag: str,
                selected: Optional[DiscoveredStack] = None) -> TargetReport:
        from repro.core.report import render_target_report
        report = TargetReport(
            prediction=prediction,
            environment=environment,
            resolution=resolution,
            run_environment=run_env,
            selected_stack_prefix=(selected.prefix if selected else None),
            feam_seconds=feam_seconds)
        output_path = posixpath.join(
            self.config.output_root, f"prediction-{staging_tag}.txt")
        self.site.machine.fs.write_text(
            output_path, render_target_report(report))
        if resolution is not None:
            script_path = posixpath.join(
                self.config.output_root, f"activate-{staging_tag}.sh")
            self.site.machine.fs.write_text(
                script_path, resolution.activation_script(), mode=0o755)
        report.output_path = output_path
        return report
