"""Determinant 2: MPI stack compatibility (paper Sections III.B, V.C)."""

from __future__ import annotations

from typing import Optional

from repro.core.determinants.base import DeterminantContext
from repro.core.prediction import Determinant, DeterminantResult, Outcome


class MpiStackCheck:
    """Is a usable stack of the same MPI implementation type available?

    Candidates of the binary's implementation type are functionally
    tested (native hello-world compile+run, plus the imported
    guaranteed-environment probe in extended mode) in preference order --
    the binary's own compiler family first -- until one passes; the
    selected stack and every assessment land in the context for the
    shared-library check and the report.
    """

    key = Determinant.MPI_STACK.value
    depends_on = (Determinant.ISA.value, Determinant.C_LIBRARY.value)

    def run(self, ctx: DeterminantContext) -> Optional[DeterminantResult]:
        mpi_type = ctx.description.mpi_implementation
        if mpi_type is None:
            return DeterminantResult(
                Determinant.MPI_STACK, Outcome.PASS,
                "binary does not appear to be an MPI application")
        candidates = ctx.environment.stacks_of_kind(mpi_type)
        if not candidates:
            ctx.add_reason(
                f"no matching MPI implementation ({mpi_type}) at the site")
            return DeterminantResult(
                Determinant.MPI_STACK, Outcome.FAIL,
                f"no {mpi_type} stack available")
        for candidate in ctx.services.order_candidates(
                candidates, ctx.description):
            assessment = ctx.services.assess_stack(candidate, ctx.bundle)
            ctx.assessments.append(assessment)
            ctx.feam_seconds += ctx.config.stack_assessment_seconds
            if assessment.usable:
                ctx.selected = candidate
                break
        if ctx.selected is None:
            ctx.add_reason(
                f"no usable {mpi_type} stack (hello-world tests failed)")
            return DeterminantResult(
                Determinant.MPI_STACK, Outcome.FAIL,
                f"{len(candidates)} {mpi_type} stack(s) found but none "
                f"passed the functional tests")
        return DeterminantResult(
            Determinant.MPI_STACK, Outcome.PASS,
            f"selected {ctx.selected.label}")
