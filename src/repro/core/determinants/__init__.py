"""The pluggable determinant pipeline (paper Section III, Figure 1).

Each of the paper's four determinants is a self-contained check class
implementing the :class:`DeterminantCheck` protocol; a
:class:`DeterminantRegistry` runs them in the paper's evaluation order
(ISA -> C library -> MPI stack -> shared libraries) with the paper's
short-circuit semantics: a check whose declared dependencies failed (or
were themselves skipped) is not evaluated at all.

Custom checks plug in through :meth:`DeterminantRegistry.register`; their
results carry a plain string key and flow through
:class:`~repro.core.prediction.Prediction` and the report renderer like
the built-in four.
"""

from repro.core.determinants.base import (
    DeterminantCheck,
    DeterminantContext,
    DeterminantRegistry,
    default_registry,
)
from repro.core.determinants.isa import IsaCheck, isa_compatible
from repro.core.determinants.libc import CLibraryCheck
from repro.core.determinants.libraries import SharedLibrariesCheck
from repro.core.determinants.mpi import MpiStackCheck

__all__ = [
    "CLibraryCheck",
    "DeterminantCheck",
    "DeterminantContext",
    "DeterminantRegistry",
    "IsaCheck",
    "MpiStackCheck",
    "SharedLibrariesCheck",
    "default_registry",
    "isa_compatible",
]
