"""Determinant 3, checked second per Section V.C: C library version."""

from __future__ import annotations

from repro.core.determinants.base import DeterminantContext
from repro.core.prediction import Determinant, DeterminantResult, Outcome


class CLibraryCheck:
    """Is the target's C library at least the binary's required version?

    Runs even when the ISA check failed (the paper reports both gates'
    reasons together), hence the empty dependency list.  When the site's
    libc version cannot be determined the outcome is UNKNOWN -- reported
    as such, never as a pass -- but it does not stop the pipeline: only a
    determined incompatibility does.
    """

    key = Determinant.C_LIBRARY.value
    depends_on: tuple[str, ...] = ()

    def run(self, ctx: DeterminantContext) -> DeterminantResult:
        description = ctx.description
        environment = ctx.environment
        required = description.required_glibc_tuple
        available = environment.libc_version_tuple
        if required and available:
            outcome = Outcome.PASS if required <= available else Outcome.FAIL
        elif required and not available:
            # Could not determine the site's libc version.
            outcome = Outcome.UNKNOWN
        else:
            outcome = Outcome.PASS
        detail = (
            f"binary requires GLIBC_{description.required_glibc or '?'}, "
            f"target has {environment.libc_version or 'unknown'}")
        if outcome is Outcome.UNKNOWN:
            detail += " (site libc version undeterminable)"
        if outcome is Outcome.FAIL:
            ctx.add_reason(
                f"C library too old (needs {description.required_glibc}, "
                f"site has {environment.libc_version})")
        return DeterminantResult(Determinant.C_LIBRARY, outcome, detail)
