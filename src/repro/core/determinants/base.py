"""Determinant pipeline plumbing: context, protocol, registry."""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro import obs
from repro.core.prediction import DeterminantResult, Outcome, PredictionMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bundle import SourceBundle
    from repro.core.config import FeamConfig
    from repro.core.description import BinaryDescription
    from repro.core.discovery import DiscoveredStack, EnvironmentDescription
    from repro.core.evaluation import TargetEvaluationComponent
    from repro.core.prediction import StackAssessment
    from repro.core.resolution import ResolutionPlan
    from repro.sysmodel.env import Environment


@dataclasses.dataclass
class DeterminantContext:
    """Everything one evaluation run shares between determinant checks.

    The immutable inputs (description, bundle, environment, config) sit
    next to the mutable evaluation state the checks build up: the
    selected stack, the composed runtime environment, the resolution
    plan, the accumulated reasons and FEAM's simulated cost.  Checks may
    also *amend* an earlier check's result (e.g. ``ldd -v`` during the
    shared-library check uncovering a deeper C-library incompatibility),
    which preserves the original's position in the report.
    """

    description: "BinaryDescription"
    environment: "EnvironmentDescription"
    config: "FeamConfig"
    services: "TargetEvaluationComponent"
    mode: PredictionMode = PredictionMode.BASIC
    binary_path: Optional[str] = None
    bundle: Optional["SourceBundle"] = None
    staging_tag: str = "default"

    # -- mutable evaluation state, built up by the checks --
    env: Optional["Environment"] = None
    selected: Optional["DiscoveredStack"] = None
    assessments: list = dataclasses.field(default_factory=list)
    resolution: Optional["ResolutionPlan"] = None
    missing: list = dataclasses.field(default_factory=list)
    unsatisfied: list = dataclasses.field(default_factory=list)
    reasons: list = dataclasses.field(default_factory=list)
    feam_seconds: float = 0.0
    #: True when the post-resolution imported-hello retest condemned the
    #: selected stack (the paper's extended-mode early exit).
    retest_failed: bool = False
    #: Ordered results by key; amending an existing key keeps its slot.
    results: dict = dataclasses.field(default_factory=dict)

    def add_reason(self, reason: str) -> None:
        self.reasons.append(reason)

    def amend(self, key: str, result: DeterminantResult) -> None:
        """Replace an earlier result in place (position preserved)."""
        old = self.results.get(key)
        obs.event("determinant.amended", key=key,
                  old=(old.outcome.value if old is not None else None),
                  new=result.outcome.value, detail=result.detail)
        self.results[key] = result

    def outcome_of(self, key: str) -> Optional[Outcome]:
        result = self.results.get(key)
        return result.outcome if result is not None else None


@runtime_checkable
class DeterminantCheck(Protocol):
    """One pluggable determinant check.

    *key* is the stable identifier results and reports use; *depends_on*
    lists the keys that must not have failed (nor been skipped) for this
    check to run.  ``run`` returns the check's result, or ``None`` to
    record nothing (used by checks that instead amend earlier results).
    """

    key: str
    depends_on: tuple[str, ...]

    def run(self, ctx: DeterminantContext) -> Optional[DeterminantResult]:
        ...  # pragma: no cover - protocol


class RegistryError(ValueError):
    """A check could not be registered (duplicate key, unknown dependency)."""


class DeterminantRegistry:
    """An ordered collection of determinant checks.

    Registration order is evaluation order; a check can only depend on
    keys registered before it, which makes the short-circuit semantics a
    single forward pass.
    """

    def __init__(self, checks: tuple = ()) -> None:
        self._checks: list[DeterminantCheck] = []
        for check in checks:
            self.register(check)

    def register(self, check: DeterminantCheck) -> None:
        if check.key in self.keys:
            raise RegistryError(f"duplicate determinant key {check.key!r}")
        missing = [d for d in check.depends_on if d not in self.keys]
        if missing:
            raise RegistryError(
                f"check {check.key!r} depends on unregistered "
                f"determinant(s): {', '.join(missing)}")
        self._checks.append(check)

    @property
    def checks(self) -> tuple:
        return tuple(self._checks)

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(check.key for check in self._checks)

    def run(self, ctx: DeterminantContext) -> tuple[DeterminantResult, ...]:
        """Run every check in order with short-circuit gating.

        A check is skipped (producing no result at all, like the paper's
        "stop with detailed reasons") when any of its dependencies failed
        or was itself skipped.  Unknown outcomes do *not* gate: the paper
        only stops on a determined incompatibility.
        """
        skipped: set[str] = set()
        for check in self._checks:
            blocking = [
                dep for dep in check.depends_on
                if dep in skipped or ctx.outcome_of(dep) is Outcome.FAIL]
            if blocking:
                skipped.add(check.key)
                with obs.span("determinant", key=check.key) as sp:
                    sp.set_attrs(outcome="skipped",
                                 short_circuit=", ".join(blocking))
                obs.counter("determinant.skipped").inc()
                continue
            sim_before = ctx.feam_seconds
            with obs.span("determinant", key=check.key) as sp:
                result = check.run(ctx)
                sp.add_sim_seconds(ctx.feam_seconds - sim_before)
                if result is not None:
                    ctx.results[check.key] = result
                    sp.set_attrs(outcome=result.outcome.value,
                                 detail=result.detail)
                    obs.counter(
                        f"determinant.{result.outcome.value}").inc()
                else:
                    # The check recorded nothing of its own (it amended
                    # earlier results instead -- the paper's early exit).
                    sp.set_attrs(outcome="no-result")
        return tuple(ctx.results.values())


def default_registry() -> DeterminantRegistry:
    """The paper's pipeline: ISA -> C library -> MPI -> shared libraries."""
    from repro.core.determinants.isa import IsaCheck
    from repro.core.determinants.libc import CLibraryCheck
    from repro.core.determinants.libraries import SharedLibrariesCheck
    from repro.core.determinants.mpi import MpiStackCheck

    return DeterminantRegistry(
        (IsaCheck(), CLibraryCheck(), MpiStackCheck(),
         SharedLibrariesCheck()))
