"""Determinant 1: ISA compatibility (paper Section III.A)."""

from __future__ import annotations

from repro.core.determinants.base import DeterminantContext
from repro.core.prediction import Determinant, DeterminantResult, Outcome

#: ISA compatibility: uname -p value -> (objdump arch, bits) it executes.
_ISA_ACCEPTS: dict[str, frozenset[tuple[str, int]]] = {
    "x86_64": frozenset({("x86-64", 64), ("i386", 32)}),
    "i686": frozenset({("i386", 32)}),
    "ppc64": frozenset({("powerpc64", 64), ("powerpc", 32)}),
    "ia64": frozenset({("ia64", 64)}),
    "sparc64": frozenset({("sparcv9", 64), ("sparc", 32)}),
}


def isa_compatible(binary_isa: str, binary_bits: int, target_isa: str) -> bool:
    """Determinant 1: can the target's hardware execute this format?"""
    accepted = _ISA_ACCEPTS.get(target_isa)
    if accepted is None:
        return binary_isa == target_isa
    return (binary_isa, binary_bits) in accepted


class IsaCheck:
    """Was the binary compiled for an ISA the target executes?"""

    key = Determinant.ISA.value
    depends_on: tuple[str, ...] = ()

    def run(self, ctx: DeterminantContext) -> DeterminantResult:
        description = ctx.description
        ok = isa_compatible(
            description.isa_name, description.bits, ctx.environment.isa)
        if not ok:
            ctx.add_reason("incompatible ISA")
        return DeterminantResult(
            Determinant.ISA, Outcome.PASS if ok else Outcome.FAIL,
            f"binary {description.isa_name}/{description.bits}-bit, "
            f"target {ctx.environment.isa}")
