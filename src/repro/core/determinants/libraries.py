"""Determinant 4: shared-library availability (paper Sections III.C, V.C).

This check also owns the two cross-determinant amendments of the paper's
flow: ``ldd -v`` discovering unsatisfied GLIBC symbol versions demotes
the earlier C-library result to FAIL, and the post-resolution retest of
the imported hello-world condemning the selected stack demotes the MPI
result to FAIL (in which case no shared-library result is recorded --
the evaluation stops, as in the paper's early exit).
"""

from __future__ import annotations

import posixpath
from typing import Optional

from repro.core.determinants.base import DeterminantContext
from repro.core.prediction import Determinant, DeterminantResult, Outcome
from repro.core.resolution import ResolutionModel


class SharedLibrariesCheck:
    """Is every required shared library loader-visible, versions satisfied?"""

    key = Determinant.SHARED_LIBRARIES.value
    depends_on = (Determinant.MPI_STACK.value,)

    def run(self, ctx: DeterminantContext) -> Optional[DeterminantResult]:
        tec = ctx.services
        edc = tec.edc
        env = (edc.env_for_stack(ctx.selected) if ctx.selected is not None
               else tec.toolbox.machine.env.copy())
        ctx.env = env
        missing, unsatisfied = edc.missing_libraries(
            ctx.description, env, binary_path=ctx.binary_path)
        ctx.feam_seconds += (
            ctx.config.library_check_seconds * len(ctx.description.needed))
        glibc_unsatisfied = [(lib, v) for lib, v in unsatisfied
                             if v.startswith("GLIBC_")]
        other_unsatisfied = [(lib, v) for lib, v in unsatisfied
                             if not v.startswith("GLIBC_")]
        if glibc_unsatisfied:
            # Deeper C-library incompatibility discovered via ldd -v.
            ctx.amend(Determinant.C_LIBRARY.value, DeterminantResult(
                Determinant.C_LIBRARY, Outcome.FAIL,
                "unsatisfied GLIBC version references: " + ", ".join(
                    f"{v} from {lib}" for lib, v in glibc_unsatisfied)))
            ctx.add_reason("unsatisfied GLIBC symbol versions")

        resolution = None
        to_resolve = list(dict.fromkeys(
            missing + [lib for lib, _v in other_unsatisfied]))
        if to_resolve and ctx.bundle is not None and not glibc_unsatisfied:
            resolver = ResolutionModel(tec.toolbox, ctx.environment,
                                       ctx.config)
            staging_dir = posixpath.join(
                ctx.config.staging_root, ctx.staging_tag)
            resolution = resolver.resolve(
                to_resolve, ctx.bundle, env, staging_dir)
            ctx.feam_seconds += (
                ctx.config.resolution_seconds_per_library * len(to_resolve))
            if resolution.staged:
                for var, path in resolution.env_additions:
                    env.prepend_path(var, path)
                missing, unsatisfied = edc.missing_libraries(
                    ctx.description, env, binary_path=ctx.binary_path)
                other_unsatisfied = [(lib, v) for lib, v in unsatisfied
                                     if not v.startswith("GLIBC_")]
        ctx.resolution = resolution
        ctx.missing = list(missing)
        ctx.unsatisfied = list(unsatisfied)

        shared_ok = (not missing and not other_unsatisfied
                     and not glibc_unsatisfied)

        # Extended compatibility re-test: when the imported hello-world was
        # inconclusive (its own libraries were missing pre-resolution), run
        # it again in the final environment to expose ABI/floating-point
        # incompatibilities between the build stack and the selected stack.
        if (shared_ok and ctx.selected is not None and ctx.bundle is not None
                and ctx.bundle.hello is not None):
            selected_assessment = next(
                (a for a in ctx.assessments if a.stack is ctx.selected), None)
            # Retest when the earlier probe was inconclusive OR when
            # resolution changed the runtime environment (staged copies
            # alter which MPI/runtime libraries actually load).
            needs_retest = (
                (selected_assessment is not None
                 and selected_assessment.imported_hello_ok is None)
                or (resolution is not None and bool(resolution.staged)))
            if needs_retest:
                retest_ok, failure_detail = tec.run_imported_hello(
                    ctx.selected, ctx.bundle, env,
                    staging_dir=posixpath.join(
                        ctx.config.staging_root, ctx.staging_tag))
                ctx.feam_seconds += ctx.config.hello_retest_seconds
                if retest_ok is False:
                    ctx.amend(Determinant.MPI_STACK.value, DeterminantResult(
                        Determinant.MPI_STACK, Outcome.FAIL,
                        f"imported hello-world fails on "
                        f"{ctx.selected.label}: {failure_detail}"))
                    ctx.add_reason(
                        "guaranteed-environment hello-world is incompatible "
                        "with the selected stack")
                    ctx.retest_failed = True
                    return None

        detail_parts = []
        if missing:
            detail_parts.append("missing: " + ", ".join(missing))
        if other_unsatisfied:
            detail_parts.append("unsatisfied versions: " + ", ".join(
                f"{v} from {lib}" for lib, v in other_unsatisfied))
        if missing:
            ctx.add_reason(
                "missing shared libraries: " + ", ".join(missing))
        if other_unsatisfied:
            ctx.add_reason("incompatible shared library versions")
        return DeterminantResult(
            Determinant.SHARED_LIBRARIES,
            Outcome.PASS if shared_ok else Outcome.FAIL,
            "; ".join(detail_parts) or "all shared libraries available")
