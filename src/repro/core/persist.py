"""The persistent evaluation cache: crash-safe cross-run warm starts.

The engine's three cache layers (description / discovery / evaluation,
see :mod:`repro.core.engine`) are in-memory ``ShardedMap``s and die
with the process, so every fresh ``feam matrix`` pays full cold cost.
:class:`PersistentStore` is the read-through/write-behind tier under
them: one append-only JSONL *segment* per layer inside a cache
directory, written through the shared :mod:`repro.util.jsonl`
discipline (one flushed line per record, torn-tail-tolerant reads,
atomic-rename rewrites).

Robustness is the design center -- a disk cache must degrade to a
cache miss with provenance, never a wrong readiness prediction and
never a crash:

* **Schema versioning.**  Every record carries ``"schema":
  SCHEMA_VERSION``; records from a *newer* schema are quarantined
  (counted, skipped, never served) rather than misread.
* **Per-record checksums.**  Each record's ``sum`` field is a content
  digest over its layer, key, fingerprint binding and canonical
  payload bytes.  A record whose checksum no longer matches (at-rest
  rot, torn rewrite) is quarantined.
* **Torn-write tolerance.**  An undecodable *final* line is the normal
  artifact of a killed process and is skipped silently (counted on
  ``persist.cache.torn_tail``); undecodable lines elsewhere are real
  corruption and quarantine.
* **Fingerprint invalidation.**  Discovery and per-site evaluation
  records are bound to the site's ``environment_fingerprint``; a
  record whose binding no longer matches is dropped as stale, never
  served.
* **LRU/size eviction + compaction.**  Segments are append-only (a
  newer record for a key supersedes older lines); :meth:`compact`
  rewrites each segment keeping the newest valid record per key,
  least-recently-used entries evicted first once the per-segment byte
  cap is exceeded -- the same :func:`repro.util.jsonl.cap_jsonl` step
  the run ledger uses.  Rewrites go through a temp file and
  ``os.replace`` so a reader never sees a half-written segment.
* **Durability chaos.**  Two seeded fault kinds attack the store
  itself: ``cache-torn-write`` truncates an appended line mid-write,
  ``cache-corruption`` simulates at-rest rot by quarantining a record
  at read time.  Both degrade to recomputation; ``feam chaos`` proves
  the rendered matrix stays byte-identical to a cold run.

Quarantine provenance: every skipped record bumps
``persist.cache.quarantined`` (plus a per-reason counter) and emits a
``persist.quarantine`` event; the default SLO rules treat a non-zero
quarantine count as ``[critical]``.

``feam cache`` (stats / verify / compact / clear) is the operator
surface; :meth:`verify` is the fsck pass it exposes.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Optional

from repro import obs
from repro.core.description import BinaryDescription
from repro.core.discovery import DiscoveredStack, EnvironmentDescription
from repro.core.evaluation import TargetReport
from repro.core.prediction import (
    DeterminantResult,
    Outcome,
    Prediction,
    PredictionMode,
)
from repro.sysmodel import faults
from repro.util import jsonl as _jsonl
from repro.util.hashing import stable_digest

#: Version of the on-disk record layout.  Bump when a field changes
#: meaning or disappears; adding fields is backwards-compatible.
SCHEMA_VERSION = 1

#: The three engine cache layers the store backs, one segment each.
LAYERS = ("description", "discovery", "evaluation")

#: Default per-segment byte cap (LRU eviction beyond it).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: The "site" label cache fault kinds are scoped by in fault profiles
#: (``cache-corruption @ cache ...``; ``@ *`` matches too).
CACHE_SITE = "cache"


# -- content-addressed keys ------------------------------------------------------


def description_key(image_digest: str, path: str) -> str:
    """The disk key of one described binary (image digest + path)."""
    return stable_digest("persist", "description", image_digest, path)


def discovery_key(scope: str, site_key: str) -> str:
    """The disk key of one site discovery.

    *site_key* is the site's ``content_key`` for generated fleet sites
    (content-addressed, scope-free reuse) or its name for hand-built
    sites, in which case *scope* -- a digest of the run's seed and
    sites spec -- keeps worlds built from different seeds apart.
    """
    return stable_digest("persist", "discovery", scope, site_key)


def evaluation_key(cell_key: tuple) -> str:
    """The disk key of one evaluation cell (the engine's cache tuple)."""
    return stable_digest("persist", "evaluation",
                         *(str(part) for part in cell_key))


def record_checksum(layer: str, key: str, fingerprint: Optional[str],
                    payload: dict) -> str:
    """The per-record content checksum (over the canonical payload)."""
    return stable_digest("persist-sum", layer, key, fingerprint or "",
                         _jsonl.dump_line(payload))[:16]


# -- value serialisation ---------------------------------------------------------
#
# Payloads are plain JSON dicts.  Descriptions and environments
# round-trip completely; evaluation reports round-trip *summary-grade*
# (verdict, ordered determinants, reasons, environment, timing) -- the
# same discipline the matrix journal uses -- so a disk-served cell
# renders byte-identically to a cold one without persisting staging
# artefacts (resolution plans, run environments) that are cheap to
# rebuild and expensive to validate.


def description_to_payload(description: BinaryDescription) -> dict:
    return {
        "path": description.path,
        "file_format": description.file_format,
        "isa_name": description.isa_name,
        "bits": description.bits,
        "is_dynamic": description.is_dynamic,
        "is_shared_library": description.is_shared_library,
        "soname": description.soname,
        "library_version": list(description.library_version),
        "needed": list(description.needed),
        "version_references": [list(ref)
                               for ref in description.version_references],
        "version_definitions": list(description.version_definitions),
        "required_glibc": description.required_glibc,
        "comment": list(description.comment),
        "mpi_implementation": description.mpi_implementation,
        "build_compiler_hint": description.build_compiler_hint,
        "build_libc_hint": description.build_libc_hint,
        "gathered_via": description.gathered_via,
    }


def description_from_payload(payload: dict) -> BinaryDescription:
    return BinaryDescription(
        path=payload["path"],
        file_format=payload["file_format"],
        isa_name=payload["isa_name"],
        bits=int(payload["bits"]),
        is_dynamic=bool(payload["is_dynamic"]),
        is_shared_library=bool(payload["is_shared_library"]),
        soname=payload.get("soname"),
        library_version=tuple(int(part) for part
                              in payload.get("library_version", ())),
        needed=tuple(payload.get("needed", ())),
        version_references=tuple(
            (ref[0], ref[1])
            for ref in payload.get("version_references", ())),
        version_definitions=tuple(payload.get("version_definitions", ())),
        required_glibc=payload.get("required_glibc"),
        comment=tuple(payload.get("comment", ())),
        mpi_implementation=payload.get("mpi_implementation"),
        build_compiler_hint=payload.get("build_compiler_hint"),
        build_libc_hint=payload.get("build_libc_hint"),
        gathered_via=payload.get("gathered_via", "objdump"))


def environment_to_payload(environment: EnvironmentDescription) -> dict:
    return {
        "hostname": environment.hostname,
        "isa": environment.isa,
        "os_type": environment.os_type,
        "os_version": environment.os_version,
        "distro": environment.distro,
        "libc_version": environment.libc_version,
        "libc_path": environment.libc_path,
        "libc_via": environment.libc_via,
        "env_tool": environment.env_tool,
        "loaded_stacks": list(environment.loaded_stacks),
        "stacks": [{
            "label": stack.label,
            "kind": stack.kind,
            "version": stack.version,
            "compiler_family": stack.compiler_family,
            "compiler_version": stack.compiler_version,
            "prefix": stack.prefix,
            "via": stack.via,
            "module_name": stack.module_name,
        } for stack in environment.stacks],
    }


def environment_from_payload(payload: dict) -> EnvironmentDescription:
    return EnvironmentDescription(
        hostname=payload["hostname"],
        isa=payload["isa"],
        os_type=payload["os_type"],
        os_version=payload.get("os_version"),
        distro=payload.get("distro"),
        libc_version=payload.get("libc_version"),
        libc_path=payload.get("libc_path"),
        libc_via=payload.get("libc_via"),
        stacks=tuple(DiscoveredStack(
            label=stack["label"],
            kind=stack.get("kind"),
            version=stack.get("version"),
            compiler_family=stack.get("compiler_family"),
            compiler_version=stack.get("compiler_version"),
            prefix=stack.get("prefix"),
            via=stack.get("via", "path-search"),
            module_name=stack.get("module_name"),
        ) for stack in payload.get("stacks", ())),
        env_tool=payload.get("env_tool"),
        loaded_stacks=tuple(payload.get("loaded_stacks", ())))


def report_to_payload(report: TargetReport) -> dict:
    prediction = report.prediction
    return {
        "ready": prediction.ready,
        "mode": prediction.mode.value,
        "determinants": [[result.key, result.outcome.value, result.detail]
                         for result in prediction.determinants],
        "reasons": list(prediction.reasons),
        "missing_libraries": list(prediction.missing_libraries),
        "unsatisfied_versions": [list(pair) for pair
                                 in prediction.unsatisfied_versions],
        "requires_resolution": prediction.requires_resolution,
        "feam_seconds": round(report.feam_seconds, 6),
        "selected_stack_prefix": report.selected_stack_prefix,
        "output_path": report.output_path,
        "environment": environment_to_payload(report.environment),
    }


def report_from_payload(payload: dict) -> TargetReport:
    """A summary-grade :class:`TargetReport` from its disk payload.

    Determinant order is preserved (the verbose grid prints them in
    registry order); resolution plans and run environments are not
    persisted and come back ``None``.
    """
    determinants = tuple(
        DeterminantResult(entry[0], Outcome(entry[1]),
                          entry[2] if len(entry) > 2 else "")
        for entry in payload.get("determinants", ()))
    prediction = Prediction(
        ready=bool(payload.get("ready", True)),
        mode=PredictionMode(payload.get("mode", "basic")),
        determinants=determinants,
        missing_libraries=tuple(payload.get("missing_libraries", ())),
        unsatisfied_versions=tuple(
            (pair[0], pair[1])
            for pair in payload.get("unsatisfied_versions", ())),
        requires_resolution=bool(payload.get("requires_resolution",
                                             False)),
        reasons=tuple(payload.get("reasons", ())))
    return TargetReport(
        prediction=prediction,
        environment=environment_from_payload(payload["environment"]),
        feam_seconds=float(payload.get("feam_seconds", 0.0)),
        selected_stack_prefix=payload.get("selected_stack_prefix"),
        output_path=payload.get("output_path"))


# -- the store -------------------------------------------------------------------


class _Segment:
    """One layer's on-disk state: appender, index, accounting."""

    __slots__ = ("path", "appender", "index", "fingerprints", "bytes",
                 "loaded")

    def __init__(self, path: str) -> None:
        self.path = path
        self.appender: Optional[_jsonl.JsonlAppender] = None
        #: key -> payload (newest record wins).
        self.index: dict[str, dict] = {}
        #: key -> fingerprint binding (None = unbound).
        self.fingerprints: dict[str, Optional[str]] = {}
        self.bytes = 0
        self.loaded = False


class PersistentStore:
    """The schema-versioned, digest-keyed on-disk cache tier.

    One instance owns one cache *directory* (three JSONL segments plus
    whatever a future schema adds).  Thread-safe: the engine's worker
    pool reads and writes through it concurrently.  Segments are
    loaded lazily (first access per layer) and indexed in memory;
    appends are flushed per line so a killed run loses at most the
    in-flight record.
    """

    def __init__(self, directory: str, *,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 scope: str = "default") -> None:
        self.directory = directory
        self.max_bytes = max(0, int(max_bytes))
        self.scope = scope
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)
        self._segments = {
            layer: _Segment(os.path.join(directory, f"{layer}.jsonl"))
            for layer in LAYERS}
        #: (layer, key) -> monotonic touch tick; orders LRU eviction.
        self._touch: dict[tuple[str, str], int] = {}
        self._tick = 0
        #: reason -> count, quarantines observed by this process.
        self.quarantined: dict[str, int] = {}
        self.torn_tail = 0
        self.disk_hits = 0
        self.stores = 0

    # -- the read-through / write-behind protocol ----------------------

    def load(self, layer: str, key: str,
             fingerprint: Optional[str] = None) -> Optional[dict]:
        """The payload stored for *key*, or None (miss / stale).

        With a *fingerprint*, a record bound to a different fingerprint
        is dropped as stale (counted on ``persist.cache.stale``) --
        the environment it was computed against no longer exists.
        """
        segment = self._segments[layer]
        with self._lock:
            self._ensure_loaded(layer)
            payload = segment.index.get(key)
            if payload is None:
                return None
            bound = segment.fingerprints.get(key)
            if (fingerprint is not None and bound is not None
                    and bound != fingerprint):
                del segment.index[key]
                del segment.fingerprints[key]
                obs.counter("persist.cache.stale").inc()
                obs.event("persist.stale", layer=layer, key=key,
                          bound=bound, current=fingerprint)
                return None
            self._tick += 1
            self._touch[(layer, key)] = self._tick
            self.disk_hits += 1
        obs.counter("persist.cache.disk_hits").inc()
        obs.counter(f"persist.cache.{layer}.disk_hits").inc()
        return payload

    def store(self, layer: str, key: str, payload: dict,
              fingerprint: Optional[str] = None) -> None:
        """Append one record (write-behind; flushed immediately)."""
        record = {
            "schema": SCHEMA_VERSION,
            "layer": layer,
            "key": key,
            "fingerprint": fingerprint,
            "payload": payload,
            "sum": record_checksum(layer, key, fingerprint, payload),
        }
        line = _jsonl.dump_line(record)
        # Durability chaos: a seeded cache-torn-write cuts this append
        # short, exactly like power loss mid-write.
        if faults.fires(CACHE_SITE, faults.FaultKind.CACHE_TORN_WRITE,
                        key=key):
            line = line[:max(1, len(line) // 2)]
        over_cap = False
        segment = self._segments[layer]
        with self._lock:
            self._ensure_loaded(layer)
            appender = self._appender(segment)
            appender.append_line(line)
            segment.bytes += len(line) + 1
            segment.index[key] = payload
            segment.fingerprints[key] = fingerprint
            self._tick += 1
            self._touch[(layer, key)] = self._tick
            self.stores += 1
            over_cap = self.max_bytes and segment.bytes > self.max_bytes
        obs.counter("persist.cache.stores").inc()
        obs.counter(f"persist.cache.{layer}.stores").inc()
        if over_cap:
            self.compact()

    def drop(self, layer: str, key: str) -> bool:
        """Invalidate one key (tombstone append; compaction erases it)."""
        segment = self._segments[layer]
        with self._lock:
            self._ensure_loaded(layer)
            present = key in segment.index
            segment.index.pop(key, None)
            segment.fingerprints.pop(key, None)
            self._touch.pop((layer, key), None)
            record = {"schema": SCHEMA_VERSION, "layer": layer,
                      "key": key, "deleted": True,
                      "sum": record_checksum(layer, key, None,
                                             {"deleted": True})}
            line = _jsonl.dump_line(record)
            appender = self._appender(segment)
            appender.append_line(line)
            segment.bytes += len(line) + 1
        return present

    # -- segment loading ----------------------------------------------

    def _appender(self, segment: _Segment) -> _jsonl.JsonlAppender:
        if segment.appender is None:
            segment.appender = _jsonl.JsonlAppender(segment.path)
        return segment.appender

    def _ensure_loaded(self, layer: str) -> None:
        """Index a segment on first access (caller holds the lock)."""
        segment = self._segments[layer]
        if segment.loaded:
            return
        segment.loaded = True
        if not os.path.exists(segment.path):
            return
        with open(segment.path, "r", encoding="utf-8") as handle:
            text = handle.read()
        segment.bytes = len(text.encode("utf-8"))
        lines = text.splitlines()
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()),
            default=-1)
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("not an object")
            except ValueError:
                if lineno == last_content:
                    # The torn tail of a killed run: expected, skipped.
                    self.torn_tail += 1
                    obs.counter("persist.cache.torn_tail").inc()
                else:
                    self._quarantine(layer, "torn-write", lineno + 1)
                continue
            issue = self._vet(layer, record)
            if issue is not None:
                self._quarantine(layer, issue, lineno + 1,
                                 key=record.get("key"))
                continue
            key = record["key"]
            if record.get("deleted"):
                segment.index.pop(key, None)
                segment.fingerprints.pop(key, None)
                continue
            # Durability chaos: a seeded cache-corruption marks this
            # record as rotted at rest; quarantine instead of serving.
            if faults.fires(CACHE_SITE,
                            faults.FaultKind.CACHE_CORRUPTION, key=key):
                self._quarantine(layer, "cache-corruption", lineno + 1,
                                 key=key)
                segment.index.pop(key, None)
                segment.fingerprints.pop(key, None)
                continue
            segment.index[key] = record["payload"]
            segment.fingerprints[key] = record.get("fingerprint")
            self._tick += 1
            self._touch[(layer, key)] = self._tick

    @staticmethod
    def _vet(layer: str, record: dict) -> Optional[str]:
        """The quarantine reason for a decoded record, or None (ok)."""
        schema = record.get("schema")
        if isinstance(schema, int) and schema > SCHEMA_VERSION:
            return "newer-schema"
        key = record.get("key")
        if not isinstance(key, str) or record.get("layer") != layer:
            return "malformed"
        if record.get("deleted"):
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict):
            return "malformed"
        expected = record_checksum(layer, key, record.get("fingerprint"),
                                   payload)
        if record.get("sum") != expected:
            return "checksum"
        return None

    def _quarantine(self, layer: str, reason: str, lineno: int,
                    key: Optional[str] = None) -> None:
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1
        obs.counter("persist.cache.quarantined").inc()
        obs.counter(f"persist.cache.quarantined.{reason}").inc()
        obs.event("persist.quarantine", layer=layer, reason=reason,
                  line=lineno, key=key)

    # -- maintenance (the `feam cache` verbs) --------------------------

    def _scan(self, layer: str) -> tuple[list, dict]:
        """One segment's fsck: (ordered valid records, issue counts).

        Reads the real bytes on disk -- independent of the in-memory
        index and of any installed fault plan -- so ``verify`` reports
        what a fresh process would find.
        """
        segment = self._segments[layer]
        issues = {"torn_tail": 0, "torn_write": 0, "checksum": 0,
                  "newer_schema": 0, "malformed": 0}
        by_key: dict[str, dict] = {}
        if not os.path.exists(segment.path):
            return [], issues
        with open(segment.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()),
            default=-1)
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("not an object")
            except ValueError:
                issues["torn_tail" if lineno == last_content
                       else "torn_write"] += 1
                continue
            issue = self._vet(layer, record)
            if issue is not None:
                issues[issue.replace("-", "_")] += 1
                continue
            if record.get("deleted"):
                by_key.pop(record["key"], None)
            else:
                by_key[record["key"]] = record
        return list(by_key.values()), issues

    def verify(self) -> dict:
        """Full fsck of every segment; ``ok`` iff nothing is corrupt.

        A torn tail counts as an issue here -- verify is the explicit
        integrity check, and :meth:`compact` repairs it -- even though
        the serving path tolerates it silently.
        """
        layers = {}
        ok = True
        for layer in LAYERS:
            records, issues = self._scan(layer)
            problems = sum(issues.values())
            layers[layer] = dict(issues, entries=len(records),
                                 bytes=self._segment_size(layer))
            ok = ok and problems == 0
        return {"ok": ok, "directory": self.directory,
                "schema": SCHEMA_VERSION, "layers": layers}

    def compact(self) -> dict:
        """Rewrite every segment: newest valid record per key survives,
        corrupt/torn/superseded/tombstoned lines drop, and the
        per-segment byte cap evicts least-recently-used entries first.
        Atomic per segment (temp file + rename)."""
        summary = {}
        with self._lock:
            for layer in LAYERS:
                segment = self._segments[layer]
                records, issues = self._scan(layer)
                # Least-recently-used first, so cap eviction (oldest
                # first by order) drops the coldest entries.
                records.sort(key=lambda record: self._touch.get(
                    (layer, record["key"]), 0))
                evicted = _jsonl.cap_jsonl(
                    segment.path, records,
                    max_bytes=self.max_bytes or None,
                    counter="persist.cache.evicted",
                    always_rewrite=True)
                if segment.appender is not None:
                    segment.appender.close()
                    segment.appender = None
                kept = {record["key"] for record in records[evicted:]}
                if segment.loaded:
                    for key in list(segment.index):
                        if key not in kept:
                            segment.index.pop(key, None)
                            segment.fingerprints.pop(key, None)
                segment.bytes = self._segment_size(layer)
                summary[layer] = dict(
                    issues, kept=len(kept), evicted=evicted,
                    bytes=segment.bytes)
            obs.counter("persist.cache.compactions").inc()
        return summary

    def clear(self) -> int:
        """Delete every segment; returns how many entries were dropped."""
        dropped = 0
        with self._lock:
            for layer in LAYERS:
                segment = self._segments[layer]
                self._ensure_loaded(layer)
                dropped += len(segment.index)
                if segment.appender is not None:
                    segment.appender.close()
                    segment.appender = None
                if os.path.exists(segment.path):
                    os.remove(segment.path)
                segment.index.clear()
                segment.fingerprints.clear()
                segment.bytes = 0
                segment.loaded = True
            self._touch.clear()
        return dropped

    def _segment_size(self, layer: str) -> int:
        path = self._segments[layer].path
        return os.path.getsize(path) if os.path.exists(path) else 0

    def stats(self) -> dict:
        """Point-in-time store statistics (the ``feam cache stats`` view)."""
        with self._lock:
            layers = {}
            for layer in LAYERS:
                self._ensure_loaded(layer)
                segment = self._segments[layer]
                layers[layer] = {"entries": len(segment.index),
                                 "bytes": self._segment_size(layer)}
            return {
                "directory": self.directory,
                "schema": SCHEMA_VERSION,
                "scope": self.scope,
                "max_bytes": self.max_bytes,
                "layers": layers,
                "entries": sum(info["entries"]
                               for info in layers.values()),
                "bytes": sum(info["bytes"] for info in layers.values()),
                "disk_hits": self.disk_hits,
                "stores": self.stores,
                "quarantined": dict(sorted(self.quarantined.items())),
                "torn_tail": self.torn_tail,
            }

    def close(self) -> None:
        """Flush and close; compact first when a segment is over cap."""
        over = any(self.max_bytes
                   and self._segment_size(layer) > self.max_bytes
                   for layer in LAYERS)
        if over:
            self.compact()
        with self._lock:
            for segment in self._segments.values():
                if segment.appender is not None:
                    segment.appender.close()
                    segment.appender = None

    def __enter__(self) -> "PersistentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
