"""The prediction model (paper Section III, Figure 1).

Four determinants decide execution readiness:

1. **ISA compatibility** -- was the binary compiled for an ISA (and word
   length) the target executes?
2. **MPI stack compatibility** -- is a *usable* stack of the same
   implementation type available?  (Same type only; versions are not
   considered compatible or incompatible a priori -- Section III.B.)
3. **C library compatibility** -- is the target's C library version >= the
   binary's required C library version?
4. **Shared library compatibility** -- is every required shared library
   available (same major version), with its referenced symbol versions
   defined?

This module defines the result types; the Target Evaluation Component
(:mod:`repro.core.evaluation`) computes them.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Union

from repro.core.discovery import DiscoveredStack


class Determinant(enum.Enum):
    """The four determinants of Figure 1."""

    ISA = "isa-compatibility"
    MPI_STACK = "mpi-stack-compatibility"
    C_LIBRARY = "c-library-compatibility"
    SHARED_LIBRARIES = "shared-library-compatibility"


class Outcome(enum.Enum):
    """Tri-state outcome of one determinant check.

    ``UNKNOWN`` covers both "could not be determined" (e.g. the site's
    libc version is unreadable) and "not evaluated"; it must never be
    conflated with a pass in reports, although the prediction itself
    remains optimistic about unknowns (the paper only stops on a
    determined incompatibility).
    """

    PASS = "pass"
    FAIL = "fail"
    UNKNOWN = "unknown"

    @classmethod
    def from_tristate(cls, value: Union["Outcome", bool, None]) -> "Outcome":
        """Coerce the legacy ``True``/``False``/``None`` encoding."""
        if isinstance(value, cls):
            return value
        if value is True:
            return cls.PASS
        if value is False:
            return cls.FAIL
        return cls.UNKNOWN

    @property
    def passed(self) -> Optional[bool]:
        """The legacy tri-bool view (True/False/None)."""
        if self is Outcome.PASS:
            return True
        if self is Outcome.FAIL:
            return False
        return None


class PredictionMode(enum.Enum):
    """Whether the optional source phase contributed (Section VI.B)."""

    BASIC = "basic"
    EXTENDED = "extended"


@dataclasses.dataclass(frozen=True)
class DeterminantResult:
    """Outcome of evaluating one determinant.

    *determinant* is one of the four :class:`Determinant` members for the
    paper's checks, or a plain string key for custom checks registered
    with the determinant pipeline.  *outcome* accepts the legacy
    ``True``/``False``/``None`` encoding and normalises it.
    """

    determinant: Union[Determinant, str]
    outcome: Union[Outcome, bool, None]
    detail: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "outcome", Outcome.from_tristate(self.outcome))

    @property
    def key(self) -> str:
        """The determinant's stable string key (registry/report key)."""
        if isinstance(self.determinant, Determinant):
            return self.determinant.value
        return str(self.determinant)

    @property
    def passed(self) -> Optional[bool]:
        """Legacy tri-bool view: True = pass, False = fail, None = unknown."""
        return self.outcome.passed


@dataclasses.dataclass(frozen=True)
class StackAssessment:
    """Functional test results for one candidate MPI stack (Section V.C)."""

    stack: DiscoveredStack
    native_hello_ok: Optional[bool] = None
    imported_hello_ok: Optional[bool] = None
    notes: str = ""

    @property
    def usable(self) -> bool:
        """A stack is usable when its functional tests did not fail."""
        if self.native_hello_ok is False:
            return False
        if self.imported_hello_ok is False:
            return False
        return self.native_hello_ok is True or self.imported_hello_ok is True


@dataclasses.dataclass(frozen=True)
class Prediction:
    """FEAM's verdict for one binary at one target site."""

    ready: bool
    mode: PredictionMode
    determinants: tuple[DeterminantResult, ...]
    stack_assessments: tuple[StackAssessment, ...] = ()
    selected_stack: Optional[DiscoveredStack] = None
    missing_libraries: tuple[str, ...] = ()
    unsatisfied_versions: tuple[tuple[str, str], ...] = ()
    #: True when the verdict depends on the resolution model's staging.
    requires_resolution: bool = False
    reasons: tuple[str, ...] = ()

    def determinant(self, which: Union[Determinant, str]) -> DeterminantResult:
        key = which.value if isinstance(which, Determinant) else str(which)
        for result in self.determinants:
            if result.determinant is which or result.key == key:
                return result
        return DeterminantResult(which, Outcome.UNKNOWN, "not evaluated")

    @property
    def failed_determinants(self) -> tuple[Union[Determinant, str], ...]:
        return tuple(r.determinant for r in self.determinants
                     if r.outcome is Outcome.FAIL)

    @property
    def unknown_determinants(self) -> tuple[Union[Determinant, str], ...]:
        """Determinants that were evaluated but could not be decided."""
        return tuple(r.determinant for r in self.determinants
                     if r.outcome is Outcome.UNKNOWN)
