"""The prediction model (paper Section III, Figure 1).

Four determinants decide execution readiness:

1. **ISA compatibility** -- was the binary compiled for an ISA (and word
   length) the target executes?
2. **MPI stack compatibility** -- is a *usable* stack of the same
   implementation type available?  (Same type only; versions are not
   considered compatible or incompatible a priori -- Section III.B.)
3. **C library compatibility** -- is the target's C library version >= the
   binary's required C library version?
4. **Shared library compatibility** -- is every required shared library
   available (same major version), with its referenced symbol versions
   defined?

This module defines the result types; the Target Evaluation Component
(:mod:`repro.core.evaluation`) computes them.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.core.discovery import DiscoveredStack


class Determinant(enum.Enum):
    """The four determinants of Figure 1."""

    ISA = "isa-compatibility"
    MPI_STACK = "mpi-stack-compatibility"
    C_LIBRARY = "c-library-compatibility"
    SHARED_LIBRARIES = "shared-library-compatibility"


class PredictionMode(enum.Enum):
    """Whether the optional source phase contributed (Section VI.B)."""

    BASIC = "basic"
    EXTENDED = "extended"


@dataclasses.dataclass(frozen=True)
class DeterminantResult:
    """Outcome of evaluating one determinant."""

    determinant: Determinant
    #: True = compatible; False = incompatible; None = not evaluated
    #: (the paper stops after the first failing gate).
    passed: Optional[bool]
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class StackAssessment:
    """Functional test results for one candidate MPI stack (Section V.C)."""

    stack: DiscoveredStack
    native_hello_ok: Optional[bool] = None
    imported_hello_ok: Optional[bool] = None
    notes: str = ""

    @property
    def usable(self) -> bool:
        """A stack is usable when its functional tests did not fail."""
        if self.native_hello_ok is False:
            return False
        if self.imported_hello_ok is False:
            return False
        return self.native_hello_ok is True or self.imported_hello_ok is True


@dataclasses.dataclass(frozen=True)
class Prediction:
    """FEAM's verdict for one binary at one target site."""

    ready: bool
    mode: PredictionMode
    determinants: tuple[DeterminantResult, ...]
    stack_assessments: tuple[StackAssessment, ...] = ()
    selected_stack: Optional[DiscoveredStack] = None
    missing_libraries: tuple[str, ...] = ()
    unsatisfied_versions: tuple[tuple[str, str], ...] = ()
    #: True when the verdict depends on the resolution model's staging.
    requires_resolution: bool = False
    reasons: tuple[str, ...] = ()

    def determinant(self, which: Determinant) -> DeterminantResult:
        for result in self.determinants:
            if result.determinant is which:
                return result
        return DeterminantResult(which, None, "not evaluated")

    @property
    def failed_determinants(self) -> tuple[Determinant, ...]:
        return tuple(r.determinant for r in self.determinants
                     if r.passed is False)
