"""Source-phase bundles.

Running FEAM's optional source phase at a guaranteed execution environment
produces a bundle: the binary's description, descriptions *and copies* of
every shared library it links against, hello-world MPI programs compiled
with the binary's stack, and the guaranteed environment's description.
"The output from a source phase is bundled for the user and must be copied
to each target site if it is to be used in a target phase" (Section V).

The paper measures bundles at ~45 MB for all test binaries at a site
combined; :attr:`SourceBundle.copy_bytes` provides the same measurement
here.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.description import BinaryDescription, LibraryRecord
from repro.core.discovery import EnvironmentDescription


@dataclasses.dataclass(frozen=True)
class HelloPrograms:
    """Hello-world MPI binaries compiled at the guaranteed environment."""

    images: dict[str, bytes]  # language value -> ELF image
    stack_label: str
    compiled_at: str

    def best(self) -> Optional[bytes]:
        """The preferred probe (C when available)."""
        for language in ("c", "fortran", "c++"):
            if language in self.images:
                return self.images[language]
        return next(iter(self.images.values()), None)


@dataclasses.dataclass(frozen=True)
class SourceBundle:
    """Everything a source phase hands to target phases."""

    description: BinaryDescription
    libraries: tuple[LibraryRecord, ...]
    hello: Optional[HelloPrograms]
    guaranteed_environment: EnvironmentDescription
    created_at: str

    @property
    def copy_bytes(self) -> int:
        """Total size of the gathered library copies, in bytes."""
        return sum(record.copy_size for record in self.libraries)

    @property
    def copied_count(self) -> int:
        return sum(1 for record in self.libraries if record.copied)

    def library(self, soname: str) -> Optional[LibraryRecord]:
        """The record for one soname, or None."""
        for record in self.libraries:
            if record.soname == soname:
                return record
        return None

    def merged_with(self, other: "SourceBundle") -> "SourceBundle":
        """Union of two bundles' libraries (site-wide bundle composition).

        The paper composes one bundle per site holding "all the shared
        libraries required by all of our test binaries at a site"; merging
        keeps the first record for each soname.
        """
        seen = {record.soname for record in self.libraries}
        extra = tuple(r for r in other.libraries if r.soname not in seen)
        return dataclasses.replace(self, libraries=self.libraries + extra)
