"""FEAM user configuration.

Before running FEAM, a user specifies (via a configuration file) the
site's serial and parallel submission scripts -- "the only information
about a new site our methods require the user to determine" -- plus which
phase to run, the binary location, and optional per-MPI-type ``mpiexec``
overrides (paper Sections V and V.C).
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class FeamConfig:
    """Per-run FEAM configuration (the paper's configuration file)."""

    #: Queue used for FEAM's own serial work (description/discovery jobs).
    serial_queue: str = "debug"
    #: Queue used for hello-world MPI functional tests.
    parallel_queue: str = "debug"
    #: Per-MPI-type launch command override; ``mpiexec`` by default.
    mpiexec_overrides: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Ranks used for hello-world tests.
    hello_nprocs: int = 2
    #: Recursion limit of the resolution model.
    max_resolution_depth: int = 8
    #: Sonames never copied by the resolution model (Section IV copies
    #: every shared library "except for the C library").
    copy_excludes: tuple[str, ...] = (
        "libc.so.6", "ld-linux.so.2", "ld-linux-x86-64.so.2")
    #: Where library copies are staged at a target site.
    staging_root: str = "/home/user/feam/stage"
    #: Where FEAM writes its output files.
    output_root: str = "/home/user/feam/out"
    #: Timing model of FEAM's own (scheduler-visible) work, in seconds.
    #: Fixed target-phase overhead (description + discovery bookkeeping).
    feam_base_seconds: float = 10.0
    #: Added per NEEDED entry of the binary being described.
    feam_seconds_per_dependency: float = 0.2
    #: One hello-world functional test of a candidate MPI stack.
    stack_assessment_seconds: float = 25.0
    #: Per-library loader-visibility check.
    library_check_seconds: float = 0.5
    #: Per-library resolution-model analysis and staging.
    resolution_seconds_per_library: float = 2.0
    #: Post-resolution retest of the imported hello-world.
    hello_retest_seconds: float = 20.0
    #: Resilience: attempts per engine operation (discover/describe/
    #: evaluate) before the cell degrades to UNKNOWN.
    retry_max_attempts: int = 3
    #: Resilience: backoff before the first retry, in simulated seconds.
    retry_base_seconds: float = 2.0
    #: Resilience: backoff growth factor per retry.
    retry_backoff_multiplier: float = 2.0
    #: Resilience: cap on a single backoff delay, in simulated seconds.
    retry_max_delay_seconds: float = 30.0
    #: Resilience: fractional (seeded, deterministic) backoff jitter.
    retry_jitter: float = 0.25
    #: Resilience: consecutive cell failures that open a site's breaker.
    breaker_failure_threshold: int = 3
    #: Resilience: quarantined cells skipped before a half-open probe.
    breaker_probe_after: int = 2
    #: Resilience: per-cell simulated-seconds retry budget.
    cell_deadline_seconds: float = 120.0
    #: Matrix worker-pool size; 0 picks ``min(32, 4 x cpu_count)``.
    matrix_workers: int = 0
    #: Lock-striped segments per engine cache layer.
    cache_shards: int = 16
    #: Telemetry: wide-event ring-buffer capacity (oldest records are
    #: evicted -- and counted -- once a run emits more than this).
    wide_ring_size: int = 65536
    #: Telemetry: tail sampling keeps a seeded 1-in-N head sample of
    #: clean cells' span trees; 0 keeps none beyond degraded/slow cells.
    sampling_head_n: int = 100
    #: Telemetry: span trees of cells slower than this (wall seconds)
    #: are always kept (matches the default cell-latency p95 SLO).
    sampling_latency_slo_seconds: float = 2.0
    #: Run ledger: warehouse directory (``FEAM_LEDGER_DIR`` and the
    #: ``--ledger`` flag override it; ``--no-ledger`` disables writes).
    ledger_dir: str = ".feam/runs"
    #: Run ledger: manifests kept before oldest-run eviction.
    ledger_max_runs: int = 512
    #: Persistent cache: store directory (``FEAM_CACHE_DIR`` and the
    #: ``--cache-dir`` flag override it; empty = no on-disk tier).
    cache_dir: str = ""
    #: Persistent cache: per-segment byte cap before LRU eviction.
    cache_max_bytes: int = 64 * 1024 * 1024
    #: Persistent cache: master switch (``--no-cache`` clears it).
    persist: bool = True

    def mpiexec_for(self, mpi_type: Optional[str]) -> str:
        """The launch command for an MPI type (Section V.C default)."""
        if mpi_type and mpi_type in self.mpiexec_overrides:
            return self.mpiexec_overrides[mpi_type]
        return "mpiexec"

    @staticmethod
    def parse(text: str) -> "FeamConfig":
        """Parse the simple ``key = value`` configuration-file format.

        Recognised keys: ``serial_queue``, ``parallel_queue``,
        ``hello_nprocs``, ``max_resolution_depth``, ``staging_root``,
        ``output_root``, the timing-model keys (``feam_base_seconds``,
        ``feam_seconds_per_dependency``, ``stack_assessment_seconds``,
        ``library_check_seconds``, ``resolution_seconds_per_library``,
        ``hello_retest_seconds``), the resilience keys (``retry_*``,
        ``breaker_*``, ``cell_deadline_seconds``), the engine pool keys
        (``matrix_workers``, ``cache_shards``), the telemetry keys
        (``wide_ring_size``, ``sampling_head_n``,
        ``sampling_latency_slo_seconds``), the run-ledger keys
        (``ledger_dir``, ``ledger_max_runs``), the persistent-cache
        keys (``cache_dir``, ``cache_max_bytes``, ``persist``), and
        ``mpiexec.<MPI type>`` overrides.
        """
        kwargs: dict = {}
        overrides: dict[str, str] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                raise ValueError(f"config line {lineno}: expected key = value")
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if key.startswith("mpiexec."):
                overrides[key[len("mpiexec."):]] = value
            elif key in ("serial_queue", "parallel_queue",
                         "staging_root", "output_root", "ledger_dir",
                         "cache_dir"):
                kwargs[key] = value
            elif key in ("hello_nprocs", "max_resolution_depth",
                         "retry_max_attempts", "breaker_failure_threshold",
                         "breaker_probe_after", "matrix_workers",
                         "cache_shards", "wide_ring_size",
                         "sampling_head_n", "ledger_max_runs",
                         "cache_max_bytes"):
                kwargs[key] = int(value)
            elif key == "persist":
                if value.lower() not in ("true", "false"):
                    raise ValueError(
                        f"config line {lineno}: persist must be "
                        "true or false")
                kwargs[key] = value.lower() == "true"
            elif key in ("feam_base_seconds", "feam_seconds_per_dependency",
                         "stack_assessment_seconds", "library_check_seconds",
                         "resolution_seconds_per_library",
                         "hello_retest_seconds", "retry_base_seconds",
                         "retry_backoff_multiplier",
                         "retry_max_delay_seconds", "retry_jitter",
                         "cell_deadline_seconds",
                         "sampling_latency_slo_seconds"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"config line {lineno}: unknown key {key!r}")
        if overrides:
            kwargs["mpiexec_overrides"] = overrides
        return FeamConfig(**kwargs)

    def render(self) -> str:
        """Serialize back to the configuration-file format."""
        lines = [
            f"serial_queue = {self.serial_queue}",
            f"parallel_queue = {self.parallel_queue}",
            f"hello_nprocs = {self.hello_nprocs}",
            f"max_resolution_depth = {self.max_resolution_depth}",
            f"staging_root = {self.staging_root}",
            f"output_root = {self.output_root}",
            f"feam_base_seconds = {self.feam_base_seconds}",
            f"feam_seconds_per_dependency = {self.feam_seconds_per_dependency}",
            f"stack_assessment_seconds = {self.stack_assessment_seconds}",
            f"library_check_seconds = {self.library_check_seconds}",
            f"resolution_seconds_per_library = "
            f"{self.resolution_seconds_per_library}",
            f"hello_retest_seconds = {self.hello_retest_seconds}",
            f"retry_max_attempts = {self.retry_max_attempts}",
            f"retry_base_seconds = {self.retry_base_seconds}",
            f"retry_backoff_multiplier = {self.retry_backoff_multiplier}",
            f"retry_max_delay_seconds = {self.retry_max_delay_seconds}",
            f"retry_jitter = {self.retry_jitter}",
            f"breaker_failure_threshold = {self.breaker_failure_threshold}",
            f"breaker_probe_after = {self.breaker_probe_after}",
            f"cell_deadline_seconds = {self.cell_deadline_seconds}",
            f"matrix_workers = {self.matrix_workers}",
            f"cache_shards = {self.cache_shards}",
            f"wide_ring_size = {self.wide_ring_size}",
            f"sampling_head_n = {self.sampling_head_n}",
            f"sampling_latency_slo_seconds = "
            f"{self.sampling_latency_slo_seconds}",
            f"ledger_dir = {self.ledger_dir}",
            f"ledger_max_runs = {self.ledger_max_runs}",
            f"cache_dir = {self.cache_dir}",
            f"cache_max_bytes = {self.cache_max_bytes}",
            f"persist = {'true' if self.persist else 'false'}",
        ]
        for mpi_type, command in sorted(self.mpiexec_overrides.items()):
            lines.append(f"mpiexec.{mpi_type} = {command}")
        return "\n".join(lines) + "\n"
