"""The Environment Discovery Component (EDC).

Gathers the paper's Figure 4 information about a computing site:

* ISA format (``uname -p``);
* operating system (``/proc/version`` confirmed by ``/etc/*release``);
* C library version (executing the C library binary; C-library API
  fallback);
* available / currently loaded MPI stacks -- via Environment Modules or
  SoftEnv when present, otherwise by searching for the libraries each
  implementation distributes (``libmpi``, ``libmpich``) and for compiler
  wrappers, mining path names like ``/opt/openmpi-1.4.3-intel`` for the
  implementation/compiler combination (Section V.B);
* missing shared libraries of a migrated application.
"""

from __future__ import annotations

import dataclasses
import posixpath
import re
from typing import Optional

from repro import obs
from repro.core.description import BinaryDescription
from repro.sites.modules import EnvironmentModules
from repro.sites.softenv import SoftEnv
from repro.sysmodel import faults
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.sysmodel.library import parse_library_name
from repro.tools.toolbox import Toolbox, ToolUnavailable

#: Implementation names keyed by their path/module slug.
_KIND_BY_SLUG = {
    "openmpi": "Open MPI",
    "mpich2": "MPICH2",
    "mvapich2": "MVAPICH2",
}

_COMPILER_FAMILIES = ("intel", "gnu", "pgi")

_PREFIX_RE = re.compile(
    r"(?P<impl>openmpi|mpich2|mvapich2)-(?P<version>[0-9][0-9a-zA-Z.]*)"
    r"-(?P<compiler>intel|gnu|pgi)")


@dataclasses.dataclass(frozen=True)
class DiscoveredStack:
    """One MPI stack found at a site."""

    label: str
    kind: Optional[str]  # "Open MPI" | "MPICH2" | "MVAPICH2"
    version: Optional[str]
    compiler_family: Optional[str]
    compiler_version: Optional[str]
    prefix: Optional[str]
    via: str  # "modules" | "softenv" | "path-search"
    module_name: Optional[str] = None

    @property
    def bindir(self) -> Optional[str]:
        return posixpath.join(self.prefix, "bin") if self.prefix else None

    @property
    def libdir(self) -> Optional[str]:
        return posixpath.join(self.prefix, "lib") if self.prefix else None

    @property
    def mpiexec_path(self) -> Optional[str]:
        return (posixpath.join(self.prefix, "bin", "mpiexec")
                if self.prefix else None)


@dataclasses.dataclass(frozen=True)
class EnvironmentDescription:
    """The Figure 4 description of a computing environment."""

    hostname: str
    isa: str
    os_type: str
    os_version: Optional[str]
    distro: Optional[str]
    libc_version: Optional[str]
    libc_path: Optional[str]
    libc_via: Optional[str]  # "exec" | "api"
    stacks: tuple[DiscoveredStack, ...]
    env_tool: Optional[str]  # "modules" | "softenv" | None
    loaded_stacks: tuple[str, ...] = ()

    @property
    def libc_version_tuple(self) -> tuple[int, ...]:
        if self.libc_version is None:
            return ()
        return tuple(int(p) for p in self.libc_version.split("."))

    def stacks_of_kind(self, kind: str) -> list[DiscoveredStack]:
        return [s for s in self.stacks if s.kind == kind]


def parse_stack_name(text: str) -> tuple[Optional[str], Optional[str], Optional[str]]:
    """Parse ``openmpi-1.4-intel`` or ``openmpi/1.4-intel`` style names.

    Returns (implementation name, version, compiler family).
    """
    m = _PREFIX_RE.search(text.replace("/", "-"))
    if not m:
        return None, None, None
    return (_KIND_BY_SLUG[m.group("impl")], m.group("version"),
            m.group("compiler"))


class EnvironmentDiscoveryComponent:
    """The EDC, bound to one machine's toolbox."""

    def __init__(self, toolbox: Toolbox,
                 env: Optional[Environment] = None) -> None:
        self.toolbox = toolbox
        self.env = env if env is not None else toolbox.machine.env
        self._fs = toolbox.machine.fs

    # -- full discovery ------------------------------------------------------------

    def discover(self) -> EnvironmentDescription:
        """Gather the full Figure 4 description."""
        # Discovery shells out to slow site commands; under an injected
        # fault plan this is where a site "hangs" (the engine's retry
        # policy decides whether to try again).
        faults.check(self.toolbox.machine.hostname,
                     faults.FaultKind.DISCOVERY_TIMEOUT, key="edc.discover")
        with obs.span("edc.discover",
                      host=self.toolbox.machine.hostname) as sp:
            with obs.span("edc.isa"):
                isa = self._discover_isa()
            with obs.span("edc.os"):
                os_type, os_version, distro = self._discover_os()
            with obs.span("edc.libc") as libc_span:
                libc_path, libc_version, libc_via = self._discover_libc()
                libc_span.set_attrs(version=libc_version, via=libc_via)
            with obs.span("edc.stacks") as stacks_span:
                tool, stacks = self._discover_stacks()
                stacks_span.set_attrs(env_tool=tool, found=len(stacks))
            sp.set_attrs(isa=isa, os=os_type, libc=libc_version,
                         stacks=len(stacks))
        loaded = tuple(self.env.get_list("LOADEDMODULES"))
        return EnvironmentDescription(
            hostname=self.toolbox.machine.hostname,
            isa=isa,
            os_type=os_type,
            os_version=os_version,
            distro=distro,
            libc_version=libc_version,
            libc_path=libc_path,
            libc_via=libc_via,
            stacks=tuple(stacks),
            env_tool=tool,
            loaded_stacks=loaded,
        )

    # -- ISA ------------------------------------------------------------------------

    def _discover_isa(self) -> str:
        try:
            return self.toolbox.uname_p()
        except ToolUnavailable:
            # /proc/version does not carry the ISA; fall back to the
            # machine's report (a real implementation would inspect
            # /proc/cpuinfo).
            return self.toolbox.machine.uname_processor()

    # -- OS ---------------------------------------------------------------------------

    def _discover_os(self) -> tuple[str, Optional[str], Optional[str]]:
        os_type, os_version, distro = "Linux", None, None
        try:
            proc = self.toolbox.cat("/proc/version")
            m = re.match(r"(\S+) version (\S+)", proc)
            if m:
                os_type, os_version = m.group(1), m.group(2)
        except (FsError, ToolUnavailable):
            pass
        for release_path in self.toolbox.list_glob("/etc", "release") + \
                self.toolbox.list_glob("/etc", "-release"):
            try:
                text = self.toolbox.cat(release_path).strip()
            except (FsError, ToolUnavailable):
                continue
            if text:
                distro = text.splitlines()[0]
                break
        return os_type, os_version, distro

    # -- C library ---------------------------------------------------------------------

    def _discover_libc(self) -> tuple[Optional[str], Optional[str], Optional[str]]:
        """Locate libc and determine its version (exec, then API fallback).

        Location sources, in order: the ld.so.cache (``ldconfig -p``),
        the standard directories, then the generic library search.
        """
        path: Optional[str] = self.toolbox.cache_lookup("libc.so.6")
        if path is None:
            for candidate_dir in ("/lib64", "/lib", "/usr/lib64", "/usr/lib"):
                candidate = posixpath.join(candidate_dir, "libc.so.6")
                if self._fs.is_file(candidate):
                    path = candidate
                    break
        if path is None:
            hits = self.toolbox.search_library("libc.so.6", self.env)
            path = hits[0] if hits else None
        if path is None:
            return None, None, None
        banner = self.toolbox.run_libc_binary(path)
        if banner is not None:
            from repro.toolchain.libc import parse_banner
            version = parse_banner(banner)
            if version is not None:
                return path, version, "exec"
        version = self.toolbox.libc_version_via_api(path)
        if version is not None:
            return path, version, "api"
        return path, None, None

    # -- MPI stacks -----------------------------------------------------------------------

    def _discover_stacks(self) -> tuple[Optional[str], list[DiscoveredStack]]:
        modules = EnvironmentModules(self._fs)
        if modules.is_present():
            return "modules", self._stacks_from_names(
                modules.avail(), via="modules")
        softenv = SoftEnv(self._fs)
        if softenv.is_present():
            return "softenv", self._stacks_from_names(
                softenv.avail(), via="softenv")
        return None, self._stacks_from_path_search()

    def _stacks_from_names(self, names: list[str],
                           via: str) -> list[DiscoveredStack]:
        stacks = []
        for name in names:
            kind, version, compiler = parse_stack_name(name)
            if kind is None:
                continue
            prefix = self._prefix_for_stack(kind, version, compiler)
            compiler_version = self._compiler_version_from_wrapper(prefix)
            stacks.append(DiscoveredStack(
                label=name, kind=kind, version=version,
                compiler_family=compiler,
                compiler_version=compiler_version,
                prefix=prefix, via=via, module_name=name))
        return stacks

    def _prefix_for_stack(self, kind: str, version: Optional[str],
                          compiler: Optional[str]) -> Optional[str]:
        """Find the conventional install prefix for a named stack."""
        slug_kind = next(
            (slug for slug, name in _KIND_BY_SLUG.items() if name == kind),
            None)
        if slug_kind is None or version is None or compiler is None:
            return None
        candidate = f"/opt/{slug_kind}-{version}-{compiler}"
        return candidate if self._fs.is_dir(candidate) else None

    def _stacks_from_path_search(self) -> list[DiscoveredStack]:
        """Section V.B fallback: search for MPI libraries and wrappers."""
        stacks: dict[str, DiscoveredStack] = {}
        hits: list[str] = []
        for stem in ("libmpi", "libmpich"):
            try:
                hits.extend(self.toolbox.search_library_stem(stem, self.env))
            except ToolUnavailable:
                continue
        for hit in hits:
            prefix = posixpath.dirname(posixpath.dirname(hit))
            if prefix in stacks or prefix in ("/", "/usr"):
                continue
            kind, version, compiler = parse_stack_name(
                posixpath.basename(prefix))
            if kind is None:
                # Disambiguate MPICH2 vs MVAPICH2 from the library's own
                # dependencies (Table I identifiers).
                kind = self._kind_from_library(hit)
            if kind is None:
                continue
            has_wrapper = self._fs.is_file(
                posixpath.join(prefix, "bin", "mpicc"))
            if not has_wrapper:
                continue
            compiler_version = self._compiler_version_from_wrapper(prefix)
            stacks[prefix] = DiscoveredStack(
                label=posixpath.basename(prefix), kind=kind, version=version,
                compiler_family=compiler,
                compiler_version=compiler_version,
                prefix=prefix, via="path-search")
        return list(stacks.values())

    def _kind_from_library(self, library_path: str) -> Optional[str]:
        try:
            info = self.toolbox.objdump_p(library_path)
        except (FsError, ToolUnavailable):
            return None
        parsed = parse_library_name(posixpath.basename(library_path))
        stem = parsed.stem if parsed else ""
        dep_stems = set()
        for soname in info.needed:
            dep = parse_library_name(soname)
            dep_stems.add(dep.stem if dep else soname)
        if stem.startswith("libmpich"):
            if "libibverbs" in dep_stems or "libibumad" in dep_stems:
                return "MVAPICH2"
            return "MPICH2"
        if stem.startswith("libmpi"):
            return "Open MPI"
        return None

    def _compiler_version_from_wrapper(self,
                                       prefix: Optional[str]) -> Optional[str]:
        """``mpicc -V``: identify the wrapped compiler's version."""
        if prefix is None:
            return None
        driver = self.toolbox.wrapper_compiler(
            posixpath.join(prefix, "bin", "mpicc"))
        if driver is None:
            return None
        banner = self.toolbox.compiler_banner(driver)
        if banner is None:
            return None
        m = re.search(r"(\d+(?:\.\d+)+)", banner)
        return m.group(1) if m else banner

    # -- environment composition ----------------------------------------------------------

    def env_for_stack(self, stack: DiscoveredStack,
                      base: Optional[Environment] = None) -> Environment:
        """Compose an environment with *stack* selected.

        Uses the module system when the stack came from one; otherwise
        reproduces what the module would do from the discovered layout
        (including the wrapped compiler's runtime directories).
        """
        env = (base if base is not None else self.env).copy()
        if stack.module_name is not None:
            modules = EnvironmentModules(self._fs)
            if modules.is_present():
                modules.load(stack.module_name, env)
                return env
            softenv = SoftEnv(self._fs)
            if softenv.is_present():
                softenv.load(stack.module_name, env)
                return env
        if stack.prefix is None:
            return env
        env.prepend_path("PATH", posixpath.join(stack.prefix, "bin"))
        env.prepend_path("LD_LIBRARY_PATH",
                         posixpath.join(stack.prefix, "lib"))
        driver = self.toolbox.wrapper_compiler(
            posixpath.join(stack.prefix, "bin", "mpicc"))
        if driver is not None:
            comp_prefix = posixpath.dirname(posixpath.dirname(driver))
            for libname in ("lib", "lib64", "libso"):
                libdir = posixpath.join(comp_prefix, libname)
                if self._fs.is_dir(libdir) and libdir not in (
                        "/usr/lib", "/usr/lib64"):
                    env.prepend_path("LD_LIBRARY_PATH", libdir)
            env.prepend_path("PATH", posixpath.dirname(driver))
        return env

    # -- missing libraries -------------------------------------------------------------------

    def missing_libraries(self, description: BinaryDescription,
                          env: Environment,
                          binary_path: Optional[str] = None,
                          ) -> tuple[list[str], list[tuple[str, str]]]:
        """Identify missing libraries and unsatisfied version references.

        Uses ``ldd`` when the binary is present (Section V.B); otherwise
        searches for each library from the description (both-phases mode,
        where the binary need not be at the target).

        Returns ``(missing sonames, [(library, version)] unsatisfied)``.
        """
        if binary_path is not None:
            try:
                result = self.toolbox.ldd(binary_path, env)
            except (ToolUnavailable, FsError):
                result = None
            if result is not None and result.recognised:
                located = {e.soname: e.path for e in result.entries}
                missing = [s for s, p in located.items() if p is None]
                # ldd -v verifies symbol versions itself; trust it over a
                # re-derivation (and it works when objdump is absent).
                return missing, list(result.unsatisfied_versions)
        located = {
            soname: self.toolbox.loader_visible_library(soname, env)
            for soname in description.needed}
        missing = [s for s, p in located.items() if p is None]
        unsatisfied = self._unsatisfied_versions(description, located)
        return missing, unsatisfied

    def _unsatisfied_versions(self, description: BinaryDescription,
                              located: dict[str, Optional[str]],
                              ) -> list[tuple[str, str]]:
        """Check each version reference against the located library."""
        unsatisfied = []
        defs_cache: dict[str, Optional[set[str]]] = {}
        for library, version in description.version_references:
            path = located.get(library)
            if path is None:
                continue  # already reported missing
            if path not in defs_cache:
                try:
                    info = self.toolbox.objdump_p(path)
                    defs_cache[path] = set(info.version_definitions)
                except (FsError, ToolUnavailable):
                    # Cannot inspect the library: the check is
                    # inconclusive, not failed.
                    defs_cache[path] = None
            if defs_cache[path] is not None and \
                    version not in defs_cache[path]:
                unsatisfied.append((library, version))
        return unsatisfied
