"""Human-readable FEAM output files.

"If at any point we determine that execution cannot occur, the reasons are
detailed to the user via an output file" and, when execution is predicted
possible, "we provide a description of the matching configuration details
to the user along with a script that will set them up automatically on
execution" (Section V.C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.prediction import Outcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.evaluation import TargetReport


def _mark(passed) -> str:
    """Render a probe's tri-bool (hello-world tests: no probe = SKIP)."""
    if passed is True:
        return "PASS"
    if passed is False:
        return "FAIL"
    return "SKIP"


def _outcome_mark(outcome: Outcome) -> str:
    """Render a determinant's tri-state outcome.

    UNKNOWN is rendered as such -- an undeterminable check (e.g. the
    site's libc version could not be read) must not look like a pass.
    """
    return {Outcome.PASS: "PASS", Outcome.FAIL: "FAIL",
            Outcome.UNKNOWN: "UNKNOWN"}[outcome]


def render_target_report(report: "TargetReport") -> str:
    """Render a target phase's verdict as FEAM's output file."""
    p = report.prediction
    env = report.environment
    lines = [
        "FEAM target phase report",
        "========================",
        f"site:        {env.hostname} ({env.distro or env.os_type})",
        f"isa:         {env.isa}",
        f"c library:   {env.libc_version or 'unknown'}",
        f"mode:        {p.mode.value}",
        f"prediction:  {'READY' if p.ready else 'NOT READY'}",
        "",
        "determinants:",
    ]
    for result in p.determinants:
        lines.append(f"  [{_outcome_mark(result.outcome)}] "
                     f"{result.key}: {result.detail}")
    unknown = [r.key for r in p.determinants
               if r.outcome is Outcome.UNKNOWN]
    if unknown:
        lines.append("  note: outcome unknown for " + ", ".join(unknown)
                     + " (not verified, not counted as a failure)")
    if p.stack_assessments:
        lines.append("")
        lines.append("mpi stack tests:")
        for a in p.stack_assessments:
            lines.append(
                f"  {a.stack.label}: native="
                f"{_mark(a.native_hello_ok)} imported="
                f"{_mark(a.imported_hello_ok)}"
                + (f" ({a.notes})" if a.notes else ""))
    if p.selected_stack is not None:
        lines.append("")
        lines.append(f"selected stack: {p.selected_stack.label} "
                     f"({p.selected_stack.prefix})")
    if report.resolution is not None:
        lines.append("")
        lines.append("resolution:")
        for decision in report.resolution.decisions:
            status = "staged" if decision.usable else "UNRESOLVED"
            lines.append(f"  {decision.soname}: {status} -- {decision.reason}")
        lines.append(f"  staging dir: {report.resolution.staging_dir}")
    if p.reasons:
        lines.append("")
        lines.append("reasons execution may not occur:")
        for reason in p.reasons:
            lines.append(f"  - {reason}")
    lines.append("")
    lines.append(f"feam cpu time: {report.feam_seconds:.0f} s")
    if report.cache is not None:
        lines.append(f"engine cache: {report.cache.render()}")
    return "\n".join(lines) + "\n"


def render_source_summary(bundle) -> str:
    """Render a source phase's bundle summary."""
    d = bundle.description
    lines = [
        "FEAM source phase bundle",
        "========================",
        f"binary:      {d.path}",
        f"format:      {d.file_format} ({d.isa_name}/{d.bits}-bit)",
        f"mpi:         {d.mpi_implementation or 'not detected'}",
        f"requires:    GLIBC_{d.required_glibc or '?'}",
        f"created at:  {bundle.created_at}",
        f"libraries:   {len(bundle.libraries)} described, "
        f"{bundle.copied_count} copied "
        f"({bundle.copy_bytes / 1_000_000:.1f} MB)",
    ]
    if bundle.hello is not None:
        langs = ", ".join(sorted(bundle.hello.images))
        lines.append(f"hello tests: {langs} (stack {bundle.hello.stack_label})")
    lines.append("")
    lines.append("library records:")
    for record in bundle.libraries:
        status = "copied" if record.copied else (
            "described" if record.located else "NOT FOUND")
        glibc = f", needs GLIBC_{record.required_glibc}" \
            if record.required_glibc else ""
        lines.append(f"  {record.soname}: {status}"
                     f" ({record.located_path or 'no path'}{glibc})")
    return "\n".join(lines) + "\n"
