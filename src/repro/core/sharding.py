"""Lock-striped cache segments for the evaluation engine.

The engine's cache layers used to live in plain dicts behind one global
``threading.Lock``; at fleet scale (a thousand sites, dozens of worker
threads) every cell evaluation serialised on that lock.  A
:class:`ShardedMap` splits one logical mapping into N independently
locked segments, selected by hashing the key tuple, so concurrent
lookups of different keys proceed in parallel and a matrix worker only
ever contends with workers touching the same shard.

Hit/miss accounting lives with the shards: :meth:`ShardedMap.lookup`
counts a hit when the key is present, :meth:`ShardedMap.store` counts a
miss.  That split mirrors the engine's historical semantics -- a miss is
only recorded once the value was actually computed and stored, so an
evaluation that fails (and degrades the cell) never inflates the miss
counters.  Per-shard tallies are kept so the observability layer can
publish shard-level hit rates and spot skew.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, TypeVar

V = TypeVar("V")

DEFAULT_SHARDS = 16


class _Shard:
    """One segment: a dict, its lock, and its hit/miss tallies."""

    __slots__ = ("lock", "entries", "hits", "misses")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: dict = {}
        self.hits = 0
        self.misses = 0


class ShardedMap:
    """A thread-safe mapping striped over N independently locked shards.

    Keys are the engine's flat tuples of digests/strings; shard selection
    uses the built-in tuple hash (per-process, which is all striping
    needs -- cross-process stability is the *keys'* job, and those are
    SHA-256 digests from :mod:`repro.util.hashing`).
    """

    def __init__(self, shards: int = DEFAULT_SHARDS) -> None:
        self.shard_count = max(1, int(shards))
        self._shards = tuple(_Shard() for _ in range(self.shard_count))

    def _shard_for(self, key) -> _Shard:
        return self._shards[hash(key) % self.shard_count]

    # -- counted cache protocol ----------------------------------------------

    def lookup(self, key) -> Optional[V]:
        """The cached value, counting a hit when present (None when not)."""
        shard = self._shard_for(key)
        with shard.lock:
            value = shard.entries.get(key)
            if value is not None:
                shard.hits += 1
            return value

    def store(self, key, value: V) -> None:
        """Insert a freshly computed value, counting a miss."""
        shard = self._shard_for(key)
        with shard.lock:
            shard.entries[key] = value
            shard.misses += 1

    def note_hit(self, key) -> None:
        """Credit a hit served for *key* outside :meth:`lookup`.

        The persistent tier uses this: a read-through disk hit fills
        the shard via :meth:`put` (uncounted) and then credits the hit
        here, so layer hit rates count disk-served values as hits
        rather than misses.
        """
        shard = self._shard_for(key)
        with shard.lock:
            shard.hits += 1

    # -- uncounted mapping protocol ------------------------------------------

    def peek(self, key) -> Optional[V]:
        """The cached value without touching the tallies."""
        shard = self._shard_for(key)
        with shard.lock:
            return shard.entries.get(key)

    def put(self, key, value: V) -> None:
        """Insert without touching the tallies."""
        shard = self._shard_for(key)
        with shard.lock:
            shard.entries[key] = value

    def get_or_create(self, key, factory: Callable[[], V]) -> V:
        """The cached value, creating (under the shard lock) when absent."""
        shard = self._shard_for(key)
        with shard.lock:
            value = shard.entries.get(key)
            if value is None:
                value = factory()
                shard.entries[key] = value
            return value

    # -- maintenance -----------------------------------------------------------

    def drop_if(self, predicate: Callable[[object], bool]) -> int:
        """Remove entries whose *key* matches; returns how many dropped."""
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                doomed = [key for key in shard.entries if predicate(key)]
                for key in doomed:
                    del shard.entries[key]
                dropped += len(doomed)
        return dropped

    def items(self) -> list:
        """A point-in-time snapshot of (key, value) pairs."""
        snapshot = []
        for shard in self._shards:
            with shard.lock:
                snapshot.extend(shard.entries.items())
        return snapshot

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    # -- accounting -------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    def shard_stats(self) -> list[tuple[int, int, int]]:
        """Per-shard (hits, misses, entries) for skew diagnostics."""
        return [(shard.hits, shard.misses, len(shard.entries))
                for shard in self._shards]


class HitMissCounter:
    """A striped hit/miss tally for caches that are not mappings.

    Discovery is cached *inside* each site's TEC (the environment
    attribute), so the engine only needs the counters; striping them over
    a few locks keeps fleet workers from serialising on one.
    """

    def __init__(self, stripes: int = 8) -> None:
        stripes = max(1, int(stripes))
        self._locks = tuple(threading.Lock() for _ in range(stripes))
        self._hits = [0] * stripes
        self._misses = [0] * stripes

    def _stripe(self, key) -> int:
        return hash(key) % len(self._locks)

    def hit(self, key) -> None:
        i = self._stripe(key)
        with self._locks[i]:
            self._hits[i] += 1

    def miss(self, key) -> None:
        i = self._stripe(key)
        with self._locks[i]:
            self._misses[i] += 1

    @property
    def hits(self) -> int:
        return sum(self._hits)

    @property
    def misses(self) -> int:
        return sum(self._misses)
