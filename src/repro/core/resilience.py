"""Resilience: retries, circuit breakers, deadlines, checkpoints.

The engine's answer to unreliable sites (see
:mod:`repro.sysmodel.faults` for how unreliability is injected):

* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *seeded* jitter.  Delays are simulated seconds (they are added to the
  report's ``feam_seconds``, never slept on the wall clock) and the
  jitter is a hash-keyed draw, so retry schedules are reproducible.
* :class:`CircuitBreaker` -- per-site closed/open/half-open state.
  Consecutive cell failures open the breaker; while open, the site's
  cells short-circuit to UNKNOWN (*quarantine*) without touching the
  substrate; after a few skips one probe cell is allowed through
  (half-open) and its outcome closes or re-opens the breaker.
* :class:`FailureProvenance` -- what a degraded (UNKNOWN) cell carries:
  the fault kind, attempts, simulated retry delay, breaker state.
* :class:`MatrixJournal` -- an append-only JSONL checkpoint of completed
  matrix cells; a killed run resumes with ``feam matrix --resume``,
  re-evaluating only the cells the journal does not hold.  Records hold
  no wall-clock data, so two deterministic runs journal identically.

Breaker state is published as the gauge
``resilience.breaker.<site>.state`` using :data:`BREAKER_STATE_CODES`
(0 = closed, 1 = half-open, 2 = open); the serving layer maps the codes
back to words for ``/healthz``.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from typing import Callable, Optional

from repro import obs
from repro.core.config import FeamConfig
from repro.util.hashing import stable_uniform
from repro.util.jsonl import JsonlAppender, read_jsonl


class BreakerState(enum.Enum):
    CLOSED = "closed"
    HALF_OPEN = "half-open"
    OPEN = "open"


#: Gauge encoding of breaker states (mirrored by ``repro.obs.serve``,
#: which must not import this layer).
BREAKER_STATE_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff in simulated seconds, with seeded jitter."""

    max_attempts: int = 3
    base_seconds: float = 2.0
    multiplier: float = 2.0
    max_delay_seconds: float = 30.0
    #: Fractional jitter: a delay is scaled by ``1 +- jitter * u`` where
    #: ``u`` is a deterministic draw from the (key, attempt) pair.
    jitter: float = 0.25

    @staticmethod
    def from_config(config: FeamConfig) -> "RetryPolicy":
        return RetryPolicy(
            max_attempts=config.retry_max_attempts,
            base_seconds=config.retry_base_seconds,
            multiplier=config.retry_backoff_multiplier,
            max_delay_seconds=config.retry_max_delay_seconds,
            jitter=config.retry_jitter)

    def delay_seconds(self, key: str, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        raw = min(self.base_seconds * self.multiplier ** (attempt - 1),
                  self.max_delay_seconds)
        swing = 2.0 * stable_uniform("retry-jitter", key, attempt) - 1.0
        return max(0.0, raw * (1.0 + self.jitter * swing))


@dataclasses.dataclass
class FailureProvenance:
    """Why a cell degraded to UNKNOWN instead of evaluating."""

    kind: str          # fault kind value, or the exception class name
    detail: str
    site: str
    operation: str     # discover | describe | evaluate | worker | quarantine
    attempts: int = 1
    retry_seconds: float = 0.0
    breaker_state: str = BreakerState.CLOSED.value
    transient: Optional[bool] = None
    deadline_hit: bool = False

    def render(self) -> str:
        parts = [f"{self.operation} failed: {self.kind}",
                 f"attempts={self.attempts}",
                 f"breaker={self.breaker_state}"]
        if self.retry_seconds:
            parts.append(f"retried {self.retry_seconds:.1f}s")
        if self.deadline_hit:
            parts.append("deadline exhausted")
        return " | ".join(parts)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(payload: dict) -> "FailureProvenance":
        fields = {f.name for f in dataclasses.fields(FailureProvenance)}
        return FailureProvenance(
            **{k: v for k, v in payload.items() if k in fields})


class RetriesExhausted(RuntimeError):
    """All attempts (or the deadline budget) spent; wraps the last error."""

    def __init__(self, operation: str, key: str, last: BaseException,
                 attempts: int, slept_seconds: float,
                 deadline_hit: bool = False) -> None:
        super().__init__(
            f"{operation} ({key}) failed after {attempts} attempt(s): {last}")
        self.operation = operation
        self.key = key
        self.last = last
        self.attempts = attempts
        self.slept_seconds = slept_seconds
        self.deadline_hit = deadline_hit


def with_retries(policy: RetryPolicy, key: str, fn: Callable,
                 operation: str = "call", site: str = "",
                 deadline_seconds: Optional[float] = None):
    """Run *fn* under *policy*; returns ``(value, attempts, slept)``.

    Backoff is simulated time only -- accumulated and returned so the
    caller can add it to the cell's ``feam_seconds``.  When attempts or
    the deadline budget run out, raises :class:`RetriesExhausted`
    carrying the last underlying error.
    """
    slept = 0.0
    attempts = max(1, policy.max_attempts)
    for attempt in range(1, attempts + 1):
        try:
            return fn(), attempt, slept
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if attempt >= attempts:
                raise RetriesExhausted(operation, key, exc, attempt, slept)
            delay = policy.delay_seconds(key, attempt)
            if deadline_seconds is not None and \
                    slept + delay > deadline_seconds:
                raise RetriesExhausted(operation, key, exc, attempt, slept,
                                       deadline_hit=True)
            slept += delay
            obs.counter("resilience.retries.total").inc()
            obs.event("resilience.retry", site=site, operation=operation,
                      key=key, attempt=attempt,
                      delay_seconds=round(delay, 3), error=str(exc))


class CircuitBreaker:
    """Per-site closed/open/half-open breaker with quarantine.

    Thread-safe, though the matrix drives each site from one thread.
    State transitions are published as obs events and as the gauge
    ``resilience.breaker.<site>.state``.
    """

    def __init__(self, site: str, failure_threshold: int = 3,
                 probe_after: int = 2) -> None:
        self.site = site
        self.failure_threshold = max(1, failure_threshold)
        self.probe_after = max(1, probe_after)
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._skips_while_open = 0
        self._lock = threading.Lock()

    def _publish(self) -> None:
        obs.gauge(f"resilience.breaker.{self.site}.state").set(
            BREAKER_STATE_CODES[self.state])

    def _transition(self, state: BreakerState, reason: str) -> None:
        previous, self.state = self.state, state
        obs.event("resilience.breaker", site=self.site,
                  from_state=previous.value, to_state=state.value,
                  reason=reason)
        self._publish()

    def allow(self) -> bool:
        """May the next cell touch the substrate?  False = quarantined."""
        with self._lock:
            if self.state is not BreakerState.OPEN:
                return True
            self._skips_while_open += 1
            if self._skips_while_open >= self.probe_after:
                self._transition(BreakerState.HALF_OPEN, "probe window")
                return True
            obs.counter("resilience.cells.quarantined").inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._skips_while_open = 0
            if self.state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED, "probe succeeded")

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._skips_while_open = 0
            if self.state is BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN, "probe failed")
            elif self.state is BreakerState.CLOSED and \
                    self._consecutive_failures >= self.failure_threshold:
                self._transition(
                    BreakerState.OPEN,
                    f"{self._consecutive_failures} consecutive failures")


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the engine needs to degrade instead of crash."""

    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    breaker_probe_after: int = 2
    #: Simulated-seconds retry budget per cell; backoff past this stops.
    cell_deadline_seconds: float = 120.0

    @staticmethod
    def from_config(config: FeamConfig) -> "ResiliencePolicy":
        return ResiliencePolicy(
            retry=RetryPolicy.from_config(config),
            breaker_failure_threshold=config.breaker_failure_threshold,
            breaker_probe_after=config.breaker_probe_after,
            cell_deadline_seconds=config.cell_deadline_seconds)

    def breaker_for(self, site: str) -> CircuitBreaker:
        return CircuitBreaker(
            site, failure_threshold=self.breaker_failure_threshold,
            probe_after=self.breaker_probe_after)


def provenance_from(exc: BaseException, site: str,
                    breaker_state: str = BreakerState.CLOSED.value,
                    operation: str = "evaluate") -> FailureProvenance:
    """Build provenance from whatever escaped the resilient paths."""
    from repro.sysmodel.faults import InjectedFault
    attempts, slept, deadline_hit = 1, 0.0, False
    if isinstance(exc, RetriesExhausted):
        operation = exc.operation
        attempts = exc.attempts
        slept = exc.slept_seconds
        deadline_hit = exc.deadline_hit
        exc = exc.last
    if isinstance(exc, InjectedFault):
        return FailureProvenance(
            kind=exc.kind.value, detail=str(exc), site=site,
            operation=operation, attempts=attempts, retry_seconds=slept,
            breaker_state=breaker_state, transient=exc.transient,
            deadline_hit=deadline_hit)
    return FailureProvenance(
        kind=type(exc).__name__, detail=str(exc), site=site,
        operation=operation, attempts=attempts, retry_seconds=slept,
        breaker_state=breaker_state, deadline_hit=deadline_hit)


class MatrixJournal(JsonlAppender):
    """Append-only JSONL checkpoint of completed matrix cells.

    One line per completed cell, written (and flushed) as the cell
    finishes, so a killed run loses at most the in-flight cells.
    Records are wall-clock-free: two runs of a deterministic matrix
    produce byte-identical journals.  The write/read discipline is the
    shared :mod:`repro.util.jsonl` one.

    A *header* dict stamps run identity (config fingerprint, sites
    spec, seed) as the journal's first line -- written only when the
    file is empty, so appending to an existing journal never re-stamps
    it.  :meth:`load` refuses to resume from a journal whose header
    contradicts the *expect* identity: silently restoring cells that
    were computed under a different config or world is a correctness
    bug, not a convenience.  Headerless journals from older runs still
    load (no identity to contradict).
    """

    def __init__(self, path: str,
                 header: Optional[dict] = None) -> None:
        super().__init__(path)
        if header and self._handle.tell() == 0:
            self.append({"journal_header": 1, **header})
            # ``written`` keeps counting cells only; the header is
            # identity metadata, not a checkpointed cell.
            self.written = 0

    def record(self, payload: dict) -> None:
        self.append(payload)

    def __enter__(self) -> "MatrixJournal":
        return self

    @staticmethod
    def load(path: str,
             expect: Optional[dict] = None) -> dict[tuple[str, str], dict]:
        """(binary_id, site) -> cell record.  Tolerates a torn final
        line (the kill may have landed mid-write).

        With *expect* (identity keys as passed to the constructor's
        *header*), a journal whose header disagrees on any expected
        key raises ``ValueError`` naming the mismatch.
        """
        completed: dict[tuple[str, str], dict] = {}
        for record in read_jsonl(path):
            if "journal_header" in record:
                for key, value in (expect or {}).items():
                    found = record.get(key)
                    if found != value:
                        raise ValueError(
                            f"journal {path} was written for {key}="
                            f"{found!r}, this run has {key}={value!r}; "
                            "refusing to resume from a different "
                            "run's journal")
                continue
            key = (record.get("binary"), record.get("site"))
            if None not in key:
                completed[key] = record
        return completed
