"""The batch evaluation engine: content-addressed, cached, parallel.

The paper evaluates one (binary, site) pair at a time; a production
deployment evaluates a *matrix* -- many binaries against many sites,
continuously (CODE-RADE-style cross-site validation).  The engine makes
that cheap:

* **Content addressing.**  Binary descriptions are keyed by the SHA-256
  of the ELF image (``repro.util.hashing.content_digest``); site
  environments by a fingerprint digest over the discovered description
  (``stable_digest``).  Identical bytes are never described twice,
  identical environments never re-discovered.
* **Memoisation.**  Three cache layers -- description per binary,
  discovery per site, full evaluation per (site fingerprint, binary,
  bundle, staging tag) cell -- each with hit/miss counters
  (:class:`CacheStats`), surfaced per cell via
  :class:`~repro.core.evaluation.CellCacheInfo` in the report.  Every
  layer is striped over N independently locked shards
  (:class:`repro.core.sharding.ShardedMap`), so fleet-scale worker pools
  do not serialise on one global lock.
* **Content-group sharing.**  Generated fleet sites carry a
  ``content_key`` (:func:`repro.sites.generator.content_key`) naming
  their evaluation-equivalence class.  The engine discovers one member
  of each class and adopts the re-hosted description for the rest, and
  evaluation cells are cached per (content key, binary) rather than per
  site -- the literal reading of "identical environments never
  re-discovered" at fleet scale.  Hand-built sites have no content key
  and keep the fully per-site path.
* **Work-stealing planning.**  :meth:`EvaluationEngine.evaluate_matrix`
  groups cells into per-site (per content-group, for fleets) work units
  spread over a bounded worker pool (default ``min(32, 4 x cpu)``); an
  idle worker steals whole units from the tail of the busiest queue.
  Sites are independent simulated machines and each unit is processed by
  one worker at a time, so per-site serialisation -- and with it
  deterministic results -- survives the stealing.

Invalidation: :meth:`EvaluationEngine.refresh_site` re-discovers a site
and, when the environment fingerprint changed, drops that site's cached
discovery and evaluation cells (descriptions are content-addressed and
stay valid).

Resilience (:mod:`repro.core.resilience`): discovery, description and
cell evaluation run under a retry policy; a per-site circuit breaker
quarantines sites whose cells keep failing; anything that still escapes
degrades the cell to an UNKNOWN report carrying
:class:`~repro.core.resilience.FailureProvenance` instead of aborting
the matrix.  :meth:`EvaluationEngine.evaluate_matrix` optionally
journals completed cells (JSONL) and resumes from a prior journal,
re-evaluating only the missing cells.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import posixpath
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Optional, Sequence, Union

from repro import obs
from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import (
    BinaryDescription,
    BinaryDescriptionComponent,
)
from repro.core.determinants import DeterminantRegistry
from repro.core.discovery import EnvironmentDescription
from repro.core.evaluation import (
    CellCacheInfo,
    TargetEvaluationComponent,
    TargetReport,
)
from repro.core import persist as persist_mod
from repro.core.prediction import (
    Determinant,
    DeterminantResult,
    Outcome,
    Prediction,
    PredictionMode,
)
from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    FailureProvenance,
    MatrixJournal,
    ResiliencePolicy,
    provenance_from,
    with_retries,
)
from repro.core.sharding import HitMissCounter, ShardedMap
from repro.obs import ledger as ledger_mod
from repro.obs import wide as wide_mod
from repro.sysmodel import faults
from repro.util.hashing import content_digest, stable_digest

#: Where the engine stages binaries it migrates to a site itself.
_MIGRATION_ROOT = "/home/user/migrated"


def default_matrix_workers() -> int:
    """The bounded pool default: ``min(32, 4 x cpu_count)``."""
    return min(32, 4 * (os.cpu_count() or 1))


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for the engine's three cache layers."""

    description_hits: int = 0
    description_misses: int = 0
    discovery_hits: int = 0
    discovery_misses: int = 0
    evaluation_hits: int = 0
    evaluation_misses: int = 0

    def snapshot(self) -> "CacheStats":
        return dataclasses.replace(self)

    def render(self) -> str:
        return (f"description {self.description_hits}/"
                f"{self.description_hits + self.description_misses} hit, "
                f"discovery {self.discovery_hits}/"
                f"{self.discovery_hits + self.discovery_misses} hit, "
                f"evaluation {self.evaluation_hits}/"
                f"{self.evaluation_hits + self.evaluation_misses} hit")


@dataclasses.dataclass(frozen=True)
class EngineBinary:
    """One binary submitted to the batch engine."""

    binary_id: str
    image: bytes
    bundle: Optional[SourceBundle] = None


def _unknown_environment(hostname: str) -> EnvironmentDescription:
    """Placeholder description for a site whose discovery never finished."""
    return EnvironmentDescription(
        hostname=hostname, isa="unknown", os_type="unknown",
        os_version=None, distro=None, libc_version=None, libc_path=None,
        libc_via=None, stacks=(), env_tool=None)


def cell_record(cell: "MatrixCell") -> dict:
    """The journal (JSONL) record of one completed cell.

    Wall-clock-free by design: two runs of a deterministic matrix must
    journal byte-identically (the resume/determinism gate).
    """
    report = cell.report
    return {
        "binary": cell.binary_id,
        "site": cell.site_name,
        "outcome": cell.outcome_word,
        "ready": report.ready,
        "determinants": {r.key: r.outcome.value
                         for r in report.prediction.determinants},
        "reasons": list(report.prediction.reasons),
        "feam_seconds": round(report.feam_seconds, 6),
        "fault": (report.failure.to_dict()
                  if report.failure is not None else None),
    }


def cell_from_record(record: dict) -> "MatrixCell":
    """Rebuild a (summary-grade) cell from its journal record.

    The restored report carries the verdict, determinant outcomes,
    reasons and failure provenance -- everything the matrix grid and the
    summary tables read -- but not the full evaluation artefacts
    (resolution plan, run environment)."""
    determinants = tuple(
        DeterminantResult(key, Outcome(value))
        for key, value in sorted(record.get("determinants", {}).items()))
    fault = record.get("fault")
    report = TargetReport(
        prediction=Prediction(
            ready=bool(record.get("ready", True)),
            mode=PredictionMode.BASIC,
            determinants=determinants,
            reasons=tuple(record.get("reasons", ()))),
        environment=_unknown_environment(record["site"]),
        feam_seconds=float(record.get("feam_seconds", 0.0)),
        cache=CellCacheInfo(description_hit=True, discovery_hit=True,
                            evaluation_hit=True, tier="journal"),
        failure=(FailureProvenance.from_dict(fault)
                 if fault is not None else None))
    return MatrixCell(binary_id=record["binary"],
                      site_name=record["site"], report=report)


def wide_record(cell: "MatrixCell", *, worker: str = "worker-0",
                steals: int = 0, resumed: bool = False,
                wall_seconds: Optional[float] = None,
                content_group: Optional[str] = None,
                sample=None) -> dict:
    """One cell flattened into a wide event (:mod:`repro.obs.wide`).

    This is the engine half of the wide-event layer: ``repro.obs`` is a
    strictly lower layer and cannot know what a matrix cell is, so the
    flattening lives here, next to :func:`cell_record`.  Unlike the
    journal record, wide events deliberately carry wall-clock and
    scheduling facts (worker, steals) -- they are telemetry, not resume
    state, and are never replayed into cells.
    """
    report = cell.report
    failure = report.failure
    record = {
        "schema": wide_mod.SCHEMA_VERSION,
        "site": cell.site_name,
        "binary": cell.binary_id,
        "content_group": content_group,
        "outcome": cell.outcome_word,
        "ready": report.ready,
        "faulted": cell.faulted,
        "sim_seconds": round(report.feam_seconds, 6),
        "wall_seconds": (round(wall_seconds, 6)
                         if wall_seconds is not None else None),
        "worker": worker,
        "steals": steals,
        "resumed": resumed,
        "description_hit": report.cache.description_hit,
        "discovery_hit": report.cache.discovery_hit,
        "evaluation_hit": report.cache.evaluation_hit,
        "cache_tier": (report.cache.tier
                       if report.cache is not None else None),
        "attempts": failure.attempts if failure is not None else 1,
        "retry_seconds": (round(failure.retry_seconds, 6)
                          if failure is not None else 0.0),
        "fault_kind": failure.kind if failure is not None else None,
        "breaker_state": (failure.breaker_state if failure is not None
                          else BreakerState.CLOSED.value),
    }
    for result in report.prediction.determinants:
        record[f"det_{result.key}"] = result.outcome.value
    if sample is not None:
        record["spans_kept"] = bool(sample.keep)
        record["sample_reason"] = sample.reason
    return record


def anomaly_features(record: dict) -> dict:
    """One wide event as numeric anomaly-detector features.

    The engine half of the anomaly layer (``repro.obs.anomaly`` takes
    an injected extractor because it cannot know the wide-event
    vocabulary): per-determinant blocked indicators (averaging to the
    group's ``det_*`` verdict rates), the simulated cell latency, the
    cache hit rate across all three layers, and fault/retry pressure.
    Wall-clock fields are deliberately excluded -- anomaly streams
    feed the alert engine, whose timeline must stay byte-identical
    across same-seed runs.
    """
    hits = [record.get(field) for field in
            ("description_hit", "discovery_hit", "evaluation_hit")]
    known = [hit for hit in hits if hit is not None]
    features = {
        "sim_seconds": float(record.get("sim_seconds") or 0.0),
        "retry_seconds": float(record.get("retry_seconds") or 0.0),
        "fault_rate": 1.0 if record.get("fault_kind") else 0.0,
        "unknown_rate": (1.0 if record.get("outcome") == "unknown"
                         else 0.0),
    }
    if known:
        features["cache_hit_rate"] = (
            sum(1.0 for hit in known if hit) / len(known))
    for key, value in record.items():
        if key.startswith("det_"):
            features[f"{key}_block_rate"] = \
                0.0 if value == "pass" else 1.0
    return features


#: Metrics snapshot histograms distilled into the manifest's per-phase
#: latency digests (manifest phase name -> histogram instrument).
_PHASE_HISTOGRAMS = {
    "discover": "engine.discover.seconds",
    "describe": "engine.describe.seconds",
    "cell.wall": "engine.cell.wall_seconds",
    "cell.sim": "engine.cell.sim_seconds",
    "worker": "engine.site.worker_seconds",
}

#: Above this many cells the manifest stops carrying the per-cell
#: outcome map (``feam compare`` then falls back to count deltas) --
#: a 100k-cell fleet run must not write a 100k-entry manifest line.
CELL_OUTCOME_CAP = 1024


def run_rollup(result: "MatrixResult",
               snapshot: Optional[dict] = None,
               wide_events: Optional[Sequence[dict]] = None) -> dict:
    """Distil one finished matrix into the ledger manifest's results.

    The engine half of the run-ledger layer (``repro.obs`` cannot know
    what a matrix cell is, mirroring :func:`wide_record`): cells,
    outcome/cache/retry counts, per-determinant implicated-cell
    latency digests, and per-phase latency digests pulled from a
    ``MetricsRegistry.to_dict`` *snapshot* and the run's *wide_events*.
    Returns ``{"rollup": ..., "phases": ...}`` ready to merge into a
    :class:`repro.obs.ledger.RunLedger` manifest.
    """
    cells = result.cells
    outcomes: dict[str, int] = {}
    for cell in cells:
        word = cell.outcome_word
        outcomes[word] = outcomes.get(word, 0) + 1

    # Wall seconds per cell come from the wide events (the journal
    # record is wall-free by design); sim seconds from the cells.
    wall_by_cell: dict[str, float] = {}
    for event in wide_events or ():
        wall = event.get("wall_seconds")
        if isinstance(wall, (int, float)):
            key = f"{event.get('binary')}@{event.get('site')}"
            wall_by_cell[key] = float(wall)

    # Per-determinant rollup: outcome counts over every cell the
    # determinant ran in, latency digests over the cells it was
    # *implicated* in (did not pass) -- that is where an injected
    # slowdown shows up as a row, not spread over the whole matrix.
    det_outcomes: dict[str, dict[str, int]] = {}
    det_sim: dict[str, list[float]] = {}
    det_wall: dict[str, list[float]] = {}
    for cell in cells:
        key = f"{cell.binary_id}@{cell.site_name}"
        for det in cell.report.prediction.determinants:
            counts = det_outcomes.setdefault(det.key, {})
            word = det.outcome.value
            counts[word] = counts.get(word, 0) + 1
            if word != "pass":
                det_sim.setdefault(det.key, []).append(
                    cell.report.feam_seconds)
                if key in wall_by_cell:
                    det_wall.setdefault(det.key, []).append(
                        wall_by_cell[key])
    determinants = {
        key: {"outcomes": counts,
              "sim": ledger_mod.latency_digest(det_sim.get(key, ())),
              "wall": ledger_mod.latency_digest(det_wall.get(key, ()))}
        for key, counts in sorted(det_outcomes.items())}

    stats = result.stats
    hits = (stats.description_hits + stats.discovery_hits
            + stats.evaluation_hits)
    lookups = (hits + stats.description_misses + stats.discovery_misses
               + stats.evaluation_misses)
    counters = (snapshot or {}).get("counters", {})
    histograms = (snapshot or {}).get("histograms", {})
    cache = dataclasses.asdict(stats)
    cache["hit_rate"] = round(hits / lookups, 6) if lookups else None
    # Persistent-tier provenance: lets `feam compare` / `feam drift`
    # attribute a latency regression to a cold or poisoned disk cache.
    cache["disk_hits"] = counters.get("persist.cache.disk_hits", 0)
    cache["quarantined"] = counters.get("persist.cache.quarantined", 0)
    rollup = {
        "cells": len(cells),
        "outcomes": outcomes,
        "faulted": sum(1 for cell in cells if cell.faulted),
        "resumed": result.resumed,
        "quarantined": len(result.quarantined),
        "retries": counters.get("resilience.retries.total", 0),
        "faults_injected": counters.get("resilience.faults.injected", 0),
        "cache": cache,
        "determinants": determinants,
        "sim": ledger_mod.latency_digest(
            [cell.report.feam_seconds for cell in cells]),
        "wall": ledger_mod.latency_digest(wall_by_cell.values()),
    }
    if len(cells) <= CELL_OUTCOME_CAP:
        rollup["cell_outcomes"] = {
            f"{cell.binary_id}@{cell.site_name}": cell.outcome_word
            for cell in cells}
    phases = {name: dict(histograms[instrument])
              for name, instrument in _PHASE_HISTOGRAMS.items()
              if instrument in histograms}
    return {"rollup": rollup, "phases": phases}


@dataclasses.dataclass(frozen=True)
class MatrixCell:
    """One evaluated (binary, site) pair."""

    binary_id: str
    site_name: str
    report: TargetReport

    @property
    def ready(self) -> bool:
        return self.report.ready

    @property
    def faulted(self) -> bool:
        """True when the cell degraded to UNKNOWN instead of evaluating."""
        return self.report.failure is not None

    @property
    def outcome_word(self) -> str:
        """Grid cell word: ``ready`` / ``unknown`` / ``no``.

        ``unknown`` marks a cell whose verdict is optimistic -- no
        determinant failed, but at least one could not be determined.
        It must never render the same as a clean pass or as a
        determined incompatibility.
        """
        if not self.report.ready:
            return "no"
        if self.report.prediction.unknown_determinants:
            return "unknown"
        return "ready"


@dataclasses.dataclass
class MatrixResult:
    """The full matrix evaluation with the engine's cache statistics."""

    cells: list[MatrixCell]
    stats: CacheStats
    #: Sites whose circuit breaker was not closed when the matrix ended.
    quarantined: tuple[str, ...] = ()
    #: Cells restored from a resume journal instead of re-evaluated.
    resumed: int = 0

    def cell(self, binary_id: str, site_name: str) -> Optional[MatrixCell]:
        for cell in self.cells:
            if cell.binary_id == binary_id and cell.site_name == site_name:
                return cell
        return None

    def render(self, verbose: bool = False) -> str:
        """A readiness grid (binaries x sites) plus cache statistics.

        With *verbose*, each cell additionally gets one line with its
        engine cache provenance (which layers hit) and, for non-ready
        cells, the failed/unknown determinants.
        """
        binaries = list(dict.fromkeys(c.binary_id for c in self.cells))
        sites = list(dict.fromkeys(c.site_name for c in self.cells))
        by_key = {(c.binary_id, c.site_name): c for c in self.cells}
        id_width = max([len(b) for b in binaries] + [6])
        lines = ["READINESS MATRIX (rows: binaries, columns: sites)", ""]
        header = " " * id_width
        for site in sites:
            header += f"  {site[:12]:>12}"
        lines.append(header)
        for binary_id in binaries:
            row = f"{binary_id:<{id_width}}"
            for site in sites:
                cell = by_key.get((binary_id, site))
                word = "-" if cell is None else cell.outcome_word
                row += f"  {word:>12}"
            lines.append(row)
        lines.append("")
        lines.append("legend: ready = all determinants pass | "
                     "unknown = undetermined (optimistic verdict) | "
                     "no = determined incompatibility")
        faulted = sum(1 for c in self.cells if c.faulted)
        if faulted:
            lines.append(f"faults: {faulted} cell(s) degraded to unknown "
                         "by failures (see verbose provenance)")
        if self.quarantined:
            lines.append("quarantined sites (circuit breaker open): "
                         + ", ".join(self.quarantined))
        if self.resumed:
            lines.append(f"resumed: {self.resumed} cell(s) restored from "
                         "the journal")
        lines.append(f"cache: {self.stats.render()}")
        if verbose:
            lines.append("")
            lines.append("cells:")
            for cell in self.cells:
                cache = (cell.report.cache.render()
                         if cell.report.cache is not None else "uncached")
                line = (f"  {cell.binary_id} @ {cell.site_name}: "
                        f"{cell.outcome_word} [{cache}]")
                undecided = [
                    f"{r.key}={r.outcome.value}"
                    for r in cell.report.prediction.determinants
                    if r.outcome is not Outcome.PASS]
                if undecided:
                    line += " determinants: " + ", ".join(undecided)
                lines.append(line)
                if cell.report.failure is not None:
                    lines.append("    fault: "
                                 + cell.report.failure.render())
        return "\n".join(lines) + "\n"


def bundle_digest(bundle: SourceBundle) -> str:
    """A content digest identifying a source-phase bundle.

    Derived from the described binary, the gathered library records and
    the hello probes -- everything that can change a target phase's
    outcome.
    """
    parts: list = [
        bundle.description.path,
        bundle.description.isa_name,
        bundle.description.bits,
        bundle.description.required_glibc,
        bundle.description.mpi_implementation,
        ",".join(bundle.description.needed),
        bundle.created_at,
    ]
    for record in bundle.libraries:
        parts.extend((record.soname, record.located_path,
                      record.copy_size, record.copied))
    if bundle.hello is not None:
        for language in sorted(bundle.hello.images):
            parts.append(language)
            parts.append(content_digest(bundle.hello.images[language]))
    return stable_digest(*parts)


def environment_fingerprint(environment) -> str:
    """The content-address of a discovered site environment.

    Covers every discovery output a determinant reads; when any of it
    changes, cached evaluations against the old fingerprint are invalid.
    """
    parts: list = [
        environment.hostname, environment.isa, environment.os_type,
        environment.os_version, environment.distro,
        environment.libc_version, environment.libc_path,
        environment.env_tool, ",".join(environment.loaded_stacks),
    ]
    for stack in environment.stacks:
        parts.extend((stack.label, stack.kind, stack.version,
                      stack.compiler_family, stack.compiler_version,
                      stack.prefix, stack.via))
    return stable_digest(*parts)


class EvaluationEngine:
    """Cached, batched execution-readiness evaluation across sites.

    One engine owns one TEC per site (discovery runs once per site), a
    content-addressed description cache shared across sites, and a
    per-cell evaluation cache.  All caches are thread-safe; the matrix
    planner parallelises across sites only, so each simulated site is
    always driven from a single thread.
    """

    def __init__(self, config: Optional[FeamConfig] = None,
                 registry: Optional[DeterminantRegistry] = None,
                 max_workers: Optional[int] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 persist: Optional[persist_mod.PersistentStore] = None,
                 ) -> None:
        self.config = config or FeamConfig()
        self.registry = registry
        self.max_workers = max_workers
        self.resilience = resilience or ResiliencePolicy.from_config(
            self.config)
        #: Optional on-disk tier under the in-memory caches; a disk hit
        #: back-fills the shard (`put` + `note_hit`) so layer hit rates
        #: count it, a clean fresh computation writes behind.
        self.persist = persist
        shards = max(1, self.config.cache_shards)
        self._tecs: ShardedMap = ShardedMap(shards)
        self._fingerprints: ShardedMap = ShardedMap(shards)
        self._breakers: ShardedMap = ShardedMap(shards)
        #: (image digest, described path) -> description
        self._descriptions: ShardedMap = ShardedMap(shards)
        #: cell key -> report
        self._reports: ShardedMap = ShardedMap(shards)
        #: content key -> shared environment description (fleet sites)
        self._content_environments: ShardedMap = ShardedMap(shards)
        self._discovery_counter = HitMissCounter()

    @property
    def stats(self) -> CacheStats:
        """Aggregated hit/miss counters over all cache shards."""
        return CacheStats(
            description_hits=self._descriptions.hits,
            description_misses=self._descriptions.misses,
            discovery_hits=self._discovery_counter.hits,
            discovery_misses=self._discovery_counter.misses,
            evaluation_hits=self._reports.hits,
            evaluation_misses=self._reports.misses)

    def close(self) -> None:
        """Flush the persistent tier (compacting if over cap), if any.

        The in-memory caches need no teardown; calling this is only
        required when the engine was built with a store."""
        if self.persist is not None:
            self.persist.close()

    # -- per-site services ---------------------------------------------------------

    def tec_for(self, site) -> TargetEvaluationComponent:
        """The (cached) TEC for a site."""
        return self._tecs.get_or_create(
            site.name,
            lambda: TargetEvaluationComponent(
                site, self.config, registry=self.registry))

    def breaker_for(self, site_name: str) -> CircuitBreaker:
        """The (cached) per-site circuit breaker."""
        return self._breakers.get_or_create(
            site_name, lambda: self.resilience.breaker_for(site_name))

    def site_health(self) -> dict[str, str]:
        """Breaker state per site the engine has touched."""
        return {name: breaker.state.value
                for name, breaker in sorted(self._breakers.items())}

    def _discovery_store_key(self, site, content) -> str:
        """The site's discovery key in the persistent store.

        Content-group sites are content-addressed (any run that builds
        the same equivalence class reuses the record); hand-built
        sites are scoped by the store's scope digest (seed + spec), so
        worlds built from different seeds never share discoveries.
        """
        if content is not None:
            return persist_mod.discovery_key("content", content)
        return persist_mod.discovery_key(self.persist.scope, site.name)

    def _discover(self, site) -> tuple[object, bool, float]:
        """(environment, was it a cache hit, simulated retry seconds)."""
        tec = self.tec_for(site)
        hit = tec._environment is not None
        content = getattr(site, "content_key", None)
        if not hit and content is not None:
            # Content-group sharing: another member of this site's
            # evaluation-equivalence class already discovered; adopt its
            # description, re-homed to this hostname.
            shared = self._content_environments.peek(content)
            if shared is not None:
                tec.adopt_environment(dataclasses.replace(
                    shared, hostname=site.name))
                hit = True
        disk_hit = False
        if not hit and self.persist is not None:
            stored = self.persist.load(
                "discovery", self._discovery_store_key(site, content))
            if stored is not None:
                environment = persist_mod.environment_from_payload(
                    stored["environment"])
                tec.adopt_environment(dataclasses.replace(
                    environment, hostname=site.name))
                if content is not None:
                    self._content_environments.put(content, environment)
                hit = disk_hit = True
        retry_seconds = 0.0
        with obs.span("engine.discover", site=site.name, hit=hit):
            started = time.perf_counter()
            if hit:
                environment = tec.environment()
            else:
                environment, _attempts, retry_seconds = with_retries(
                    self.resilience.retry, f"discover:{site.name}",
                    tec.environment, operation="discover", site=site.name,
                    deadline_seconds=self.resilience.cell_deadline_seconds)
                if content is not None:
                    self._content_environments.put(content, environment)
                if self.persist is not None:
                    # Write-behind: the environment itself is
                    # deterministic even when discovery needed retries.
                    self.persist.store(
                        "discovery",
                        self._discovery_store_key(site, content),
                        {"environment":
                         persist_mod.environment_to_payload(environment)})
            obs.histogram("engine.discover.seconds").observe(
                time.perf_counter() - started)
        if hit:
            self._discovery_counter.hit(site.name)
        else:
            self._discovery_counter.miss(site.name)
        if disk_hit:
            obs.counter("engine.cache.discovery.disk_hits").inc()
        if self._fingerprints.peek(site.name) is None:
            self._fingerprints.put(
                site.name, environment_fingerprint(environment))
        obs.counter("engine.cache.discovery."
                    + ("hits" if hit else "misses")).inc()
        return environment, hit, retry_seconds

    def fingerprint_for(self, site) -> str:
        """The content-address of the site's (cached) environment."""
        self._discover(site)
        return self._fingerprints.peek(site.name)

    def refresh_site(self, site) -> bool:
        """Re-discover a site; drop its caches if the fingerprint changed.

        Returns True when the environment changed.  Descriptions are
        content-addressed and survive; the site's evaluation cells do not.
        A generated site that diverges from its content group loses its
        ``content_key`` and falls back to the fully per-site path.
        """
        old = self._fingerprints.peek(site.name)
        tec = self.tec_for(site)
        tec.invalidate_environment()
        self._discovery_counter.miss(site.name)
        environment = tec.environment()
        new = environment_fingerprint(environment)
        self._fingerprints.put(site.name, new)
        changed = old is not None and old != new
        if changed:
            dropped = self._reports.drop_if(
                lambda key: key[0] == site.name)
            if getattr(site, "content_key", None) is not None:
                site.content_key = None
            obs.event("engine.site_invalidated", site=site.name,
                      dropped_cells=dropped, old=old, new=new)
            obs.counter("engine.invalidations").inc()
        if self.persist is not None:
            # Supersede the stored discovery (newest record wins); stale
            # evaluation records die by fingerprint binding, not here.
            self.persist.store(
                "discovery",
                self._discovery_store_key(
                    site, getattr(site, "content_key", None)),
                {"environment":
                 persist_mod.environment_to_payload(environment)})
        return changed

    # -- description cache -----------------------------------------------------------

    def describe(self, site, binary_path: str,
                 image: Optional[bytes] = None,
                 ) -> tuple[BinaryDescription, bool]:
        """Describe the binary at *binary_path*, content-addressed.

        Returns (description, was it a cache hit).  The cache key is the
        image digest plus the described path, so a cached description's
        ``path`` field is always accurate; identical bytes at the same
        path -- the batch-matrix case -- are described once, at whichever
        site gets there first.
        """
        if image is None:
            image = site.machine.fs.read(binary_path)
        key = (content_digest(image), binary_path)
        cached = self._descriptions.lookup(key)
        if cached is not None:
            obs.counter("engine.cache.description.hits").inc()
            return cached, True
        if self.persist is not None:
            stored = self.persist.load(
                "description",
                persist_mod.description_key(key[0], binary_path))
            if stored is not None:
                description = persist_mod.description_from_payload(stored)
                self._descriptions.put(key, description)
                self._descriptions.note_hit(key)
                obs.counter("engine.cache.description.hits").inc()
                return description, True
        with obs.span("engine.describe", site=site.name, path=binary_path,
                      hit=False):
            started = time.perf_counter()
            bdc = BinaryDescriptionComponent(site.toolbox())
            description, _attempts, _slept = with_retries(
                self.resilience.retry,
                f"describe:{site.name}:{binary_path}",
                lambda: bdc.describe(binary_path),
                operation="describe", site=site.name,
                deadline_seconds=self.resilience.cell_deadline_seconds)
            obs.histogram("engine.describe.seconds").observe(
                time.perf_counter() - started)
        self._descriptions.store(key, description)
        obs.counter("engine.cache.description.misses").inc()
        if self.persist is not None:
            self.persist.store(
                "description",
                persist_mod.description_key(key[0], binary_path),
                persist_mod.description_to_payload(description))
        return description, False

    # -- cell evaluation ---------------------------------------------------------------

    def evaluate_cell(self, site, binary_path: Optional[str] = None,
                      image: Optional[bytes] = None,
                      binary_id: Optional[str] = None,
                      bundle: Optional[SourceBundle] = None,
                      staging_tag: Optional[str] = None) -> TargetReport:
        """Evaluate one (binary, site) cell through every cache layer.

        The binary may be given as a path already present at the site, as
        raw *image* bytes (the engine stages them under a content-derived
        path), or implicitly via the *bundle* (both-phases mode, binary
        not at the target).
        """
        if binary_path is None and image is None and bundle is None:
            raise ValueError(
                "evaluate_cell needs a binary path, image bytes, or a "
                "source bundle")
        label = (binary_id or binary_path
                 or (bundle.description.path if bundle is not None else "?"))
        breaker = self.breaker_for(site.name)
        if not breaker.allow():
            provenance = FailureProvenance(
                kind="breaker-open",
                detail=f"site {site.name} is quarantined by its circuit "
                       "breaker", site=site.name, operation="quarantine",
                attempts=0, breaker_state=breaker.state.value)
            obs.event("resilience.cell_quarantined", site=site.name,
                      binary=label)
            return self.degraded_report(site, provenance)
        with obs.span("engine.cell", binary=label,
                      site=site.name) as cell_span:
            started = time.perf_counter()
            try:
                report = self._evaluate_cell(
                    site, binary_path, image, binary_id, bundle,
                    staging_tag)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                # Degrade, never abort: the cell becomes UNKNOWN with
                # full failure provenance, and the breaker learns.
                breaker.record_failure()
                provenance = provenance_from(
                    exc, site=site.name,
                    breaker_state=breaker.state.value)
                obs.counter("resilience.cells.faulted").inc()
                obs.event("resilience.cell_degraded", site=site.name,
                          binary=label, kind=provenance.kind,
                          attempts=provenance.attempts,
                          breaker=provenance.breaker_state)
                report = self.degraded_report(site, provenance)
            else:
                breaker.record_success()
            cell_span.set_attrs(
                ready=report.ready,
                evaluation_hit=(report.cache.evaluation_hit
                                if report.cache else False),
                faulted=report.failure is not None)
            cell_span.add_sim_seconds(report.feam_seconds)
            obs.histogram("engine.cell.wall_seconds").observe(
                time.perf_counter() - started)
            obs.histogram("engine.cell.sim_seconds").observe(
                report.feam_seconds)
        return report

    def degraded_report(self, site, provenance: FailureProvenance,
                        ) -> TargetReport:
        """An UNKNOWN report for a cell that could not be evaluated.

        Optimistic by the paper's semantics: nothing was *determined*
        incompatible, so ``ready`` stays True while all four
        determinants read UNKNOWN (the grid renders ``unknown``).  The
        provenance rides along in ``report.failure``."""
        tec = self._tecs.peek(site.name)
        environment = tec._environment if tec is not None else None
        if environment is None:
            environment = _unknown_environment(site.name)
        determinants = tuple(
            DeterminantResult(d, Outcome.UNKNOWN,
                              f"not evaluated: {provenance.kind}")
            for d in Determinant)
        return TargetReport(
            prediction=Prediction(
                ready=True, mode=PredictionMode.BASIC,
                determinants=determinants,
                reasons=(provenance.render(),)),
            environment=environment,
            feam_seconds=(self.config.feam_base_seconds
                          + provenance.retry_seconds),
            cache=CellCacheInfo(),
            failure=provenance)

    def _evaluate_cell(self, site, binary_path, image, binary_id,
                       bundle, staging_tag) -> TargetReport:
        if binary_path is None and image is not None:
            name = binary_id or content_digest(image)[:16]
            binary_path = posixpath.join(
                _MIGRATION_ROOT, name.replace("/", "-"))
            if not site.machine.fs.is_file(binary_path):
                site.machine.fs.write(binary_path, image, mode=0o755)
        if binary_path is not None and image is None:
            image = site.machine.fs.read(binary_path)

        _environment, discovery_hit, discover_retry_seconds = \
            self._discover(site)
        fingerprint = self._fingerprints.peek(site.name)

        description_hit = False
        if binary_path is not None:
            description, description_hit = self.describe(
                site, binary_path, image=image)
            digest = content_digest(image)
        else:
            assert bundle is not None
            description = bundle.description
            digest = bundle_digest(bundle)

        tag = staging_tag or posixpath.basename(
            binary_path or bundle.description.path).replace("/", "-")
        bdg = bundle_digest(bundle) if bundle is not None else None
        content = getattr(site, "content_key", None)
        # Content-group sites share one cell cache entry per binary; the
        # "content::" prefix keeps the keyspace disjoint from site names.
        if content is not None:
            key = (f"content::{content}", digest, bdg, tag)
        else:
            key = (site.name, fingerprint, digest, bdg, tag)
        cached = self._reports.lookup(key)
        if cached is not None:
            obs.counter("engine.cache.evaluation.hits").inc()
            environment = cached.environment
            if environment.hostname != site.name:
                environment = dataclasses.replace(
                    environment, hostname=site.name)
            return dataclasses.replace(
                cached, environment=environment,
                cache=CellCacheInfo(
                    description_hit=True, discovery_hit=True,
                    evaluation_hit=True, tier="memory"))

        if self.persist is not None:
            # Read-through: a fresh process warm-starts from disk.  The
            # non-content key already folds in the site fingerprint;
            # the record's binding is the belt-and-braces check.
            stored = self.persist.load(
                "evaluation", persist_mod.evaluation_key(key),
                fingerprint=(None if content is not None
                             else fingerprint))
            if stored is not None:
                report = persist_mod.report_from_payload(stored)
                if report.environment.hostname != site.name:
                    report.environment = dataclasses.replace(
                        report.environment, hostname=site.name)
                report.cache = CellCacheInfo(
                    description_hit=True, discovery_hit=True,
                    evaluation_hit=True, tier="disk")
                self._reports.put(key, report)
                self._reports.note_hit(key)
                obs.counter("engine.cache.evaluation.hits").inc()
                return report

        tec = self.tec_for(site)

        def attempt() -> TargetReport:
            # Explicit checkpoint: reading the staged binary back is the
            # evaluation's first substrate touch (arm-free fault plans
            # inject here; armed plans also perturb the reads below).
            faults.check(site.name, faults.FaultKind.READ_ERROR,
                         key=binary_path or tag)
            return tec.evaluate(description, binary_path=binary_path,
                                bundle=bundle, staging_tag=tag)

        report, _attempts, retry_seconds = with_retries(
            self.resilience.retry, f"evaluate:{site.name}:{tag}", attempt,
            operation="evaluate", site=site.name,
            deadline_seconds=self.resilience.cell_deadline_seconds)
        if retry_seconds or discover_retry_seconds:
            report.feam_seconds += retry_seconds + discover_retry_seconds
        report.cache = CellCacheInfo(
            description_hit=description_hit,
            discovery_hit=discovery_hit,
            evaluation_hit=False)
        self._reports.store(key, report)
        obs.counter("engine.cache.evaluation.misses").inc()
        if (self.persist is not None
                and not retry_seconds and not discover_retry_seconds):
            # Write-behind -- clean evaluations only.  A cell that
            # needed retries carries fault-inflated simulated seconds;
            # persisting it would poison a later clean warm run.
            self.persist.store(
                "evaluation", persist_mod.evaluation_key(key),
                persist_mod.report_to_payload(report),
                fingerprint=(None if content is not None
                             else fingerprint))
        return report

    # -- the matrix ----------------------------------------------------------------------

    def evaluate_matrix(self, binaries: Sequence, sites: Sequence,
                        bundles: Optional[dict] = None,
                        journal: Optional[MatrixJournal] = None,
                        resume: Optional[dict] = None,
                        wide_sink=None, sampler=None) -> MatrixResult:
        """Evaluate every binary against every site, in parallel by site.

        *binaries* holds :class:`EngineBinary` items or anything with
        ``binary_id`` and ``image`` attributes (e.g. the corpus's
        ``CompiledBinary``); *bundles* optionally maps binary ids to
        source-phase bundles for extended-mode cells.

        With a *journal*, every completed cell is appended (and flushed)
        as it finishes; *resume* -- a :meth:`MatrixJournal.load` mapping
        -- restores already-journalled cells without re-evaluating them.
        A worker that dies mid-site never aborts the matrix: its
        remaining cells degrade to UNKNOWN with provenance.

        Telemetry: with a *wide_sink* (:class:`repro.obs.wide.
        WideEventSink`), every cell -- evaluated, journal-restored, or
        filled in by the worker-failure path -- emits exactly one wide
        event, so the sink's count always equals the cell count.  With
        a *sampler* (:class:`repro.obs.sampling.SamplingPolicy`), span
        subtrees of cells the policy drops are pruned from the tracer
        once the matrix finishes; only degraded/faulted/slow cells and
        the seeded head sample keep their trees.

        Scheduling: sites are grouped into work units -- one unit per
        hand-built site, one unit per *content group* for generated
        fleet sites (consecutive sites sharing a ``content_key``).  Units
        are dealt round-robin over per-worker deques; a worker drains its
        own queue from the head and, when empty, steals whole units from
        the tail of the longest queue.  A unit is processed serially by
        exactly one worker, so the cache "winner" of a content group is
        always the group's first site and results stay deterministic.
        """
        specs = [self._coerce(b, bundles) for b in binaries]
        workers = (self.max_workers or self.config.matrix_workers
                   or default_matrix_workers())
        busy_seconds: list[float] = []  # one entry per site processed
        resumed = 0
        if resume:
            resumed = sum(1 for spec in specs for site in sites
                          if (spec.binary_id, site.name) in resume)

        # Work units: (position, site) pairs; content groups stay whole.
        units: list[list] = []
        unit_index: dict[str, list] = {}
        for position, site in enumerate(sites):
            content = getattr(site, "content_key", None)
            if content is None:
                units.append([(position, site)])
            else:
                unit = unit_index.get(content)
                if unit is None:
                    unit = []
                    unit_index[content] = unit
                    units.append(unit)
                unit.append((position, site))
        workers_effective = max(1, min(workers, len(units)))
        steal_counts = [0] * workers_effective
        #: (binary, site) -> reason, for cells whose spans the sampler
        #: dropped; keys the post-matrix subtree prune.
        sampling_drops: dict[tuple[str, str], str] = {}

        def finish_cell(cell: MatrixCell, *, wid: int, content,
                        resumed_cell: bool,
                        wall: Optional[float]) -> None:
            """Per-cell telemetry: sampling decision + wide event.

            Called at every point a cell enters the matrix -- evaluated,
            journal-restored, or filled in by the worker-failure path --
            so wide-event count always equals cell count.
            """
            decision = None
            if sampler is not None:
                decision = sampler.decide(
                    cell.site_name, cell.binary_id, cell.outcome_word,
                    cell.faulted, wall_seconds=wall)
                if decision.keep:
                    obs.counter("obs.sampling.kept").inc()
                    obs.counter(
                        f"obs.sampling.kept.{decision.reason}").inc()
                else:
                    obs.counter("obs.sampling.dropped").inc()
                    sampling_drops[(cell.binary_id, cell.site_name)] = \
                        decision.reason
            if wide_sink is not None:
                wide_sink.emit(wide_record(
                    cell, worker=f"worker-{wid}",
                    steals=steal_counts[wid], resumed=resumed_cell,
                    wall_seconds=wall, content_group=content,
                    sample=decision))
            obs.counter("cells.evaluated").inc()

        with obs.span("engine.matrix", binaries=len(specs),
                      sites=len(sites), workers=workers_effective,
                      units=len(units)) as matrix_span:
            started = time.perf_counter()

            def run_site(site, wid: int) -> list[MatrixCell]:
                worker_started = time.perf_counter()
                content = getattr(site, "content_key", None)
                with obs.span("engine.site", parent=matrix_span,
                              site=site.name) as site_span:
                    cells: list[MatrixCell] = []
                    try:
                        for spec in specs:
                            restored = (resume or {}).get(
                                (spec.binary_id, site.name))
                            if restored is not None:
                                cell = cell_from_record(restored)
                                cells.append(cell)
                                finish_cell(cell, wid=wid,
                                            content=content,
                                            resumed_cell=True, wall=None)
                                continue
                            # Content-group sites use a site-independent
                            # staging tag so their cells share one cache
                            # entry; hand-built sites keep per-site tags.
                            tag = (spec.binary_id if content is not None
                                   else f"{spec.binary_id}-{site.name}")
                            cell_started = time.perf_counter()
                            report = self.evaluate_cell(
                                site, image=spec.image,
                                binary_id=spec.binary_id,
                                bundle=spec.bundle,
                                staging_tag=tag.replace("/", "-"))
                            cell_wall = time.perf_counter() - cell_started
                            cell = MatrixCell(
                                binary_id=spec.binary_id,
                                site_name=site.name, report=report)
                            if journal is not None:
                                journal.record(cell_record(cell))
                            cells.append(cell)
                            finish_cell(cell, wid=wid, content=content,
                                        resumed_cell=False,
                                        wall=cell_wall)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        # A dying worker must not lose the other sites'
                        # (or its own completed) cells: fill the rest of
                        # this column with UNKNOWN + provenance.
                        provenance = provenance_from(
                            exc, site=site.name, operation="worker")
                        obs.event("resilience.worker_failed",
                                  site=site.name, error=str(exc),
                                  completed=len(cells))
                        obs.counter("resilience.workers.failed").inc()
                        for spec in specs[len(cells):]:
                            cell = MatrixCell(
                                binary_id=spec.binary_id,
                                site_name=site.name,
                                report=self.degraded_report(
                                    site, provenance))
                            cells.append(cell)
                            finish_cell(cell, wid=wid, content=content,
                                        resumed_cell=False, wall=None)
                    site_span.set_attrs(
                        cells=len(cells),
                        ready=sum(c.ready for c in cells))
                busy = time.perf_counter() - worker_started
                busy_seconds.append(busy)
                obs.histogram("engine.site.worker_seconds").observe(busy)
                return cells

            per_site: list = [None] * len(sites)

            def run_unit(unit, wid: int) -> None:
                for position, site in unit:
                    per_site[position] = run_site(site, wid)

            if workers_effective <= 1 or len(units) <= 1:
                for unit in units:
                    run_unit(unit, 0)
            else:
                # Per-worker deques: owner pops from the head, thieves
                # steal from the tail of the longest victim.  Single
                # deque operations are atomic under the GIL, so no locks.
                deques = [collections.deque()
                          for _ in range(workers_effective)]
                for index, unit in enumerate(units):
                    deques[index % workers_effective].append(unit)
                queue_gauge = obs.gauge("engine.matrix.queue_depth")

                def next_unit(wid: int):
                    try:
                        return deques[wid].popleft(), False
                    except IndexError:
                        pass
                    victims = sorted(
                        (v for v in range(workers_effective) if v != wid),
                        key=lambda v: len(deques[v]), reverse=True)
                    for victim in victims:
                        try:
                            return deques[victim].pop(), True
                        except IndexError:
                            continue
                    return None, False

                def run_worker(wid: int) -> None:
                    while True:
                        unit, stolen = next_unit(wid)
                        if unit is None:
                            return
                        if stolen:
                            steal_counts[wid] += 1
                            obs.counter("engine.matrix.steals").inc()
                        queue_gauge.set(sum(len(d) for d in deques))
                        run_unit(unit, wid)

                with ThreadPoolExecutor(
                        max_workers=workers_effective) as pool:
                    list(pool.map(run_worker, range(workers_effective)))
            elapsed = time.perf_counter() - started
            # Worker utilization: busy time over the pool's capacity for
            # the matrix's elapsed window (1.0 = every worker always busy).
            capacity = elapsed * workers_effective
            utilization = (sum(busy_seconds) / capacity) if capacity else 0.0
            obs.gauge("engine.matrix.worker_utilization").set(
                min(1.0, utilization))
            obs.gauge("engine.matrix.steals").set(sum(steal_counts))
            matrix_span.set_attrs(
                utilization=round(utilization, 3),
                cells=len(specs) * len(sites),
                steals=sum(steal_counts))
        if sampling_drops:
            # Tail sampling: prune the span subtrees of every cell the
            # policy dropped.  ``engine.cell`` spans carry binary + site
            # attrs, and spans finish children-before-parents, so one
            # reverse pass drops each subtree (quarantined cells open no
            # cell span, but the policy always keeps faulted cells).
            removed = obs.current().tracer.discard_subtrees(
                lambda span: (
                    span.name == "engine.cell"
                    and (span.attrs.get("binary"),
                         span.attrs.get("site")) in sampling_drops))
            if removed:
                obs.counter("obs.sampling.spans_dropped").inc(removed)
        # Deterministic assembly: binary-major, site order as given.
        cells = [per_site[s][b]
                 for b in range(len(specs)) for s in range(len(sites))]
        self._publish_matrix_metrics(cells)
        quarantined = tuple(
            name for name, state in self.site_health().items()
            if state != BreakerState.CLOSED.value)
        return MatrixResult(cells=cells, stats=self.stats.snapshot(),
                            quarantined=quarantined, resumed=resumed)

    def _publish_matrix_metrics(self, cells: list[MatrixCell]) -> None:
        """Matrix-level gauges for the SLO layer and ``/metrics``.

        These are the aggregates threshold rules speak about
        (:data:`repro.obs.slo.DEFAULT_RULES`): cell totals, the
        unknown/ready percentages, and the all-layer cache hit rate.
        No-ops when no collector is installed.
        """
        total = len(cells)
        obs.gauge("matrix.cells.total").set(total)
        if total:
            ready = sum(1 for c in cells if c.outcome_word == "ready")
            unknown = sum(1 for c in cells if c.outcome_word == "unknown")
            faulted = sum(1 for c in cells if c.faulted)
            obs.gauge("matrix.ready_cells.pct").set(100.0 * ready / total)
            obs.gauge("matrix.unknown_cells.pct").set(
                100.0 * unknown / total)
            obs.gauge("matrix.faulted_cells.pct").set(
                100.0 * faulted / total)
        stats = self.stats
        hits = (stats.description_hits + stats.discovery_hits
                + stats.evaluation_hits)
        lookups = hits + (stats.description_misses + stats.discovery_misses
                          + stats.evaluation_misses)
        if lookups:
            obs.gauge("engine.cache.hit_rate").set(hits / lookups)
        for layer, layer_hits, layer_misses in (
                ("description", stats.description_hits,
                 stats.description_misses),
                ("discovery", stats.discovery_hits,
                 stats.discovery_misses),
                ("evaluation", stats.evaluation_hits,
                 stats.evaluation_misses)):
            layer_lookups = layer_hits + layer_misses
            if layer_lookups:
                obs.gauge(f"engine.cache.{layer}.hit_rate").set(
                    layer_hits / layer_lookups)
        for layer, cache in (("description", self._descriptions),
                             ("evaluation", self._reports)):
            for index, (shard_hits, shard_misses, _entries) in enumerate(
                    cache.shard_stats()):
                shard_lookups = shard_hits + shard_misses
                if shard_lookups:
                    obs.gauge(
                        f"engine.cache.{layer}.shard.{index}.hit_rate"
                    ).set(shard_hits / shard_lookups)

    @staticmethod
    def _coerce(binary, bundles: Optional[dict]) -> EngineBinary:
        if isinstance(binary, EngineBinary):
            spec = binary
        elif isinstance(binary, tuple):
            binary_id, image = binary
            spec = EngineBinary(binary_id=binary_id, image=image)
        else:
            spec = EngineBinary(binary_id=binary.binary_id,
                                image=binary.image)
        if bundles and spec.bundle is None:
            bundle = bundles.get(spec.binary_id)
            if bundle is not None:
                spec = dataclasses.replace(spec, bundle=bundle)
        return spec
