"""FEAM: the Framework for Efficient Application Migration.

The paper's contribution (Sections III-V), organised as its three
components and two phases:

* :mod:`repro.core.description` -- the Binary Description Component (BDC):
  gathers the Figure 3 information about a binary and its dependencies via
  ``objdump -p``/``readelf``/``ldd`` with documented fallbacks, identifies
  the MPI implementation per Table I, and collects library copies at a
  guaranteed execution environment.
* :mod:`repro.core.discovery` -- the Environment Discovery Component (EDC):
  gathers the Figure 4 information about a site (ISA, OS, C-library
  version, MPI stacks via Environment Modules / SoftEnv / path search).
* :mod:`repro.core.evaluation` -- the Target Evaluation Component (TEC):
  applies the four-determinant prediction model (Figure 1), tests MPI
  stacks with hello-world programs, and applies the resolution model.
* :mod:`repro.core.determinants` -- the pluggable determinant pipeline
  the TEC delegates to: one check class per determinant, a registry with
  the paper's order and short-circuit semantics, tri-state outcomes.
* :mod:`repro.core.engine` -- the batch evaluation engine: content-
  addressed description/discovery caches, per-cell memoisation with
  hit/miss counters, and the parallel binaries x sites matrix planner.
* :mod:`repro.core.resolution` -- the resolution model (Section IV):
  recursive usability analysis of library copies and runtime staging.
* :mod:`repro.core.feam` -- the orchestrator: the optional *source phase*
  at a guaranteed execution environment and the required *target phase*.

Everything here interacts with sites only through the emulated Unix tools
(:mod:`repro.tools`), the module-system files, and the batch scheduler --
the interfaces the real FEAM has.
"""

from repro.core.config import FeamConfig
from repro.core.description import (
    BinaryDescription,
    BinaryDescriptionComponent,
    LibraryRecord,
    identify_mpi_implementation,
)
from repro.core.discovery import (
    DiscoveredStack,
    EnvironmentDescription,
    EnvironmentDiscoveryComponent,
)
from repro.core.determinants import (
    DeterminantCheck,
    DeterminantContext,
    DeterminantRegistry,
    default_registry,
)
from repro.core.prediction import (
    Determinant,
    DeterminantResult,
    Outcome,
    Prediction,
    PredictionMode,
)
from repro.core.resolution import CopyDecision, ResolutionModel, ResolutionPlan
from repro.core.bundle import SourceBundle
from repro.core.bundlefile import pack_bundle, unpack_bundle
from repro.core.evaluation import (
    CellCacheInfo,
    TargetEvaluationComponent,
    TargetReport,
)
from repro.core.engine import (
    CacheStats,
    EngineBinary,
    EvaluationEngine,
    MatrixCell,
    MatrixResult,
)
from repro.core.feam import Feam
from repro.core.survey import SiteVerdict, SurveyResult, survey_sites

__all__ = [
    "BinaryDescription",
    "BinaryDescriptionComponent",
    "CacheStats",
    "CellCacheInfo",
    "CopyDecision",
    "Determinant",
    "DeterminantCheck",
    "DeterminantContext",
    "DeterminantRegistry",
    "DeterminantResult",
    "DiscoveredStack",
    "EngineBinary",
    "EvaluationEngine",
    "EnvironmentDescription",
    "EnvironmentDiscoveryComponent",
    "Feam",
    "FeamConfig",
    "LibraryRecord",
    "MatrixCell",
    "MatrixResult",
    "Outcome",
    "Prediction",
    "PredictionMode",
    "ResolutionModel",
    "ResolutionPlan",
    "SiteVerdict",
    "SourceBundle",
    "SurveyResult",
    "TargetEvaluationComponent",
    "TargetReport",
    "default_registry",
    "identify_mpi_implementation",
    "pack_bundle",
    "survey_sites",
    "unpack_bundle",
]
