"""The full evaluation (paper Section VI.B methodology).

"We migrated each MPI application binary to all target sites where the
binary had not been compiled. ... we only report prediction results for
sites with matching MPI implementations.  Only at such sites is there
potential for successful execution."

For every (binary, matching target site) pair the experiment records:

* the **basic prediction** (target phase only, binary present);
* the **extended prediction** (source phase bundle + target phase,
  resolution applied);
* the **actual execution before resolution**: the site's matching-impl
  stack selected naively (same implementation, preferring the binary's own
  compiler), up to five spaced attempts;
* the **actual execution after resolution**: FEAM's selected stack and
  environment (with staged library copies) when available.

Prediction accuracy compares each prediction mode against the actual
outcome of the execution it describes (Table III); the success rates
before/after resolution reproduce Table IV.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from repro import obs
from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.engine import CacheStats
from repro.core.feam import Feam
from repro.corpus.builder import (
    CompiledBinary,
    Corpus,
    CorpusConfig,
    build_corpus,
)
from repro.corpus.benchmarks import Suite
from repro.sites.catalog import build_paper_sites
from repro.sites.site import Site
from repro.sysmodel.errors import ExecutionResult


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Everything the evaluation run needs."""

    seed: int = 20130101
    corpus: CorpusConfig = dataclasses.field(default_factory=CorpusConfig)
    feam: FeamConfig = dataclasses.field(default_factory=FeamConfig)
    execution_attempts: int = 5

    def __post_init__(self) -> None:
        if self.corpus.seed != self.seed:
            object.__setattr__(
                self, "corpus",
                dataclasses.replace(self.corpus, seed=self.seed))


@dataclasses.dataclass
class MigrationRecord:
    """One (binary, target site) migration with every measurement."""

    binary_id: str
    suite: Suite
    benchmark: str
    build_site: str
    build_stack: str
    target_site: str
    naive_stack: str
    basic_ready: bool
    extended_ready: bool
    actual_before_ok: bool
    actual_before_failure: Optional[str]
    actual_after_ok: bool
    actual_after_failure: Optional[str]
    feam_stack: Optional[str]
    resolution_staged: int = 0
    resolution_unresolved: int = 0
    basic_feam_seconds: float = 0.0
    extended_feam_seconds: float = 0.0
    #: Per-determinant outcomes (determinant value -> passed/None), kept
    #: for the determinant-ablation study.
    basic_determinants: dict = dataclasses.field(default_factory=dict)
    extended_determinants: dict = dataclasses.field(default_factory=dict)

    @property
    def basic_correct(self) -> bool:
        return self.basic_ready == self.actual_before_ok

    @property
    def extended_correct(self) -> bool:
        return self.extended_ready == self.actual_after_ok

    @property
    def resolution_helped(self) -> bool:
        return self.actual_after_ok and not self.actual_before_ok


@dataclasses.dataclass
class ExperimentResult:
    """The complete evaluation output."""

    records: list[MigrationRecord]
    corpus: Corpus
    sites: list[Site]
    #: Per build site: merged bundle size in bytes (the paper's ~45 MB
    #: site-wide bundle measurement).
    bundle_bytes_by_site: dict[str, int]
    #: Worst-case FEAM phase durations in seconds.
    max_source_phase_seconds: float
    max_target_phase_seconds: float
    config: ExperimentConfig
    #: Evaluation-engine cache counters for the whole run (description
    #: reuse across basic/extended cells, one discovery per site).
    cache_stats: Optional["CacheStats"] = None
    #: The observability collector that was installed during the run
    #: (``repro.obs.Collector``), or None when tracing was off.
    observability: Optional[object] = None

    def of_suite(self, suite: Suite) -> list[MigrationRecord]:
        return [r for r in self.records if r.suite is suite]


def _safe_tag(binary_id: str, mode: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", binary_id) + "-" + mode


def _naive_stack(target: Site, binary: CompiledBinary):
    """Matching-implementation stack selection without FEAM.

    Same implementation type, preferring the binary's own compiler family,
    then stable slug order -- the choice a careful user makes from the
    site's documentation alone.
    """
    candidates = target.stacks_of_kind(binary.stack_spec.kind)
    if not candidates:
        return None
    family = binary.stack_spec.compiler.family
    candidates = sorted(
        candidates,
        key=lambda s: (0 if s.spec.compiler.family is family else 1,
                       s.spec.slug))
    return candidates[0]


def _run_actual(target: Site, binary: CompiledBinary, stack, env,
                curse: float, attempts: int,
                label: str) -> ExecutionResult:
    return target.run_with_retries(
        f"exec:{label}:{binary.binary_id}", binary.image, stack, env=env,
        provenance=binary.provenance, curse_probability=curse,
        attempts=attempts, queue="normal")


def run_experiment(config: Optional[ExperimentConfig] = None,
                   sites: Optional[list[Site]] = None,
                   corpus: Optional[Corpus] = None,
                   progress: bool = False) -> ExperimentResult:
    """Run the full Section VI evaluation."""
    cfg = config or ExperimentConfig()
    if sites is None:
        sites = build_paper_sites(cfg.seed, cached=False)
    if corpus is None:
        corpus = build_corpus(sites, cfg.corpus)
    sites_by_name = {s.name: s for s in sites}
    feam = Feam(cfg.feam)

    # Source phases: one per binary, at its build site.
    bundles: dict[str, SourceBundle] = {}
    source_seconds: dict[str, float] = {}
    merged_bundles: dict[str, Optional[SourceBundle]] = {}
    with obs.span("experiment.source_phases",
                  binaries=len(corpus.binaries)):
        for binary in corpus.binaries:
            build_site = sites_by_name[binary.build_site]
            stack = build_site.find_stack(binary.stack_slug)
            env = build_site.env_with_stack(stack)
            bundle = feam.run_source_phase(build_site, binary.path, env=env)
            bundles[binary.binary_id] = bundle
            source_seconds[binary.binary_id] = \
                30.0 + 2.0 * len(bundle.libraries)
            merged = merged_bundles.get(binary.build_site)
            merged_bundles[binary.build_site] = (
                bundle if merged is None else merged.merged_with(bundle))

    bundle_bytes_by_site = {
        site: merged.copy_bytes
        for site, merged in merged_bundles.items() if merged is not None}

    records: list[MigrationRecord] = []
    max_target_seconds = 0.0
    ready_evals = 0
    unknown_evals = 0
    for index, binary in enumerate(corpus.binaries):
        bundle = bundles[binary.binary_id]
        for target in sites:
            if target.name == binary.build_site:
                continue
            naive = _naive_stack(target, binary)
            if naive is None:
                # No matching MPI implementation: excluded from the
                # reported results, like the paper's methodology.
                continue
            migrated_path = "/home/user/migrated/" + _safe_tag(
                binary.binary_id, "bin")
            target.machine.fs.write(migrated_path, binary.image, mode=0o755)

            with obs.span("experiment.migrate", binary=binary.binary_id,
                          target=target.name) as migrate_span:
                basic = feam.run_target_phase(
                    target, binary_path=migrated_path,
                    staging_tag=_safe_tag(binary.binary_id, "basic"))
                extended = feam.run_target_phase(
                    target, binary_path=migrated_path, bundle=bundle,
                    staging_tag=_safe_tag(binary.binary_id, "ext"))
                max_target_seconds = max(
                    max_target_seconds, basic.feam_seconds,
                    extended.feam_seconds)

                curse = cfg.corpus.curse_for(binary.suite)
                with obs.span("experiment.execute", phase="before"):
                    before = _run_actual(
                        target, binary, naive, target.env_with_stack(naive),
                        curse, cfg.execution_attempts, "before")

                # After resolution: FEAM's stack and environment when it
                # produced one; otherwise the naive run stands.
                after = before
                feam_stack_label = None
                if extended.selected_stack_prefix is not None:
                    feam_stack = target.stack_by_prefix(
                        extended.selected_stack_prefix)
                    feam_stack_label = feam_stack.spec.slug
                    env_after = extended.run_environment
                    if env_after is None:
                        env_after = target.env_with_stack(feam_stack)
                        if extended.resolution is not None:
                            for var, path in \
                                    extended.resolution.env_additions:
                                env_after.prepend_path(var, path)
                    changed = (feam_stack.spec.slug != naive.spec.slug
                               or (extended.resolution is not None
                                   and bool(extended.resolution.staged)))
                    if changed:
                        with obs.span("experiment.execute", phase="after"):
                            after = _run_actual(
                                target, binary, feam_stack, env_after,
                                curse, cfg.execution_attempts, "after")

                for report in (basic, extended):
                    ready_evals += bool(report.ready)
                    if (report.ready
                            and report.prediction.unknown_determinants):
                        unknown_evals += 1
                migrate_span.set_attrs(
                    basic_ready=basic.ready, extended_ready=extended.ready,
                    before_ok=before.ok, after_ok=after.ok)
                migrate_span.add_sim_seconds(
                    basic.feam_seconds + extended.feam_seconds)
                obs.counter("experiment.migrations").inc()

            resolution = extended.resolution
            records.append(MigrationRecord(
                binary_id=binary.binary_id,
                suite=binary.suite,
                benchmark=binary.benchmark.qualified_name,
                build_site=binary.build_site,
                build_stack=binary.stack_slug,
                target_site=target.name,
                naive_stack=naive.spec.slug,
                basic_ready=basic.ready,
                extended_ready=extended.ready,
                actual_before_ok=before.ok,
                actual_before_failure=(
                    before.failure.kind.value if before.failure else None),
                actual_after_ok=after.ok,
                actual_after_failure=(
                    after.failure.kind.value if after.failure else None),
                feam_stack=feam_stack_label,
                resolution_staged=(
                    len(resolution.staged) if resolution else 0),
                resolution_unresolved=(
                    len(resolution.unresolved) if resolution else 0),
                basic_feam_seconds=basic.feam_seconds,
                extended_feam_seconds=extended.feam_seconds,
                basic_determinants={
                    d.key: d.passed
                    for d in basic.prediction.determinants},
                extended_determinants={
                    d.key: d.passed
                    for d in extended.prediction.determinants},
            ))
        if progress and (index + 1) % 25 == 0:
            print(f"  migrated {index + 1}/{len(corpus.binaries)} binaries")

    # Surface the engine's cache tallies as metrics and hand the
    # installed collector (if any) to downstream report generation.
    stats = feam.engine.stats.snapshot()
    obs.metrics().absorb_cache_stats(stats)
    # The same matrix-level gauges EvaluationEngine.evaluate_matrix
    # publishes, so SLO rules speak one vocabulary for both runners
    # (here a "cell" is one basic or extended target evaluation).
    total_evals = 2 * len(records)
    obs.gauge("matrix.cells.total").set(total_evals)
    if total_evals:
        obs.gauge("matrix.ready_cells.pct").set(
            100.0 * ready_evals / total_evals)
        obs.gauge("matrix.unknown_cells.pct").set(
            100.0 * unknown_evals / total_evals)
    hits = (stats.description_hits + stats.discovery_hits
            + stats.evaluation_hits)
    lookups = hits + (stats.description_misses + stats.discovery_misses
                      + stats.evaluation_misses)
    if lookups:
        obs.gauge("engine.cache.hit_rate").set(hits / lookups)
    return ExperimentResult(
        records=records,
        corpus=corpus,
        sites=sites,
        bundle_bytes_by_site=bundle_bytes_by_site,
        max_source_phase_seconds=max(source_seconds.values(), default=0.0),
        max_target_phase_seconds=max_target_seconds,
        config=cfg,
        cache_stats=stats,
        observability=obs.current() if obs.is_active() else None,
    )
