"""Evaluation harness: the paper's Section VI.

* :mod:`repro.evaluation.experiment` -- the full methodology: build the
  corpus, migrate every binary to every site with a matching MPI
  implementation, form basic and extended predictions, execute with up to
  five retries, apply resolution, and record everything.
* :mod:`repro.evaluation.metrics` -- accuracy / success-rate /
  failure-breakdown computations.
* :mod:`repro.evaluation.tables` -- regenerate Tables I-IV and the in-text
  measurements.
* :mod:`repro.evaluation.figures` -- regenerate Figures 1-4 (textual).
"""

from repro.evaluation.experiment import (
    ExperimentConfig,
    ExperimentResult,
    MigrationRecord,
    run_experiment,
)
from repro.evaluation.metrics import (
    accuracy_table,
    failure_breakdown,
    resolution_table,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "MigrationRecord",
    "accuracy_table",
    "failure_breakdown",
    "resolution_table",
    "run_experiment",
]
