"""Ablation studies over the prediction model.

The design choices DESIGN.md calls out:

* **Determinant ablation** -- how much does each of the four determinants
  contribute to prediction accuracy?  :func:`determinant_ablation` replays
  the recorded per-determinant outcomes with subsets of the model enabled
  (a disabled determinant always "passes"), against the same actual
  outcomes.
* **Resolution-depth ablation** -- how deep does the recursive copy
  analysis need to go?  :func:`resolution_depth_ablation` reruns a reduced
  experiment with ``max_resolution_depth`` limited.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

from repro.core.config import FeamConfig
from repro.core.prediction import Determinant
from repro.corpus.benchmarks import Suite
from repro.corpus.builder import CorpusConfig
from repro.evaluation.experiment import (
    ExperimentConfig,
    MigrationRecord,
    run_experiment,
)
from repro.evaluation.metrics import resolution_table


@dataclasses.dataclass(frozen=True)
class AblationRow:
    """Accuracy of one determinant subset."""

    enabled: tuple[str, ...]
    accuracy: float
    predicted_ready_rate: float


def _predict_with(record_determinants: dict,
                  enabled: Sequence[Determinant]) -> bool:
    """Would FEAM predict ready using only *enabled* determinants?

    A determinant that was never evaluated (short-circuited) or is
    disabled counts as passing; only a recorded False fails.
    """
    for determinant in enabled:
        if record_determinants.get(determinant.value) is False:
            return False
    return True


def determinant_ablation(records: Iterable[MigrationRecord],
                         mode: str = "basic",
                         ) -> list[AblationRow]:
    """Accuracy of every leave-one-out and single-determinant model.

    Compares against the actual outcome the mode describes (before
    resolution for basic, after for extended).
    """
    records = list(records)
    rows: list[AblationRow] = []
    all_determinants = tuple(Determinant)
    subsets: list[tuple[Determinant, ...]] = [all_determinants]
    subsets += [tuple(d for d in all_determinants if d is not excluded)
                for excluded in all_determinants]
    subsets += [(d,) for d in all_determinants]
    subsets.append(())
    for subset in subsets:
        correct = 0
        ready = 0
        for record in records:
            determinants = (record.basic_determinants if mode == "basic"
                            else record.extended_determinants)
            actual = (record.actual_before_ok if mode == "basic"
                      else record.actual_after_ok)
            prediction = _predict_with(determinants, subset)
            ready += prediction
            correct += prediction == actual
        rows.append(AblationRow(
            enabled=tuple(d.value for d in subset),
            accuracy=correct / len(records) if records else 0.0,
            predicted_ready_rate=ready / len(records) if records else 0.0))
    return rows


def render_determinant_ablation(rows: list[AblationRow]) -> str:
    """Human-readable ablation table."""
    lines = ["DETERMINANT ABLATION (prediction accuracy by enabled subset)",
             "",
             f"{'enabled determinants':<58}{'accuracy':>10}{'ready%':>9}"]
    for row in rows:
        label = ", ".join(row.enabled) if row.enabled else "(none: always ready)"
        lines.append(f"{label:<58}{row.accuracy:>9.1%}"
                     f"{row.predicted_ready_rate:>9.1%}")
    return "\n".join(lines) + "\n"


@dataclasses.dataclass(frozen=True)
class DepthRow:
    """Resolution outcome at one recursion-depth limit."""

    depth: int
    after_success: dict[Suite, Optional[float]]
    staged_total: int


def resolution_depth_ablation(depths: Sequence[int] = (0, 1, 2, 8),
                              seed: int = 20130101,
                              corpus_size: int = 30) -> list[DepthRow]:
    """Rerun a reduced experiment at each resolution-depth limit.

    Depth 0 accepts a copy only when its own dependencies are already
    present at the target; each deeper level allows one more link of the
    dependency chain to be satisfied from the bundle.
    """
    rows: list[DepthRow] = []
    for depth in depths:
        config = ExperimentConfig(
            seed=seed,
            corpus=CorpusConfig(
                seed=seed,
                target_counts={Suite.NPB: corpus_size,
                               Suite.SPEC: corpus_size}),
            feam=FeamConfig(max_resolution_depth=depth))
        result = run_experiment(config)
        table = resolution_table(result.records)
        rows.append(DepthRow(
            depth=depth,
            after_success={suite: table[suite]["after"] for suite in Suite},
            staged_total=sum(r.resolution_staged for r in result.records)))
    return rows


def render_depth_ablation(rows: list[DepthRow]) -> str:
    """Human-readable depth-ablation table."""
    lines = ["RESOLUTION-DEPTH ABLATION (success after resolution)", "",
             f"{'depth':<8}{'NAS after':>12}{'SPEC after':>12}"
             f"{'copies staged':>15}"]
    for row in rows:
        nas = row.after_success.get(Suite.NPB)
        spec = row.after_success.get(Suite.SPEC)
        lines.append(
            f"{row.depth:<8}"
            f"{nas:>11.1%} {spec:>11.1%}"
            f"{row.staged_total:>15}")
    return "\n".join(lines) + "\n"
