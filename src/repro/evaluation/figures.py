"""Regenerate the paper's figures (textual renderings).

Figures 1-4 in the paper are structural diagrams and lists rather than
data plots; the renderers here produce them from the living code -- the
determinant enum, the phase/component structure, and the information
actually gathered by the BDC and EDC -- so they stay true to the
implementation.
"""

from __future__ import annotations

from repro.core.prediction import Determinant


def render_figure1() -> str:
    """Figure 1: prediction model determinants."""
    questions = {
        Determinant.ISA:
            "Does a compatible ISA exist?",
        Determinant.MPI_STACK:
            "Is there a compatible MPI stack functioning?",
        Determinant.C_LIBRARY:
            "Are the application's C library requirements met?",
        Determinant.SHARED_LIBRARIES:
            "Are all the correct versions of the shared libraries the "
            "application was linked against available?",
    }
    lines = ["FIGURE 1. PREDICTION MODEL DETERMINANTS", ""]
    for i, determinant in enumerate(Determinant, start=1):
        lines.append(f"  {i}) {questions[determinant]}")
        lines.append(f"     [{determinant.value}]")
    return "\n".join(lines) + "\n"


def render_figure2() -> str:
    """Figure 2: the phases and components of FEAM."""
    return """FIGURE 2. THE PHASES AND COMPONENTS OF FEAM

  source phase (optional, at a guaranteed execution environment)
  ---------------------------------------------------------------
    Binary Description Component  (repro.core.description)
       |  describes the binary; gathers library copies; compiles
       |  hello-world MPI programs with the binary's stack
    Environment Discovery Component  (repro.core.discovery)
       |  describes the guaranteed environment
       v
    bundle  -->  copied by the user to each target site

  target phase (required, at every target site)
  ---------------------------------------------------------------
    Binary Description Component   (when the binary is present)
    Environment Discovery Component
       |
       v
    Target Evaluation Component  (repro.core.evaluation)
       |  four-determinant prediction; hello-world stack tests;
       |  resolution of missing shared libraries from the bundle
       v
    prediction + reasons + site configuration script
"""


def render_figure3() -> str:
    """Figure 3: information gathered by the BDC."""
    items = (
        "ISA and file format of binary",
        "Library name and version, if applicable",
        "Required shared libraries, with copies and descriptions "
        "if applicable",
        "C library version requirements",
        "MPI stack, operating system, and C library version used to "
        "build binary",
    )
    lines = ["FIGURE 3. INFORMATION GATHERED BY THE BDC", ""]
    lines += [f"  - {item}" for item in items]
    lines.append("")
    lines.append("  (fields of repro.core.description.BinaryDescription)")
    return "\n".join(lines) + "\n"


def render_figure4() -> str:
    """Figure 4: information gathered by the EDC."""
    items = (
        "ISA format",
        "Operating system",
        "C library version",
        "Available or currently loaded MPI stacks",
        "Missing shared libraries",
    )
    lines = ["FIGURE 4. INFORMATION GATHERED BY THE EDC", ""]
    lines += [f"  - {item}" for item in items]
    lines.append("")
    lines.append("  (fields of repro.core.discovery.EnvironmentDescription)")
    return "\n".join(lines) + "\n"
