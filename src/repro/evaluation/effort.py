"""User-effort model (the paper's future work, Section VII).

"We are also interested in quantifying the amount of user effort required
to perform migration tasks so that we can more concretely compute the
efficiency gains of using our methods."  This module implements that
quantification over the evaluation's migration records.

The model charges human minutes for the steps a scientist performs by
hand, with constants chosen from the paper's own framing ("without
experience or support, scientists may need many hours to familiarize
themselves with just one new environment"):

Manual migration (per binary x site):

* familiarise with the site's documentation and environment -- once per
  site;
* enumerate and pick an MPI stack (module spelunking);
* submit-and-diagnose cycles: every failed execution costs a diagnosis
  (reading stderr, searching the web, asking support) plus a re-submit;
  the *kind* of failure decides the diagnosis cost -- a missing library
  must be hunted down and copied by hand, a C-library failure takes long
  to even understand, a system error just burns a retry;
* manual library resolution when the binary needs staged copies.

FEAM-assisted migration:

* write the configuration file (submission-script format) -- once per
  site;
* run the source phase -- once per binary;
* run the target phase and read the report -- per migration;
* act on the verdict (run the activation script, or stop immediately when
  the site is predicted not ready -- the biggest saving).

Both totals are computed from the same :class:`MigrationRecord` ground
truth, so the comparison is internally consistent.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.corpus.benchmarks import Suite
from repro.evaluation.experiment import MigrationRecord


@dataclasses.dataclass(frozen=True)
class EffortConstants:
    """Human minutes charged per step (model parameters)."""

    site_familiarisation: float = 120.0
    stack_discovery: float = 20.0
    submit_cycle: float = 10.0
    diagnose_missing_library: float = 45.0
    diagnose_libc: float = 60.0
    diagnose_abi_or_fpe: float = 50.0
    diagnose_system_error: float = 15.0
    manual_library_copy: float = 8.0  # per staged library
    feam_write_config: float = 10.0
    feam_source_phase: float = 5.0
    feam_target_phase: float = 5.0
    feam_read_report: float = 3.0


_DIAGNOSIS_FIELD = {
    "missing-shared-library": "diagnose_missing_library",
    "c-library-version": "diagnose_libc",
    "abi-incompatibility": "diagnose_abi_or_fpe",
    "floating-point-exception": "diagnose_abi_or_fpe",
    "mpi-stack-unusable": "diagnose_system_error",
    "system-error": "diagnose_system_error",
}


@dataclasses.dataclass(frozen=True)
class EffortEstimate:
    """Total human effort over a set of migrations, in hours."""

    manual_hours: float
    feam_hours: float
    migrations: int

    @property
    def savings_factor(self) -> float:
        if self.feam_hours <= 0:
            return float("inf")
        return self.manual_hours / self.feam_hours


def estimate_effort(records: Iterable[MigrationRecord],
                    constants: EffortConstants = EffortConstants(),
                    ) -> EffortEstimate:
    """Apply the effort model to migration records."""
    records = list(records)
    visited_sites_manual: set[str] = set()
    configured_sites_feam: set[str] = set()
    sourced_binaries: set[str] = set()
    manual = 0.0
    feam = 0.0
    for record in records:
        # -- manual path -----------------------------------------------------
        if record.target_site not in visited_sites_manual:
            visited_sites_manual.add(record.target_site)
            manual += constants.site_familiarisation
        manual += constants.stack_discovery
        manual += constants.submit_cycle
        if not record.actual_before_ok:
            field = _DIAGNOSIS_FIELD.get(record.actual_before_failure or "",
                                         "diagnose_system_error")
            manual += getattr(constants, field)
            if record.actual_after_ok and record.resolution_staged:
                # The failure was fixable by copying libraries; doing that
                # by hand costs per-library hunting plus a re-submit.
                manual += (constants.manual_library_copy
                           * record.resolution_staged)
                manual += constants.submit_cycle
        # -- FEAM path ---------------------------------------------------------
        if record.target_site not in configured_sites_feam:
            configured_sites_feam.add(record.target_site)
            feam += constants.feam_write_config
        if record.binary_id not in sourced_binaries:
            sourced_binaries.add(record.binary_id)
            feam += constants.feam_source_phase
        feam += constants.feam_target_phase + constants.feam_read_report
        if record.extended_ready:
            feam += constants.submit_cycle  # the one informed submission
    return EffortEstimate(manual_hours=manual / 60.0,
                          feam_hours=feam / 60.0,
                          migrations=len(records))


def render_effort(records: Iterable[MigrationRecord],
                  constants: EffortConstants = EffortConstants()) -> str:
    """Human-readable effort comparison, overall and per suite."""
    records = list(records)
    lines = ["USER-EFFORT MODEL (paper Section VII future work)", ""]
    header = (f"{'scope':<10}{'migrations':>12}{'manual (h)':>12}"
              f"{'FEAM (h)':>10}{'saving':>9}")
    lines.append(header)
    lines.append("-" * len(header))
    rows = [("all", records)]
    rows += [(suite.value, [r for r in records if r.suite is suite])
             for suite in Suite]
    for label, members in rows:
        estimate = estimate_effort(members, constants)
        lines.append(
            f"{label:<10}{estimate.migrations:>12}"
            f"{estimate.manual_hours:>12.0f}"
            f"{estimate.feam_hours:>10.0f}"
            f"{estimate.savings_factor:>8.1f}x")
    lines.append("")
    lines.append("model constants (minutes): "
                 f"site familiarisation {constants.site_familiarisation:.0f}, "
                 f"failed-run diagnosis {constants.diagnose_missing_library:.0f}"
                 f"-{constants.diagnose_libc:.0f}, "
                 f"manual library copy {constants.manual_library_copy:.0f}, "
                 f"FEAM phase {constants.feam_target_phase:.0f}")
    return "\n".join(lines) + "\n"
