"""Sensitivity analysis over the model's free parameters.

EXPERIMENTS.md documents three quantities the paper leaves unspecified:
the ABI/floating-point pair-failure rates, the per-suite persistent
system-error ("curse") rates, and the transient fault rate.  This module
sweeps them over reduced corpora and reports how the headline results
move -- establishing that the reproduction's conclusions (accuracy > 90%,
extended >= basic, resolution adds roughly a third) are *robust regions*,
not a knife-edge calibration.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.corpus.benchmarks import Suite
from repro.corpus.builder import CorpusConfig, build_corpus
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.metrics import accuracy_table, resolution_table
from repro.sites.catalog import build_paper_sites


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """Headline metrics at one parameter setting."""

    parameter: str
    value: float
    basic_accuracy: dict[Suite, Optional[float]]
    extended_accuracy: dict[Suite, Optional[float]]
    before_success: dict[Suite, Optional[float]]
    after_success: dict[Suite, Optional[float]]

    def extended_at_least_basic(self) -> bool:
        return all(
            (self.extended_accuracy[suite] or 0)
            >= (self.basic_accuracy[suite] or 0) - 1e-9
            for suite in Suite)


def _run_point(parameter: str, value: float, seed: int,
               corpus_size: int, abi_scale: float = 1.0,
               transient: float = 0.02,
               curse: Optional[dict] = None) -> SweepPoint:
    sites = build_paper_sites(seed, cached=False)
    for site in sites:
        site.simulator.abi_scale = abi_scale
        site.simulator.transient_error_probability = transient
    corpus_config = CorpusConfig(
        seed=seed,
        target_counts={Suite.NPB: corpus_size, Suite.SPEC: corpus_size})
    if curse is not None:
        corpus_config = dataclasses.replace(
            corpus_config, curse_probability=curse)
    corpus = build_corpus(sites, corpus_config)
    result = run_experiment(
        ExperimentConfig(seed=seed, corpus=corpus_config),
        sites=sites, corpus=corpus)
    acc = accuracy_table(result.records)
    res = resolution_table(result.records)
    return SweepPoint(
        parameter=parameter, value=value,
        basic_accuracy={s: acc[s]["basic"] for s in Suite},
        extended_accuracy={s: acc[s]["extended"] for s in Suite},
        before_success={s: res[s]["before"] for s in Suite},
        after_success={s: res[s]["after"] for s in Suite})


def sweep_abi_scale(scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
                    seed: int = 20130101,
                    corpus_size: int = 25) -> list[SweepPoint]:
    """How do the headline numbers respond to the ABI-rate scale?"""
    return [_run_point("abi_scale", scale, seed, corpus_size,
                       abi_scale=scale)
            for scale in scales]


def sweep_curse(rates: Sequence[float] = (0.0, 0.03, 0.06, 0.12),
                seed: int = 20130101,
                corpus_size: int = 25) -> list[SweepPoint]:
    """How does the persistent system-error rate move the results?

    Applied to both suites simultaneously; extended accuracy should track
    ``1 - rate`` closely (system errors are the unpredictable class).
    """
    return [_run_point("curse", rate, seed, corpus_size,
                       curse={Suite.NPB: rate, Suite.SPEC: rate})
            for rate in rates]


def sweep_transient(rates: Sequence[float] = (0.0, 0.02, 0.10),
                    seed: int = 20130101,
                    corpus_size: int = 25) -> list[SweepPoint]:
    """Transient faults should be absorbed by the five retries."""
    return [_run_point("transient", rate, seed, corpus_size,
                       transient=rate)
            for rate in rates]


def render_sweep(points: list[SweepPoint]) -> str:
    """Human-readable sweep table."""
    if not points:
        return "(empty sweep)\n"
    header = (f"{'parameter':<12}{'value':>7}"
              f"{'basic N/S':>14}{'ext N/S':>14}"
              f"{'before N/S':>14}{'after N/S':>14}")
    lines = [f"SENSITIVITY SWEEP: {points[0].parameter}", "", header,
             "-" * len(header)]

    def pair(values: dict) -> str:
        nas = values.get(Suite.NPB)
        spec = values.get(Suite.SPEC)
        fmt = lambda v: f"{100 * v:.0f}" if v is not None else "--"
        return f"{fmt(nas)}/{fmt(spec)}"

    for point in points:
        lines.append(
            f"{point.parameter:<12}{point.value:>7.2f}"
            f"{pair(point.basic_accuracy):>14}"
            f"{pair(point.extended_accuracy):>14}"
            f"{pair(point.before_success):>14}"
            f"{pair(point.after_success):>14}")
    return "\n".join(lines) + "\n"
