"""Markdown evaluation report.

:func:`render_markdown_report` turns one :class:`ExperimentResult` into a
self-contained markdown document -- measured values beside the paper's
published numbers for every table and in-text claim, plus the
beyond-the-paper analyses.  ``python -m repro report`` prints it;
EXPERIMENTS.md in this repository is the curated version of the same
content.
"""

from __future__ import annotations

from repro.corpus.benchmarks import Suite
from repro.evaluation.ablation import determinant_ablation
from repro.evaluation.effort import estimate_effort
from repro.evaluation.experiment import ExperimentResult
from repro.evaluation.metrics import (
    accuracy_table,
    failure_breakdown,
    missing_library_share,
    resolution_table,
)
from repro.evaluation.tables import PAPER_TABLE3, PAPER_TABLE4


def _pct(value) -> str:
    return f"{100 * value:.0f}%" if value is not None else "n/a"


def records_to_csv(result: ExperimentResult) -> str:
    """Every migration record as CSV (for external analysis tools).

    One row per migration; columns cover identities, both predictions,
    both actual outcomes, the failure causes and the resolution counts.
    """
    import csv
    import io

    columns = [
        "binary_id", "suite", "benchmark", "build_site", "build_stack",
        "target_site", "naive_stack", "feam_stack",
        "basic_ready", "extended_ready",
        "actual_before_ok", "actual_before_failure",
        "actual_after_ok", "actual_after_failure",
        "resolution_staged", "resolution_unresolved",
        "basic_feam_seconds", "extended_feam_seconds",
    ]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(columns)
    for record in result.records:
        writer.writerow([
            record.binary_id, record.suite.value, record.benchmark,
            record.build_site, record.build_stack, record.target_site,
            record.naive_stack, record.feam_stack or "",
            int(record.basic_ready), int(record.extended_ready),
            int(record.actual_before_ok),
            record.actual_before_failure or "",
            int(record.actual_after_ok),
            record.actual_after_failure or "",
            record.resolution_staged, record.resolution_unresolved,
            f"{record.basic_feam_seconds:.1f}",
            f"{record.extended_feam_seconds:.1f}",
        ])
    return buffer.getvalue()


def render_markdown_report(result: ExperimentResult) -> str:
    """The full evaluation as a markdown document."""
    records = result.records
    acc = accuracy_table(records)
    res = resolution_table(records)
    breakdown = failure_breakdown(records, "before")
    total_failures = sum(breakdown.values())
    effort = estimate_effort(records)

    lines: list[str] = []
    out = lines.append

    out("# FEAM reproduction — evaluation report")
    out("")
    out(f"Seed `{result.config.seed}` · "
        f"{len(result.corpus.binaries)} test binaries "
        f"({result.corpus.counts()[Suite.NPB]} NPB, "
        f"{result.corpus.counts()[Suite.SPEC]} SPEC MPI2007) · "
        f"{len(records)} reported migrations across "
        f"{len(result.sites)} sites.")
    out("")

    out("## Prediction accuracy (paper Table III)")
    out("")
    out("| suite | basic (paper) | basic (measured) "
        "| extended (paper) | extended (measured) |")
    out("|---|---|---|---|---|")
    for suite in Suite:
        out(f"| {suite.value} "
            f"| {_pct(PAPER_TABLE3[suite]['basic'])} "
            f"| {_pct(acc[suite]['basic'])} "
            f"| {_pct(PAPER_TABLE3[suite]['extended'])} "
            f"| {_pct(acc[suite]['extended'])} |")
    out("")

    out("## Resolution impact (paper Table IV)")
    out("")
    out("| suite | before (paper/measured) | after (paper/measured) "
        "| increase (paper/measured) |")
    out("|---|---|---|---|")
    for suite in Suite:
        paper, measured = PAPER_TABLE4[suite], res[suite]
        out(f"| {suite.value} "
            f"| {_pct(paper['before'])} / {_pct(measured['before'])} "
            f"| {_pct(paper['after'])} / {_pct(measured['after'])} "
            f"| {_pct(paper['increase'])} / {_pct(measured['increase'])} |")
    out("")

    out("## Failure causes before resolution (paper Section VI.C)")
    out("")
    out(f"{total_failures} failing migrations; the paper reports missing "
        f"shared libraries as 'more than half' — measured "
        f"{_pct(missing_library_share(records))}.")
    out("")
    out("| cause | count | share |")
    out("|---|---|---|")
    for cause, count in breakdown.most_common():
        out(f"| {cause} | {count} | {100 * count / total_failures:.0f}% |")
    out("")

    out("## Operational measurements")
    out("")
    out(f"- max source phase: {result.max_source_phase_seconds:.0f} s; "
        f"max target phase: {result.max_target_phase_seconds:.0f} s "
        f"(paper: always < 5 min)")
    average_bundle = (sum(result.bundle_bytes_by_site.values())
                      / max(len(result.bundle_bytes_by_site), 1))
    out(f"- site-wide bundles: "
        + ", ".join(f"{site} {size / 1e6:.1f} MB"
                    for site, size in
                    sorted(result.bundle_bytes_by_site.items()))
        + f" (average {average_bundle / 1e6:.1f} MB; paper: ~45 MB)")
    out(f"- modelled user effort: {effort.manual_hours:.0f} h manual vs "
        f"{effort.feam_hours:.0f} h FEAM-assisted "
        f"({effort.savings_factor:.1f}x; the paper's future-work "
        f"quantification)")
    out("")

    out("## Determinant ablation (basic prediction)")
    out("")
    out("| enabled determinants | accuracy |")
    out("|---|---|")
    for row in determinant_ablation(records, mode="basic"):
        label = ", ".join(row.enabled) if row.enabled else "(none)"
        out(f"| {label} | {row.accuracy:.1%} |")
    out("")

    out("## Migration matrix (successes/migrations after resolution)")
    out("")
    names = [site.name for site in result.sites]
    cells: dict[tuple[str, str], list[int]] = {}
    for record in records:
        counts = cells.setdefault(
            (record.build_site, record.target_site), [0, 0])
        counts[1] += 1
        counts[0] += record.actual_after_ok
    out("| build \\ target | " + " | ".join(names) + " |")
    out("|---|" + "---|" * len(names))
    for build in names:
        row = [build]
        for target in names:
            if build == target:
                row.append("—")
            else:
                counts = cells.get((build, target))
                row.append(f"{counts[0]}/{counts[1]}" if counts else "n/a")
        out("| " + " | ".join(row) + " |")
    out("")

    for line in _trace_summary(result):
        out(line)
    return "\n".join(lines)


def _trace_summary(result: ExperimentResult) -> list[str]:
    """The observability section: span/metric totals for the run.

    Rendered only when the experiment ran under an installed collector
    (``repro.obs.capture``); ``python -m repro`` always installs one.
    """
    collector = result.observability
    if collector is None or not getattr(collector, "spans", None):
        return []
    lines: list[str] = []
    out = lines.append
    spans = collector.spans
    events = collector.events.events

    out("## Observability (traced run)")
    out("")
    out(f"{len(spans)} spans and {len(events)} events were collected; "
        f"rerun with `--trace-out FILE.jsonl` for the full trace "
        f"(`feam top FILE.jsonl` renders the same flame table).")
    out("")

    from repro.obs import analyze
    prof = analyze.profile(spans)
    out("### Flame profile (top span names by self wall time)")
    out("")
    out("| span | count | wall self (s) | wall total (s) "
        "| sim total (s) |")
    out("|---|---|---|---|---|")
    for frame in prof.sorted_frames("wall_self")[:10]:
        out(f"| `{frame.name}` | {frame.count} "
            f"| {frame.wall_self:.3f} | {frame.wall_total:.3f} "
            f"| {frame.sim_total:.1f} |")
    out("")
    path = analyze.critical_path(spans, clock="wall")
    if path:
        chain = " > ".join(f"`{span.name}`" for span in path)
        out(f"- critical path (wall clock): {chain}")

    summary = collector.metrics.histogram(
        "engine.cell.wall_seconds").summary()
    if summary["count"]:
        out(f"- evaluation cells: {summary['count']} "
            f"(wall p50 {summary['p50'] * 1e3:.1f} ms, "
            f"p95 {summary['p95'] * 1e3:.1f} ms, "
            f"max {summary['max'] * 1e3:.1f} ms)")
    if result.cache_stats is not None:
        out(f"- engine caches: {result.cache_stats.render()}")
    out("")

    from repro.obs import slo as slo_mod
    report = slo_mod.evaluate(slo_mod.DEFAULT_RULES,
                              collector.metrics.to_dict())
    out("### Service objectives")
    out("")
    out("| rule | status | observed |")
    out("|---|---|---|")
    for res in report.results:
        observed = ("absent" if res.observed is None
                    else f"{res.observed:g}")
        out(f"| `{res.rule.name}` | {res.status} | {observed} |")
    out("")
    verdict = ("all SLOs met" if report.ok
               else f"{len(report.violations)} SLO rule(s) violated")
    out(f"{len(report.results)} rules evaluated: {verdict} "
        f"(`feam slo` re-checks these against a live run).")
    out("")
    return lines
