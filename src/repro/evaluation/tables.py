"""Regenerate the paper's tables.

Each ``render_table*`` function returns the table as text, in the paper's
row/column layout, with the paper's published values alongside for
comparison.  ``python -m repro table3`` (etc.) prints them.
"""

from __future__ import annotations

from typing import Optional

from repro.corpus.benchmarks import Suite
from repro.evaluation.experiment import ExperimentResult
from repro.evaluation.metrics import (
    accuracy_table,
    failure_breakdown,
    missing_library_share,
    resolution_table,
)
from repro.mpi.implementations import MpiImplementationKind
from repro.sites.catalog import PAPER_SITE_SPECS

#: The published values (for side-by-side comparison).
PAPER_TABLE3 = {Suite.NPB: {"basic": 0.94, "extended": 0.99},
                Suite.SPEC: {"basic": 0.92, "extended": 0.93}}
PAPER_TABLE4 = {Suite.NPB: {"before": 0.58, "after": 0.78, "increase": 0.33},
                Suite.SPEC: {"before": 0.47, "after": 0.66, "increase": 0.39}}


def _pct(value: Optional[float]) -> str:
    return f"{100 * value:.0f}%" if value is not None else "n/a"


def render_table1() -> str:
    """Table I: identifying libraries of MPI implementations."""
    from repro.corpus.benchmarks import NPB_BENCHMARKS
    del NPB_BENCHMARKS  # table1 is definitional; imports kept minimal
    rows = {
        MpiImplementationKind.MVAPICH2:
            "libmpich/libmpichf90, libibverbs, libibumad",
        MpiImplementationKind.OPEN_MPI:
            "libnsl, libutil (alongside libmpi/libopen-rte/libopen-pal)",
        MpiImplementationKind.MPICH2:
            "libmpich/libmpichf90 (and not other identifiers)",
    }
    lines = ["TABLE I. IDENTIFYING LIBRARIES OF MPI IMPLEMENTATIONS", ""]
    lines.append(f"{'MPI Implementation':<20} Library Dependencies")
    for kind, deps in rows.items():
        lines.append(f"{kind.value:<20} {deps}")
    return "\n".join(lines) + "\n"


def render_table2() -> str:
    """Table II: target site characteristics, from the catalog."""
    lines = ["TABLE II. TARGET SITE CHARACTERISTICS", ""]
    for spec in PAPER_SITE_SPECS:
        compilers = ", ".join(
            [f"GNU CC v{spec.system_gnu_version}"]
            + [f"{c.family.value.title()} v{c.version}"
               for c in spec.vendor_compilers])
        stacks = []
        by_release: dict[str, list[str]] = {}
        for request in spec.stacks:
            by_release.setdefault(str(request.release), []).append(
                request.compiler_family.short_code)
        for release, codes in by_release.items():
            stacks.append(f"{release} ({'/'.join(codes)})")
        lines.append(f"{spec.display_name}, {spec.organization} "
                     f"({spec.site_type} - {spec.cores:,})")
        lines.append(f"  OS:        {spec.distro.pretty_name}")
        lines.append(f"  C library: LibC v{spec.libc_version}; {compilers}")
        lines.append(f"  MPI:       {'; '.join(stacks)}")
        lines.append("")
    return "\n".join(lines)


def render_table3(result: ExperimentResult) -> str:
    """Table III: accuracy of the prediction model."""
    acc = accuracy_table(result.records)
    lines = ["TABLE III. ACCURACY OF PREDICTION MODEL", "",
             f"{'':14}{'Basic Prediction':>20}{'Extended Prediction':>22}",
             f"{'':14}{'NAS':>10}{'SPEC':>10}{'NAS':>11}{'SPEC':>11}"]
    lines.append(
        f"{'measured':<14}"
        f"{_pct(acc[Suite.NPB]['basic']):>10}"
        f"{_pct(acc[Suite.SPEC]['basic']):>10}"
        f"{_pct(acc[Suite.NPB]['extended']):>11}"
        f"{_pct(acc[Suite.SPEC]['extended']):>11}")
    lines.append(
        f"{'paper':<14}"
        f"{_pct(PAPER_TABLE3[Suite.NPB]['basic']):>10}"
        f"{_pct(PAPER_TABLE3[Suite.SPEC]['basic']):>10}"
        f"{_pct(PAPER_TABLE3[Suite.NPB]['extended']):>11}"
        f"{_pct(PAPER_TABLE3[Suite.SPEC]['extended']):>11}")
    return "\n".join(lines) + "\n"


def render_table4(result: ExperimentResult) -> str:
    """Table IV: impact of the resolution model."""
    table = resolution_table(result.records)
    lines = ["TABLE IV. IMPACT OF RESOLUTION MODEL", "",
             f"{'':14}{'Before':>14}{'After':>14}{'Increase':>14}"]
    for label, data in (("measured", table), ("paper", PAPER_TABLE4)):
        for suite in Suite:
            row = data[suite]
            lines.append(
                f"{label + ' ' + suite.value:<14}"
                f"{_pct(row['before']):>14}"
                f"{_pct(row['after']):>14}"
                f"{_pct(row['increase']):>14}")
    return "\n".join(lines) + "\n"


def render_site_matrix(result: ExperimentResult) -> str:
    """Per-(build site, target site) migration outcomes (beyond the paper).

    Rows are build sites, columns target sites; each cell shows
    ``successes/migrations`` after resolution.
    """
    names = [site.name for site in result.sites]
    cells: dict[tuple[str, str], list[int]] = {}
    for record in result.records:
        key = (record.build_site, record.target_site)
        counts = cells.setdefault(key, [0, 0])
        counts[1] += 1
        counts[0] += record.actual_after_ok
    width = 12
    corner = "build \\ target"
    lines = ["MIGRATION MATRIX (successes/migrations after resolution)", "",
             f"{corner:<{width + 2}}"
             + "".join(f"{name:>{width}}" for name in names)]
    for build in names:
        row = [f"{build:<{width + 2}}"]
        for target in names:
            if build == target:
                row.append(f"{'-':>{width}}")
                continue
            counts = cells.get((build, target))
            cell = f"{counts[0]}/{counts[1]}" if counts else "n/a"
            row.append(f"{cell:>{width}}")
        lines.append("".join(row))
    return "\n".join(lines) + "\n"


def render_intext(result: ExperimentResult) -> str:
    """Section VI.C in-text measurements."""
    breakdown = failure_breakdown(result.records, "before")
    total_failures = sum(breakdown.values())
    share = missing_library_share(result.records)
    avg_bundle = (sum(result.bundle_bytes_by_site.values())
                  / max(len(result.bundle_bytes_by_site), 1))
    lines = [
        "SECTION VI.C IN-TEXT MEASUREMENTS", "",
        f"FEAM phase durations (must be < 5 min = 300 s):",
        f"  max source phase: {result.max_source_phase_seconds:.0f} s",
        f"  max target phase: {result.max_target_phase_seconds:.0f} s",
        "",
        f"site-wide library bundles (paper: averaged ~45 MB):",
    ]
    for site, size in sorted(result.bundle_bytes_by_site.items()):
        lines.append(f"  {site:<12} {size / 1_000_000:.1f} MB")
    lines.append(f"  average      {avg_bundle / 1_000_000:.1f} MB")
    lines.append("")
    lines.append(f"failure causes before resolution "
                 f"({total_failures} failing migrations):")
    for cause, count in breakdown.most_common():
        lines.append(f"  {cause:<28} {count:>4}  "
                     f"({100 * count / total_failures:.0f}%)")
    lines.append("")
    lines.append(f"missing-shared-library share of failures: {_pct(share)} "
                 f"(paper: 'more than half')")
    if result.cache_stats is not None:
        lines.append("")
        lines.append(f"evaluation-engine cache: {result.cache_stats.render()}")
    return "\n".join(lines) + "\n"
