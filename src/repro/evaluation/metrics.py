"""Metrics over migration records.

Implements the paper's Section VI computations:

* **prediction accuracy** (Table III): fraction of migrations where the
  prediction matched the actual execution outcome, per suite and mode;
* **resolution impact** (Table IV): success rates before and after
  resolution, and the relative increase ("the increase in successful
  executions after applying our methods divided by the number of
  successful executions before");
* **failure breakdown** (Section VI.C): of the failing migrations, how
  many failed for each cause -- missing shared libraries should dominate.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from repro.corpus.benchmarks import Suite
from repro.evaluation.experiment import MigrationRecord


def _fraction(num: int, den: int) -> Optional[float]:
    return num / den if den else None


def accuracy(records: Iterable[MigrationRecord],
             mode: str) -> Optional[float]:
    """Prediction accuracy for ``mode`` ("basic" | "extended")."""
    records = list(records)
    if mode == "basic":
        correct = sum(1 for r in records if r.basic_correct)
    elif mode == "extended":
        correct = sum(1 for r in records if r.extended_correct)
    else:
        raise ValueError(f"unknown prediction mode: {mode!r}")
    return _fraction(correct, len(records))


def success_rate(records: Iterable[MigrationRecord],
                 when: str) -> Optional[float]:
    """Actual success rate ``when`` ("before" | "after") resolution."""
    records = list(records)
    if when == "before":
        ok = sum(1 for r in records if r.actual_before_ok)
    elif when == "after":
        ok = sum(1 for r in records if r.actual_after_ok)
    else:
        raise ValueError(f"unknown phase: {when!r}")
    return _fraction(ok, len(records))


def resolution_increase(records: Iterable[MigrationRecord]) -> Optional[float]:
    """Relative increase in successes due to resolution (Table IV)."""
    records = list(records)
    before = sum(1 for r in records if r.actual_before_ok)
    after = sum(1 for r in records if r.actual_after_ok)
    if before == 0:
        return None
    return (after - before) / before


def accuracy_table(records: Iterable[MigrationRecord],
                   ) -> dict[Suite, dict[str, Optional[float]]]:
    """Table III: accuracy per suite and prediction mode."""
    records = list(records)
    table: dict[Suite, dict[str, Optional[float]]] = {}
    for suite in Suite:
        members = [r for r in records if r.suite is suite]
        table[suite] = {
            "basic": accuracy(members, "basic"),
            "extended": accuracy(members, "extended"),
        }
    return table


def resolution_table(records: Iterable[MigrationRecord],
                     ) -> dict[Suite, dict[str, Optional[float]]]:
    """Table IV: success before/after resolution and the increase."""
    records = list(records)
    table: dict[Suite, dict[str, Optional[float]]] = {}
    for suite in Suite:
        members = [r for r in records if r.suite is suite]
        table[suite] = {
            "before": success_rate(members, "before"),
            "after": success_rate(members, "after"),
            "increase": resolution_increase(members),
        }
    return table


def failure_breakdown(records: Iterable[MigrationRecord],
                      when: str = "before") -> Counter:
    """Failure causes among unsuccessful migrations (Section VI.C)."""
    counter: Counter = Counter()
    for r in records:
        if when == "before" and not r.actual_before_ok:
            counter[r.actual_before_failure or "unknown"] += 1
        elif when == "after" and not r.actual_after_ok:
            counter[r.actual_after_failure or "unknown"] += 1
    return counter


def missing_library_share(records: Iterable[MigrationRecord]) -> Optional[float]:
    """Share of pre-resolution failures caused by missing shared libraries.

    The paper: "Of the failing jobs, more than half were missing shared
    libraries."
    """
    breakdown = failure_breakdown(records, "before")
    total = sum(breakdown.values())
    if not total:
        return None
    return breakdown.get("missing-shared-library", 0) / total


def mpi_identification_accuracy(records: Iterable[MigrationRecord],
                                expected_kinds: dict[str, str],
                                identified_kinds: dict[str, Optional[str]],
                                ) -> Optional[float]:
    """Accuracy of Table I's MPI identification over corpus binaries."""
    total = correct = 0
    for binary_id, expected in expected_kinds.items():
        total += 1
        if identified_kinds.get(binary_id) == expected:
            correct += 1
    return _fraction(correct, total)
