"""Command-line entry point.

``python -m repro <what>`` regenerates the paper's tables and figures:

* ``table1`` .. ``table4`` -- the paper's Tables I-IV;
* ``intext`` -- the Section VI.C in-text measurements (phase durations,
  bundle sizes, failure breakdown);
* ``fig1`` .. ``fig4`` -- Figures 1-4 (textual);
* ``matrix`` -- per-site-pair migration outcomes (beyond the paper);
* ``effort`` -- the user-effort quantification (the paper's future work);
* ``ablation`` -- the determinant-ablation study;
* ``all`` -- everything (one experiment run is shared).

Everything past the figures requires running the full evaluation (about
half a minute); one run is shared across all requested artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.evaluation import figures, tables
from repro.evaluation.experiment import ExperimentResult, run_experiment

_STATIC = {
    "table1": tables.render_table1,
    "table2": tables.render_table2,
    "fig1": figures.render_figure1,
    "fig2": figures.render_figure2,
    "fig3": figures.render_figure3,
    "fig4": figures.render_figure4,
}

def _render_effort(result: ExperimentResult) -> str:
    from repro.evaluation.effort import render_effort
    return render_effort(result.records)


def _render_ablation(result: ExperimentResult) -> str:
    from repro.evaluation.ablation import (
        determinant_ablation,
        render_determinant_ablation,
    )
    return render_determinant_ablation(
        determinant_ablation(result.records, mode="basic"))


def _render_report(result: ExperimentResult) -> str:
    from repro.evaluation.reportgen import render_markdown_report
    return render_markdown_report(result)


_EXPERIMENTAL = {
    "table3": tables.render_table3,
    "table4": tables.render_table4,
    "intext": tables.render_intext,
    "matrix": tables.render_site_matrix,
    "effort": _render_effort,
    "ablation": _render_ablation,
    "report": _render_report,
}


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the FEAM paper's tables and figures.")
    parser.add_argument(
        "what", nargs="+",
        choices=sorted(_STATIC) + sorted(_EXPERIMENTAL) + ["all"],
        help="which artifact(s) to regenerate")
    parser.add_argument(
        "--seed", type=int, default=20130101,
        help="experiment seed (default: 20130101)")
    args = parser.parse_args(argv)

    wanted = list(args.what)
    if "all" in wanted:
        wanted = sorted(_STATIC) + sorted(_EXPERIMENTAL)

    result: Optional[ExperimentResult] = None
    for what in wanted:
        if what in _STATIC:
            print(_STATIC[what]())
        else:
            if result is None:
                print("running the full evaluation "
                      "(compile matrix + 800+ migrations)...",
                      file=sys.stderr)
                from repro.evaluation.experiment import ExperimentConfig
                result = run_experiment(ExperimentConfig(seed=args.seed))
            print(_EXPERIMENTAL[what](result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
