"""Command-line entry point.

``python -m repro <what>`` regenerates the paper's tables and figures:

* ``table1`` .. ``table4`` -- the paper's Tables I-IV;
* ``intext`` -- the Section VI.C in-text measurements (phase durations,
  bundle sizes, failure breakdown);
* ``fig1`` .. ``fig4`` -- Figures 1-4 (textual);
* ``matrix`` -- per-site-pair migration outcomes (beyond the paper);
* ``effort`` -- the user-effort quantification (the paper's future work);
* ``ablation`` -- the determinant-ablation study;
* ``all`` -- everything (one experiment run is shared).

Everything past the figures requires running the full evaluation (about
half a minute); one run is shared across all requested artifacts.

``python -m repro feam <command>`` (also installed as the ``feam``
console script) drives the framework itself rather than the paper
artifacts:

* ``feam matrix`` -- batch-evaluate a set of binaries against a site
  set through the cached :class:`~repro.core.engine.EvaluationEngine`,
  printing the readiness grid and cache statistics (``--sites`` picks
  the paper's five sites or a generated fleet such as
  ``fleet:n=1000,seed=7``, ``--verbose`` adds per-cell cache
  provenance, ``--trace-out`` writes the run's trace as JSONL,
  ``--journal`` checkpoints completed cells as JSONL and ``--resume``
  restores them, re-evaluating only the rest);
* ``feam chaos`` -- run the same matrix under a fault-injection
  profile (:mod:`repro.sysmodel.faults`): injected faults degrade
  cells to UNKNOWN with failure provenance instead of crashing the
  run, and a fault/retry/breaker summary table follows the grid;
* ``feam trace`` -- run one real evaluation under the observability
  collector and pretty-print the span tree (every determinant check,
  the discovery step and each resolution copy);
* ``feam stats`` -- run a batch evaluation and dump the metrics
  registry (counters, gauges, histogram summaries);
* ``feam top`` -- aggregate a JSONL trace into a flame table (per
  span name: call count, total/self wall and sim time) and optionally
  its critical path;
* ``feam diff-trace A B`` -- per-span-name deltas between two traces,
  with an optional regression gate (``--fail-above``);
* ``feam slo`` -- evaluate declarative threshold rules against a live
  batch run (or a recorded trace's metrics snapshot) and exit non-zero
  on violation;
* ``feam serve`` -- run a batch evaluation while exposing ``/metrics``
  (Prometheus text format), ``/healthz``, ``/trace``, ``/slo`` and
  ``/snapshot`` over HTTP;
* ``feam watch`` -- live fleet dashboard: attach to a running ``feam
  serve`` (``--attach URL``) or drive a matrix run, re-rendering
  cells/sec, queue depth, per-shard cache hit rates, breaker states
  and a rolling latency histogram in place (plain one-line summaries
  when stdout is not a TTY);
* ``feam query`` -- filter/aggregate a wide-event JSONL file written
  by ``feam matrix --wide-out`` (``--where outcome=unknown --by site
  --top 20``, percentile aggregations like ``--agg p95:wall_seconds``);
* ``feam runs`` -- list/inspect the run ledger
  (:mod:`repro.obs.ledger`): every ``feam matrix`` / ``feam chaos`` /
  benchmark invocation records one schema-versioned manifest into
  ``.feam/runs/`` (``--where``/``--top`` filter the listing; ``feam
  runs show REF`` prints one manifest; ``feam runs import FILE``
  migrates a legacy ``BENCH_history.jsonl``);
* ``feam compare A B`` -- cross-run regression attribution between two
  ledger manifests: outcome-flip table, per-determinant and per-phase
  latency ratios (added/removed semantics like ``diff-trace``), cache
  hit-rate and retry drift; ``--fail-above`` exits 3 on any ratio
  above the gate;
* ``feam drift`` -- the newest run against a rolling baseline of the
  last N runs of its kind, flagging metric excursions; ``--rules``
  additionally applies SLO rules (exit 2 on violation);
* ``feam alerts`` -- the multi-window burn-rate alert engine
  (:mod:`repro.obs.alerts`): drive a live matrix run (one evaluation
  round per tick) or ``--replay`` a recorded wide-event or ledger
  JSONL file, run the anomaly detector over the stream, and print the
  alert states plus an incident timeline (``--timeline FILE``); exit
  2 while anything is firing.

``feam`` subcommands use distinct exit codes so CI can tell failure
modes apart: 1 = operational error (bad input, unknown site), 2 = SLO
violation, 3 = performance regression gate tripped.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Optional

from repro.evaluation import figures, tables
from repro.evaluation.experiment import ExperimentResult, run_experiment

_STATIC = {
    "table1": tables.render_table1,
    "table2": tables.render_table2,
    "fig1": figures.render_figure1,
    "fig2": figures.render_figure2,
    "fig3": figures.render_figure3,
    "fig4": figures.render_figure4,
}

def _render_effort(result: ExperimentResult) -> str:
    from repro.evaluation.effort import render_effort
    return render_effort(result.records)


def _render_ablation(result: ExperimentResult) -> str:
    from repro.evaluation.ablation import (
        determinant_ablation,
        render_determinant_ablation,
    )
    return render_determinant_ablation(
        determinant_ablation(result.records, mode="basic"))


def _render_report(result: ExperimentResult) -> str:
    from repro.evaluation.reportgen import render_markdown_report
    return render_markdown_report(result)


_EXPERIMENTAL = {
    "table3": tables.render_table3,
    "table4": tables.render_table4,
    "intext": tables.render_intext,
    "matrix": tables.render_site_matrix,
    "effort": _render_effort,
    "ablation": _render_ablation,
    "report": _render_report,
}

# ``feam`` exit codes: distinct per failure mode so scripts and CI can
# branch on them (covered by tests/test_cli.py).
EXIT_OK = 0
EXIT_FAILURE = 1        # operational error: missing file, unknown site
EXIT_SLO_VIOLATION = 2  # one or more SLO rules failed
EXIT_REGRESSION = 3     # performance regression gate tripped


def feam_main(argv: Optional[list[str]] = None) -> int:
    """The ``feam`` tool: drive the framework (not the paper artifacts)."""
    parser = argparse.ArgumentParser(
        prog="feam",
        description="Drive FEAM: batch readiness evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)
    matrix = sub.add_parser(
        "matrix",
        help="batch-evaluate binaries x sites through the evaluation "
             "engine and print the readiness grid plus cache statistics")
    matrix.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    matrix.add_argument(
        "--binaries", type=int, default=4,
        help="how many test binaries to compile (one per site, "
             "round-robin; default: 4)")
    matrix.add_argument(
        "--sites", default="paper", metavar="SPEC",
        help="site set: 'paper' (the five paper sites) or a generator "
             "spec like 'fleet:n=1000,seed=7' (default: paper)")
    matrix.add_argument(
        "--extended", action="store_true",
        help="also run source phases and evaluate in extended mode")
    matrix.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for the work-stealing matrix planner "
             "(default: the matrix_workers config key, or "
             "min(32, 4 x cpu) when that is 0)")
    matrix.add_argument(
        "--verbose", action="store_true",
        help="also print per-cell cache provenance and non-pass "
             "determinants")
    matrix.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="write the run's observability trace as JSONL")
    matrix.add_argument(
        "--journal", metavar="FILE.jsonl", default=None,
        help="append each completed cell to this JSONL checkpoint "
             "as it finishes")
    matrix.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="restore completed cells from this journal and "
             "evaluate only the rest; new cells are appended back "
             "to it unless --journal names another file")
    _add_telemetry_args(matrix)
    _add_ledger_args(matrix)
    _add_cache_args(matrix)

    chaos = sub.add_parser(
        "chaos",
        help="run the matrix under a fault-injection profile and print "
             "the readiness grid plus a fault/retry/breaker summary")
    chaos.add_argument(
        "--profile", default="flaky",
        help="built-in fault profile (none, flaky, partition, corrupt) "
             "or a profile file -- text ('read-error @ * rate=0.15 "
             "persistent' per line) or JSON (default: flaky)")
    chaos.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed, also the fault plan's injection seed "
             "(default: 20130101)")
    chaos.add_argument(
        "--binaries", type=int, default=4,
        help="how many test binaries to compile (default: 4)")
    chaos.add_argument(
        "--sites", default="paper", metavar="SPEC",
        help="site set: 'paper' or a generator spec like "
             "'fleet:n=100,seed=7' (default: paper)")
    chaos.add_argument(
        "--extended", action="store_true",
        help="also run source phases and evaluate in extended mode")
    chaos.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool size (default: 1 -- single-threaded keeps "
             "same-seed runs and their journals byte-identical)")
    chaos.add_argument(
        "--verbose", action="store_true",
        help="also print per-cell cache and failure provenance")
    chaos.add_argument(
        "--journal", metavar="FILE.jsonl", default=None,
        help="append each completed cell to this JSONL checkpoint")
    chaos.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="restore completed cells from this journal and evaluate "
             "only the rest")
    chaos.add_argument(
        "--summary-out", metavar="FILE.json", default=None,
        help="also write the fault/retry/breaker summary as JSON")
    chaos.add_argument(
        "--timeline", metavar="FILE.jsonl", default=None,
        help="append the run's alert transitions (the wide-event "
             "stream replayed through the burn-rate alert engine) to "
             "this incident-timeline JSONL file")
    _add_telemetry_args(chaos)
    _add_ledger_args(chaos)
    _add_cache_args(chaos)

    trace = sub.add_parser(
        "trace",
        help="run one real evaluation under the observability collector "
             "and pretty-print the span tree")
    trace.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    trace.add_argument(
        "--build-site", default="fir",
        help="site whose toolchain builds the test binary "
             "(default: fir)")
    trace.add_argument(
        "--target-site", default="ranger",
        help="site the binary is migrated to (default: ranger -- a "
             "migration whose resolution stages library copies)")
    trace.add_argument(
        "--stack", default=None, metavar="SLUG",
        help="MPI stack slug at the build site (default: its first)")
    trace.add_argument(
        "--basic", action="store_true",
        help="skip the source phase (basic prediction; no resolution)")
    trace.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="also write the trace as JSONL")

    stats = sub.add_parser(
        "stats",
        help="run a batch evaluation and dump the metrics registry")
    stats.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    stats.add_argument(
        "--binaries", type=int, default=4,
        help="how many test binaries to compile (default: 4)")
    stats.add_argument(
        "--extended", action="store_true",
        help="also run source phases and evaluate in extended mode")
    stats.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the per-site planner")
    stats.add_argument(
        "--sites", default="paper", metavar="SPEC",
        help="site set: 'paper' or a generator spec like "
             "'fleet:n=100,seed=7' (default: paper)")
    stats.add_argument(
        "--top", type=int, default=20,
        help="rows per metrics section; the rest folds into an "
             "'... and K more' footer (default: 20)")

    top = sub.add_parser(
        "top",
        help="aggregate a JSONL trace into a flame table (count, "
             "total/self wall and sim time per span name)")
    top.add_argument("trace", help="JSONL trace file (feam matrix "
                                   "--trace-out / feam trace --trace-out)")
    top.add_argument(
        "--sort", default="wall_self",
        choices=("wall_self", "wall_total", "sim_self", "sim_total",
                 "count"),
        help="flame table sort key (default: wall_self)")
    top.add_argument(
        "--limit", "--top", dest="limit", type=int, default=20,
        help="rows to print; the rest folds into an '... and K more' "
             "footer (default: 20)")
    top.add_argument(
        "--critical-path", action="store_true",
        help="also print the heaviest root-to-leaf chain")
    top.add_argument(
        "--clock", default="wall", choices=("wall", "sim"),
        help="clock for the critical path (default: wall)")

    diff = sub.add_parser(
        "diff-trace",
        help="per-span-name deltas between two JSONL traces; with "
             "--fail-above, exit 3 when the regression gate trips")
    diff.add_argument("base", help="baseline JSONL trace")
    diff.add_argument("curr", help="current JSONL trace")
    diff.add_argument(
        "--limit", type=int, default=30,
        help="rows to print (default: 30)")
    diff.add_argument(
        "--fail-above", type=float, default=None, metavar="RATIO",
        help="regression gate: exit 3 when total wall time (or any "
             "span name with >= --min-wall baseline) grows beyond "
             "RATIO x baseline (e.g. 1.25)")
    diff.add_argument(
        "--min-wall", type=float, default=0.001, metavar="SECONDS",
        help="ignore per-name regressions below this baseline wall "
             "time (default: 0.001)")

    slo = sub.add_parser(
        "slo",
        help="evaluate SLO threshold rules against a live batch run "
             "(or a recorded trace) and exit 2 on violation")
    slo.add_argument(
        "--rules", metavar="FILE", default=None,
        help="rules file (one 'metric <= 0.5' per line, '#' comments, "
             "trailing '?' marks a rule optional); default: built-in "
             "warm-run objectives")
    slo.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="evaluate against this trace's metrics snapshot instead "
             "of running a live evaluation")
    slo.add_argument(
        "--rounds", type=int, default=2,
        help="matrix evaluations to run before checking (default: 2 "
             "-- the second round exercises the warm cache path)")
    slo.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of a table")
    for live_arg in (slo,):
        live_arg.add_argument("--seed", type=int, default=20130101,
                              help="world seed (default: 20130101)")
        live_arg.add_argument("--binaries", type=int, default=4,
                              help="test binaries to compile (default: 4)")
        live_arg.add_argument("--extended", action="store_true",
                              help="also run source phases")
        live_arg.add_argument("--workers", type=int, default=None,
                              help="thread-pool size")

    serve = sub.add_parser(
        "serve",
        help="run a batch evaluation while serving /metrics "
             "(Prometheus), /healthz, /trace and /slo over HTTP")
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=9464,
        help="bind port; 0 picks a free one (default: 9464)")
    serve.add_argument(
        "--rounds", type=int, default=2,
        help="matrix evaluations to run while serving (default: 2)")
    serve.add_argument(
        "--linger", type=float, default=-1.0, metavar="SECONDS",
        help="keep serving this long after the run (negative = until "
             "interrupted; default: -1)")
    serve.add_argument(
        "--rules", metavar="FILE", default=None,
        help="SLO rules file for the /slo endpoint")
    serve.add_argument("--seed", type=int, default=20130101,
                       help="world seed (default: 20130101)")
    serve.add_argument("--binaries", type=int, default=4,
                       help="test binaries to compile (default: 4)")
    serve.add_argument("--extended", action="store_true",
                       help="also run source phases")
    serve.add_argument("--workers", type=int, default=None,
                       help="thread-pool size")
    serve.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="run-ledger directory for the /runs endpoint (default: "
             "$FEAM_LEDGER_DIR, then the ledger_dir config key)")

    watch = sub.add_parser(
        "watch",
        help="live fleet dashboard: attach to a running feam serve "
             "(--attach URL) or drive a matrix run, re-rendering "
             "cells/sec, queue depth, shard hit rates, breaker states "
             "and a rolling latency histogram in place")
    watch.add_argument(
        "--attach", metavar="URL", default=None,
        help="poll this feam serve base URL's /snapshot endpoint "
             "instead of driving a run (e.g. http://127.0.0.1:9464)")
    watch.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh interval in seconds (default: 1.0)")
    watch.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="with --attach: stop after this long (default: until "
             "Ctrl-C or the server goes away)")
    watch.add_argument("--seed", type=int, default=20130101,
                       help="world seed (default: 20130101)")
    watch.add_argument("--binaries", type=int, default=4,
                       help="test binaries to compile (default: 4)")
    watch.add_argument(
        "--sites", default="paper", metavar="SPEC",
        help="site set: 'paper' or a generator spec like "
             "'fleet:n=1000,seed=7' (default: paper)")
    watch.add_argument("--extended", action="store_true",
                       help="also run source phases")
    watch.add_argument("--workers", type=int, default=None,
                       help="thread-pool size")

    query = sub.add_parser(
        "query",
        help="filter/aggregate a wide-event JSONL file (feam matrix "
             "--wide-out): --where outcome=unknown --by site --top 20")
    query.add_argument(
        "events", metavar="WIDE.jsonl",
        help="wide-event JSONL file (from --wide-out)")
    query.add_argument(
        "--where", action="append", default=[], metavar="CLAUSE",
        help="filter clause, repeatable: field=value, field!=value, "
             "or field>=number (also > < <=); clauses AND together")
    query.add_argument(
        "--by", default=None, metavar="FIELD",
        help="group rows by this record field (default: one global "
             "group)")
    query.add_argument(
        "--agg", action="append", default=[], metavar="SPEC",
        help="aggregation column, repeatable: count (default) or "
             "sum|min|max|mean|p50|p95|p99:field, e.g. p95:wall_seconds")
    query.add_argument(
        "--top", type=int, default=20,
        help="rows to print, ranked by the first aggregation "
             "(default: 20)")
    query.add_argument(
        "--json", action="store_true",
        help="emit the result as JSON instead of a table")

    runs = sub.add_parser(
        "runs",
        help="list/inspect the run ledger: 'feam runs' lists, 'feam "
             "runs show REF' prints one manifest, 'feam runs import "
             "FILE' migrates a legacy BENCH_history.jsonl")
    runs.add_argument(
        "action", nargs="*", metavar="ACTION",
        help="'list' (default), 'show REF' (run id, unique prefix, "
             "'latest' or a negative index like -2), or 'import FILE'")
    runs.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="ledger directory (default: $FEAM_LEDGER_DIR, then the "
             "ledger_dir config key, .feam/runs)")
    runs.add_argument(
        "--where", action="append", default=[], metavar="CLAUSE",
        help="filter clause over the flattened manifest, repeatable: "
             "kind=chaos, rollup.cells>=20, seed!=7")
    runs.add_argument(
        "--top", type=int, default=20,
        help="most recent runs listed (default: 20)")
    runs.add_argument(
        "--json", action="store_true",
        help="emit manifests as JSON instead of a table")

    compare = sub.add_parser(
        "compare",
        help="cross-run regression attribution between two ledger "
             "runs: outcome flips, per-determinant and per-phase "
             "latency ratios, cache/retry drift; with --fail-above, "
             "exit 3 when any ratio crosses the gate")
    compare.add_argument(
        "base", help="baseline run: id, unique prefix, 'latest' or a "
                     "negative index like -2")
    compare.add_argument(
        "curr", help="current run (same reference forms)")
    compare.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="ledger directory (default: $FEAM_LEDGER_DIR, then the "
             "ledger_dir config key)")
    compare.add_argument(
        "--fail-above", type=float, default=None, metavar="RATIO",
        help="regression gate: exit 3 when any sim/phase/determinant "
             "latency ratio exceeds RATIO (e.g. 1.5)")
    compare.add_argument(
        "--json", action="store_true",
        help="emit the comparison as JSON instead of a report")

    drift = sub.add_parser(
        "drift",
        help="newest ledger run vs a rolling baseline of the last N "
             "runs of its kind; flags metric excursions, and with "
             "--rules applies SLO rules (exit 2 on violation)")
    drift.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="ledger directory (default: $FEAM_LEDGER_DIR, then the "
             "ledger_dir config key)")
    drift.add_argument(
        "--window", type=int, default=10,
        help="baseline window: earlier runs of the same kind averaged "
             "into the baseline (default: 10)")
    drift.add_argument(
        "--tolerance", type=float, default=0.25,
        help="fractional excursion tolerance around the baseline mean "
             "(default: 0.25)")
    drift.add_argument(
        "--rules", metavar="FILE", default=None,
        help="SLO rules file evaluated against the newest manifest's "
             "flattened metrics (e.g. 'rollup.sim.mean <= 40')")
    drift.add_argument(
        "--json", action="store_true",
        help="emit the drift report as JSON")

    alerts = sub.add_parser(
        "alerts",
        help="multi-window burn-rate alerting: drive a live matrix "
             "run (one round per evaluation tick) or --replay a "
             "recorded wide-event/ledger JSONL stream, plus robust "
             "median/MAD anomaly detection; exit 2 while firing")
    alerts.add_argument(
        "--replay", metavar="FILE.jsonl", default=None,
        help="replay this recorded stream instead of running live: "
             "wide events (feam matrix/chaos --wide-out) fold into "
             "one burn-rate tick per --batch records; ledger "
             "manifests (records with a 'rollup') tick once per run "
             "with the rollup.* rule vocabulary")
    alerts.add_argument(
        "--rules", metavar="FILE", default=None,
        help="SLO rules file to arm (same grammar as feam slo, "
             "including [critical]/[warn] tags); default: the "
             "deterministic built-in alert set")
    alerts.add_argument(
        "--burn", metavar="FAST:SLOW[:FRACTION]", default=None,
        help="burn windows in ticks: every fast tick AND at least "
             "FRACTION of the slow window must violate (default: "
             "2:6:0.5)")
    alerts.add_argument(
        "--for", dest="for_ticks", type=int, default=2, metavar="N",
        help="for-duration damping: the condition must hold N "
             "consecutive ticks before pending escalates to firing "
             "(default: 2)")
    alerts.add_argument(
        "--batch", type=int, default=10,
        help="wide-event replay: records folded into each evaluation "
             "tick (default: 10)")
    alerts.add_argument(
        "--anomaly-threshold", type=float, default=None,
        metavar="Z", help="robust z-score cutoff for the wide-event "
                          "anomaly detector (default: 3.5)")
    alerts.add_argument(
        "--min-groups", type=int, default=None, metavar="N",
        help="content groups needed before the anomaly detector "
             "speaks (default: 4)")
    alerts.add_argument(
        "--timeline", metavar="FILE.jsonl", default=None,
        help="append every alert transition to this incident-"
             "timeline JSONL file")
    alerts.add_argument(
        "--json", action="store_true",
        help="emit the final alert states as JSON instead of a report")
    alerts.add_argument(
        "--rounds", type=int, default=3,
        help="live mode: matrix evaluation rounds, one burn-rate "
             "tick each (default: 3)")
    alerts.add_argument("--seed", type=int, default=20130101,
                        help="world seed, also the anomaly detector's "
                             "tie-break seed (default: 20130101)")
    alerts.add_argument("--binaries", type=int, default=4,
                        help="test binaries to compile (default: 4)")
    alerts.add_argument(
        "--sites", default="paper", metavar="SPEC",
        help="site set: 'paper' or a generator spec like "
             "'fleet:n=100,seed=7' (default: paper)")
    alerts.add_argument("--extended", action="store_true",
                        help="also run source phases")
    alerts.add_argument("--workers", type=int, default=None,
                        help="thread-pool size")

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain the persistent evaluation cache "
             "(the on-disk tier under the engine's caches)")
    cache.add_argument(
        "action", choices=("stats", "verify", "compact", "clear"),
        help="stats = per-layer entry/byte counts; verify = full "
             "integrity check (exit 1 on any corrupt, torn or "
             "newer-schema record); compact = rewrite segments "
             "dropping superseded/corrupt lines and applying the LRU "
             "byte cap; clear = delete every segment")
    cache.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: $FEAM_CACHE_DIR, then the "
             "cache_dir config key)")
    cache.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON")

    args = parser.parse_args(argv)
    if args.command == "matrix":
        return _feam_matrix(args)
    if args.command == "chaos":
        return _feam_chaos(args)
    if args.command == "trace":
        return _feam_trace(args)
    if args.command == "stats":
        return _feam_stats(args)
    if args.command == "top":
        return _feam_top(args)
    if args.command == "diff-trace":
        return _feam_diff_trace(args)
    if args.command == "slo":
        return _feam_slo(args)
    if args.command == "serve":
        return _feam_serve(args)
    if args.command == "watch":
        return _feam_watch(args)
    if args.command == "query":
        return _feam_query(args)
    if args.command == "runs":
        return _feam_runs(args)
    if args.command == "compare":
        return _feam_compare(args)
    if args.command == "drift":
        return _feam_drift(args)
    if args.command == "alerts":
        return _feam_alerts(args)
    if args.command == "cache":
        return _feam_cache(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _add_telemetry_args(parser) -> None:
    """The shared ``feam matrix`` / ``feam chaos`` telemetry flags.

    Both default OFF: the chaos determinism gate depends on same-seed
    reruns staying byte-identical, and telemetry must be a pure
    opt-in overlay.
    """
    parser.add_argument(
        "--wide-out", metavar="FILE.jsonl", default=None,
        help="stream one wide event per cell (identity, verdict, "
             "per-determinant outcomes, cache/retry/breaker "
             "provenance, sim + wall clocks) to this JSONL file; "
             "query it afterwards with 'feam query'")
    parser.add_argument(
        "--sample-spans", type=int, default=None, metavar="N",
        help="tail-based span sampling: keep full span trees only for "
             "degraded/faulted/SLO-breaching cells plus a seeded "
             "1-in-N head sample; everything else keeps just its wide "
             "event (0 disables the head sample; pair with "
             "--trace-out to see the effect)")
    parser.add_argument(
        "--sample-slo", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget above which a sampled cell's spans "
             "are always kept (default: the "
             "sampling_latency_slo_seconds config key)")


def _telemetry_from_args(args, config):
    """``(wide_sink, sampler)`` from the telemetry flags, or None."""
    from repro.obs.sampling import SamplingPolicy
    from repro.obs.wide import WideEventSink

    wide_sink = None
    if getattr(args, "wide_out", None):
        try:
            wide_sink = WideEventSink(ring_size=config.wide_ring_size,
                                      path=args.wide_out)
        except OSError as exc:
            print(f"cannot open wide-event file {args.wide_out!r}: "
                  f"{exc}", file=sys.stderr)
            return None
    sampler = None
    if getattr(args, "sample_spans", None) is not None:
        slo_seconds = (args.sample_slo if args.sample_slo is not None
                       else config.sampling_latency_slo_seconds)
        sampler = SamplingPolicy(seed=args.seed,
                                 head_n=args.sample_spans,
                                 latency_slo_seconds=slo_seconds)
    return wide_sink, sampler


def _report_telemetry(wide_sink, collector=None) -> None:
    """The post-run stderr summary of the telemetry overlay."""
    if wide_sink is not None:
        dropped = (f" ({wide_sink.dropped} evicted from the ring)"
                   if wide_sink.dropped else "")
        print(f"wide events: {wide_sink.emitted} written to "
              f"{wide_sink.path}{dropped}", file=sys.stderr)
    if collector is not None:
        counters = collector.metrics.to_dict()["counters"]
        kept = counters.get("obs.sampling.kept", 0)
        dropped = counters.get("obs.sampling.dropped", 0)
        if kept or dropped:
            print(f"span sampling: kept {kept} cell tree(s), dropped "
                  f"{dropped}", file=sys.stderr)


def _add_ledger_args(parser) -> None:
    """The shared ``feam matrix`` / ``feam chaos`` run-ledger flags."""
    parser.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="run-ledger directory this run's manifest is recorded "
             "into (default: $FEAM_LEDGER_DIR, then the ledger_dir "
             "config key, .feam/runs)")
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run into the ledger")


def _ledger_dir(args, config) -> str:
    """--ledger, then $FEAM_LEDGER_DIR, then the config key."""
    return (getattr(args, "ledger", None)
            or os.environ.get("FEAM_LEDGER_DIR")
            or config.ledger_dir)


def _ledger_from_args(args, config):
    """The run ledger for this invocation, or None with --no-ledger."""
    from repro.obs.ledger import RunLedger

    if getattr(args, "no_ledger", False):
        return None
    return RunLedger(_ledger_dir(args, config),
                     max_runs=config.ledger_max_runs)


def _add_cache_args(parser) -> None:
    """The shared ``feam matrix`` / ``feam chaos`` persistent-cache flags."""
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent evaluation cache directory: descriptions, "
             "discoveries and evaluations persist across runs and "
             "warm-start the next process (default: $FEAM_CACHE_DIR, "
             "then the cache_dir config key; unset = in-memory only)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent cache this run")


def _cache_dir(args, config) -> str:
    """--cache-dir, then $FEAM_CACHE_DIR, then the config key."""
    return (getattr(args, "cache_dir", None)
            or os.environ.get("FEAM_CACHE_DIR")
            or config.cache_dir)


def _persist_from_args(args, config):
    """The persistent store for this run, or None (no dir / --no-cache).

    The store's scope digests the seed and sites spec, so hand-built
    worlds from different seeds never share discovery records;
    content-keyed fleet records are content-addressed and scope-free.
    """
    from repro.core.persist import PersistentStore
    from repro.util.hashing import stable_digest

    if getattr(args, "no_cache", False) or not config.persist:
        return None
    directory = _cache_dir(args, config)
    if not directory:
        return None
    scope = stable_digest(str(getattr(args, "seed", "")),
                          getattr(args, "sites", None) or "paper")[:16]
    return PersistentStore(directory,
                           max_bytes=config.cache_max_bytes,
                           scope=scope)


def _feam_cache(args) -> int:
    import json as json_mod

    from repro.core.config import FeamConfig
    from repro.core.persist import LAYERS, PersistentStore

    config = FeamConfig()
    directory = _cache_dir(args, config)
    if not directory:
        print("no cache directory: give --cache-dir, set "
              "$FEAM_CACHE_DIR, or set the cache_dir config key",
              file=sys.stderr)
        return EXIT_FAILURE
    try:
        store = PersistentStore(directory,
                                max_bytes=config.cache_max_bytes)
    except OSError as exc:
        print(f"cannot open cache {directory!r}: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE
    try:
        if args.action == "stats":
            stats = store.stats()
            if args.json:
                print(json_mod.dumps(stats, indent=2, sort_keys=True))
                return EXIT_OK
            print(f"cache: {stats['directory']} "
                  f"(schema {stats['schema']})")
            for layer in LAYERS:
                info = stats["layers"][layer]
                print(f"  {layer:<12} {info['entries']:>6} entries  "
                      f"{info['bytes']:>10} bytes")
            print(f"  {'total':<12} {stats['entries']:>6} entries  "
                  f"{stats['bytes']:>10} bytes "
                  f"(cap {stats['max_bytes']} bytes/segment)")
            return EXIT_OK
        if args.action == "verify":
            report = store.verify()
            if args.json:
                print(json_mod.dumps(report, indent=2, sort_keys=True))
            else:
                for layer in LAYERS:
                    info = report["layers"][layer]
                    issues = {k: v for k, v in info.items()
                              if k not in ("entries", "bytes") and v}
                    detail = (", ".join(f"{k}={v}" for k, v
                                        in sorted(issues.items()))
                              or "clean")
                    print(f"  {layer:<12} {info['entries']:>6} "
                          f"entries  {detail}")
                print("store: " + ("OK" if report["ok"] else "CORRUPT"))
            return EXIT_OK if report["ok"] else EXIT_FAILURE
        if args.action == "compact":
            summary = store.compact()
            if args.json:
                print(json_mod.dumps(summary, indent=2, sort_keys=True))
            else:
                for layer in LAYERS:
                    info = summary[layer]
                    print(f"  {layer:<12} kept {info['kept']}, "
                          f"evicted {info['evicted']}, "
                          f"{info['bytes']} bytes")
            return EXIT_OK
        if args.action == "clear":
            dropped = store.clear()
            print(f"cleared {dropped} entries from {directory}")
            return EXIT_OK
        return EXIT_FAILURE  # pragma: no cover - argparse enforces
    finally:
        store.close()


def _record_matrix_run(ledger, args, engine, result, collector,
                       wide_sink, kind: str,
                       fault_profile: Optional[str] = None) -> None:
    """Record one finished matrix/chaos run into the ledger.

    Ledger trouble (read-only checkout, full disk) must never fail the
    run that produced the results: warn on stderr and move on.  All
    ledger output goes to stderr -- the chaos determinism gate compares
    stdout byte-for-byte, and run ids carry wall timestamps.
    """
    from repro.core.engine import default_matrix_workers, run_rollup
    from repro.util.hashing import stable_digest

    if ledger is None:
        return
    snapshot = collector.metrics.to_dict() if collector is not None \
        else None
    wide_events = wide_sink.events() if wide_sink is not None else None
    manifest = {
        "kind": kind,
        "seed": args.seed,
        "sites_spec": getattr(args, "sites", None) or "paper",
        "binaries": args.binaries,
        "workers": (engine.max_workers or engine.config.matrix_workers
                    or default_matrix_workers()),
        "cache_shards": engine.config.cache_shards,
        "config_fingerprint": stable_digest(engine.config.render())[:16],
        "fault_profile": fault_profile,
    }
    manifest.update(run_rollup(result, snapshot=snapshot,
                               wide_events=wide_events))
    try:
        written = ledger.record(manifest)
    except OSError as exc:
        print(f"ledger: cannot record run in {ledger.path}: {exc}",
              file=sys.stderr)
        return
    print(f"ledger: run {written['run_id']} recorded in {ledger.path}",
          file=sys.stderr)


def _build_matrix_inputs(args):
    """Shared ``feam matrix`` / ``feam stats`` setup: sites + binaries."""
    from repro.core.engine import EngineBinary, EvaluationEngine
    from repro.core.feam import Feam
    from repro.sites.generator import describe_fleet, resolve_sites
    from repro.toolchain.compilers import Language

    spec_text = getattr(args, "sites", None) or "paper"
    print(f"building sites ({spec_text})...", file=sys.stderr)
    try:
        sites = resolve_sites(spec_text, default_seed=args.seed)
    except ValueError as exc:
        print(f"bad --sites spec: {exc}", file=sys.stderr)
        return None
    print(describe_fleet(sites), file=sys.stderr)
    from repro.core.config import FeamConfig
    config = FeamConfig()
    try:
        store = _persist_from_args(args, config)
    except OSError as exc:
        print(f"cannot open persistent cache: {exc}", file=sys.stderr)
        return None
    if store is not None:
        print(f"persistent cache: {store.directory}", file=sys.stderr)
    engine = EvaluationEngine(config=config, max_workers=args.workers,
                              persist=store)
    feam = Feam(engine=engine)
    binaries: list[EngineBinary] = []
    bundles = {}
    # Test binaries compile at the first sites round-robin; on a fleet
    # that is the first few generated sites rather than the paper five.
    build_pool = sites[:max(1, min(len(sites), args.binaries))]
    for index in range(max(1, args.binaries)):
        site = build_pool[index % len(build_pool)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"app-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
        if args.extended:
            path = f"/home/user/{name}"
            site.machine.fs.write(path, linked.image, mode=0o755)
            bundles[name] = feam.run_source_phase(
                site, path, env=site.env_with_stack(stack))
    return sites, engine, binaries, bundles


def _journal_identity(args) -> dict:
    """The run-identity header stamped into (and checked against) a
    matrix journal: resuming cells computed under a different config,
    world seed or site set would silently corrupt the matrix."""
    from repro.core.config import FeamConfig
    from repro.util.hashing import stable_digest

    return {
        "config_fingerprint": stable_digest(
            FeamConfig().render())[:16],
        "sites_spec": getattr(args, "sites", None) or "paper",
        "seed": args.seed,
    }


def _open_checkpoint(args):
    """``(journal, resume)`` from --journal/--resume, or None on error.

    With --resume but no --journal, new cells are appended back to the
    resume file itself, so repeated resumes converge on one journal.
    A journal whose identity header contradicts this run's config
    fingerprint, seed or sites spec is refused (exit 1), not silently
    restored.
    """
    from repro.core.resilience import MatrixJournal

    identity = _journal_identity(args)
    resume = None
    if getattr(args, "resume", None):
        try:
            resume = MatrixJournal.load(args.resume, expect=identity)
        except OSError as exc:
            print(f"cannot read journal {args.resume!r}: {exc}",
                  file=sys.stderr)
            return None
        except ValueError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return None
        print(f"resuming: {len(resume)} cell(s) already journaled in "
              f"{args.resume}", file=sys.stderr)
    journal = None
    journal_path = getattr(args, "journal", None) \
        or getattr(args, "resume", None)
    if journal_path:
        try:
            journal = MatrixJournal(journal_path, header=identity)
        except OSError as exc:
            print(f"cannot open journal {journal_path!r}: {exc}",
                  file=sys.stderr)
            return None
    return journal, resume


def _feam_matrix(args) -> int:
    from repro import obs

    checkpoint = _open_checkpoint(args)
    if checkpoint is None:
        return EXIT_FAILURE
    journal, resume = checkpoint
    inputs = _build_matrix_inputs(args)
    if inputs is None:
        return EXIT_FAILURE
    sites, engine, binaries, bundles = inputs
    telemetry = _telemetry_from_args(args, engine.config)
    if telemetry is None:
        if journal is not None:
            journal.close()
        return EXIT_FAILURE
    wide_sink, sampler = telemetry
    ledger = _ledger_from_args(args, engine.config)
    print(f"evaluating {len(binaries)} binaries x {len(sites)} sites...",
          file=sys.stderr)
    # Always run under a collector: the run-ledger rollup distils its
    # phase latency digests and retry counters from the metrics
    # snapshot.  Stdout is unchanged, so determinism gates still hold.
    try:
        with obs.capture() as collector:
            result = engine.evaluate_matrix(
                binaries, sites, bundles=bundles or None,
                journal=journal, resume=resume,
                wide_sink=wide_sink, sampler=sampler)
        if args.trace_out:
            obs.export.write_jsonl(args.trace_out, collector)
            print(f"trace written to {args.trace_out} "
                  f"({len(collector.spans)} spans)", file=sys.stderr)
    finally:
        engine.close()
        if journal is not None:
            journal.close()
        if wide_sink is not None:
            wide_sink.close()
    print(result.render(verbose=args.verbose))
    if journal is not None:
        print(f"journal: {journal.written} cell(s) appended to "
              f"{journal.path}", file=sys.stderr)
    _report_telemetry(wide_sink, collector)
    _record_matrix_run(ledger, args, engine, result, collector,
                       wide_sink, kind="matrix")
    return 0


def _resolve_fault_plan(spec: str, seed: int):
    """A FaultPlan from a built-in name or a profile file, or None."""
    from repro.sysmodel import faults as faults_mod

    if spec in faults_mod.PROFILES:
        return faults_mod.FaultPlan.profile(spec, seed=seed)
    if os.path.exists(spec):
        try:
            with open(spec, "r", encoding="utf-8") as handle:
                text = handle.read()
            return faults_mod.FaultPlan.parse(
                text, seed=seed, name=os.path.basename(spec))
        except OSError as exc:
            print(f"cannot read fault profile {spec!r}: {exc}",
                  file=sys.stderr)
        except ValueError as exc:
            print(f"bad fault profile {spec!r}: {exc}", file=sys.stderr)
        return None
    print(f"unknown fault profile {spec!r}; built-in: "
          f"{', '.join(sorted(faults_mod.PROFILES))} (or give a "
          f"profile file)", file=sys.stderr)
    return None


def _chaos_summary(plan, engine, result, counters: dict) -> dict:
    """The JSON-ready fault/retry/breaker summary of one chaos run."""
    cells = list(result.cells)
    return {
        "plan": plan.summary(),
        "matrix": {
            "cells": len(cells),
            "faulted_cells": sum(1 for cell in cells if cell.faulted),
            "resumed": result.resumed,
            "quarantined_sites": sorted(result.quarantined),
        },
        "retries": counters.get("resilience.retries.total", 0),
        "cells_degraded": counters.get("resilience.cells.faulted", 0),
        "quarantine_skips": counters.get(
            "resilience.cells.quarantined", 0),
        "rollbacks": counters.get("resolution.rollbacks", 0),
        "breakers": engine.site_health(),
    }


def _render_chaos_summary(summary: dict) -> str:
    plan = summary["plan"]
    matrix = summary["matrix"]
    lines = ["chaos summary",
             "-------------",
             f"profile: {plan['profile']} (seed {plan['seed']})",
             f"faults injected: {plan['injected']}"]
    for kind, count in sorted(plan["by_kind"].items()):
        lines.append(f"  {kind:<20} {count:>4}")
    lines.append(
        f"cells: {matrix['cells']} evaluated, "
        f"{matrix['faulted_cells']} degraded to unknown, "
        f"{matrix['resumed']} resumed from the journal")
    lines.append(f"retries: {summary['retries']}")
    lines.append(f"quarantine skips: {summary['quarantine_skips']}")
    if summary["rollbacks"]:
        lines.append(f"staging rollbacks: {summary['rollbacks']}")
    lines.append("breakers:")
    for site, state in sorted(summary["breakers"].items()):
        lines.append(f"  {site:<12} {state}")
    return "\n".join(lines)


def _chaos_alerts(args, alert_feed):
    """Replay a chaos run's wide events through the alert engine.

    Injected faults must *visibly* trip alerts: the summary goes on
    stdout right after the chaos table.  The chaos determinism gate
    byte-compares same-seed stdout, so everything printed here is
    derived from the wide events alone (logical ticks, no wall
    clocks).  Returns the engine, or None when --timeline cannot be
    opened.
    """
    from repro.obs import alerts as alerts_mod

    sinks: list = []
    if getattr(args, "timeline", None):
        try:
            sinks.append(alerts_mod.JsonlSink(args.timeline))
        except OSError as exc:
            print(f"cannot open timeline {args.timeline!r}: {exc}",
                  file=sys.stderr)
            return None
    engine = alerts_mod.AlertEngine(sinks=sinks, emit_obs=False)
    alerts_mod.replay_wide(alert_feed.events(), engine)
    engine.close()
    print()
    print("alerts")
    print("------")
    print(alerts_mod.render_alerts(engine))
    if getattr(args, "timeline", None):
        print(f"timeline: {len(engine.transitions)} transition(s) "
              f"appended to {args.timeline}", file=sys.stderr)
    return engine


def _feam_chaos(args) -> int:
    import json

    from repro import obs
    from repro.sysmodel import faults as faults_mod

    plan = _resolve_fault_plan(args.profile, args.seed)
    if plan is None:
        return EXIT_FAILURE
    checkpoint = _open_checkpoint(args)
    if checkpoint is None:
        return EXIT_FAILURE
    journal, resume = checkpoint
    inputs = _build_matrix_inputs(args)
    if inputs is None:
        return EXIT_FAILURE
    sites, engine, binaries, bundles = inputs
    telemetry = _telemetry_from_args(args, engine.config)
    if telemetry is None:
        if journal is not None:
            journal.close()
        return EXIT_FAILURE
    wide_sink, sampler = telemetry
    ledger = _ledger_from_args(args, engine.config)
    print(f"injecting fault profile {plan.name!r} "
          f"({len(plan.specs)} spec(s), seed {plan.seed}); evaluating "
          f"{len(binaries)} binaries x {len(sites)} sites...",
          file=sys.stderr)
    # An internal in-memory wide sink feeds the post-run alert replay
    # when the user did not ask for --wide-out; the *user's* sink (or
    # None) still goes to the ledger so manifests are unchanged.
    from repro.obs.wide import WideEventSink
    alert_feed = wide_sink if wide_sink is not None else WideEventSink()
    # Arm *after* the sites are built so compilation stays clean; the
    # faults land on the evaluation itself.
    plan.arm(sites)
    try:
        with obs.capture() as collector:
            with faults_mod.injecting(plan):
                result = engine.evaluate_matrix(
                    binaries, sites, bundles=bundles or None,
                    journal=journal, resume=resume,
                    wide_sink=alert_feed, sampler=sampler)
    finally:
        faults_mod.FaultPlan.disarm(sites)
        engine.close()
        if journal is not None:
            journal.close()
        if wide_sink is not None:
            wide_sink.close()
    print(result.render(verbose=args.verbose))
    print()
    counters = collector.metrics.to_dict()["counters"]
    summary = _chaos_summary(plan, engine, result, counters)
    print(_render_chaos_summary(summary))
    if _chaos_alerts(args, alert_feed) is None:
        return EXIT_FAILURE
    if journal is not None:
        print(f"journal: {journal.written} cell(s) appended to "
              f"{journal.path}", file=sys.stderr)
    _report_telemetry(wide_sink, collector)
    _record_matrix_run(ledger, args, engine, result, collector,
                       wide_sink, kind="chaos", fault_profile=plan.name)
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"summary written to {args.summary_out}", file=sys.stderr)
    return EXIT_OK


def _feam_stats(args) -> int:
    from repro import obs

    inputs = _build_matrix_inputs(args)
    if inputs is None:
        return EXIT_FAILURE
    sites, engine, binaries, bundles = inputs
    print(f"evaluating {len(binaries)} binaries x {len(sites)} sites...",
          file=sys.stderr)
    try:
        with obs.capture() as collector:
            engine.evaluate_matrix(binaries, sites,
                                   bundles=bundles or None)
    finally:
        engine.close()
    print(collector.metrics.render(limit=max(1, args.top)))
    return 0


def _feam_trace(args) -> int:
    from repro import obs
    from repro.core.feam import Feam
    from repro.sites.catalog import build_paper_sites
    from repro.toolchain.compilers import Language

    print("building the paper's five sites...", file=sys.stderr)
    sites = {s.name: s for s in build_paper_sites(args.seed, cached=False)}
    for role, name in (("build", args.build_site),
                       ("target", args.target_site)):
        if name not in sites:
            print(f"unknown {role} site {name!r}; choose from "
                  f"{', '.join(sorted(sites))}", file=sys.stderr)
            return EXIT_FAILURE
    build_site = sites[args.build_site]
    target = sites[args.target_site]
    if args.stack is not None:
        stack = next((s for s in build_site.stacks
                      if s.spec.slug == args.stack), None)
        if stack is None:
            print(f"no stack {args.stack!r} at {build_site.name}; choose "
                  f"from {', '.join(s.spec.slug for s in build_site.stacks)}",
                  file=sys.stderr)
            return EXIT_FAILURE
    else:
        stack = build_site.stacks[0]
    name = f"traced-{build_site.name}-{stack.spec.slug}"
    linked = build_site.compile_mpi_program(name, Language.FORTRAN, stack)
    path = f"/home/user/{name}"
    build_site.machine.fs.write(path, linked.image, mode=0o755)

    feam = Feam()
    bundle = None
    if not args.basic:
        print(f"source phase at {build_site.name}...", file=sys.stderr)
        bundle = feam.run_source_phase(
            build_site, path, env=build_site.env_with_stack(stack))
    target.machine.fs.write(path, linked.image, mode=0o755)
    print(f"target phase at {target.name} "
          f"({'basic' if args.basic else 'extended'})...", file=sys.stderr)
    with obs.capture() as collector:
        report = feam.run_target_phase(
            target, binary_path=path, bundle=bundle)
    print(obs.export.render_span_tree(collector.spans))
    print()
    verdict = "READY" if report.ready else "NOT READY"
    print(f"verdict: {verdict} "
          f"({len(collector.spans)} spans, "
          f"{len(collector.events.events)} events)")
    for reason in report.prediction.reasons:
        print(f"  reason: {reason}")
    if args.trace_out:
        obs.export.write_jsonl(args.trace_out, collector)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


def _load_trace_spans(path: str):
    """Spans from a JSONL trace, or None (after an stderr message)."""
    from repro.obs.analyze import spans_from_jsonl_file

    try:
        return spans_from_jsonl_file(path)
    except OSError as exc:
        print(f"cannot read trace {path!r}: {exc}", file=sys.stderr)
    except ValueError as exc:
        print(f"malformed trace {path!r}: {exc}", file=sys.stderr)
    return None


def _feam_top(args) -> int:
    from repro.obs import analyze

    spans = _load_trace_spans(args.trace)
    if spans is None:
        return EXIT_FAILURE
    prof = analyze.profile(spans)
    print(analyze.render_top(prof, sort=args.sort, limit=args.limit))
    if args.critical_path:
        print()
        print(analyze.render_critical_path(
            analyze.critical_path(spans, clock=args.clock),
            clock=args.clock))
    return EXIT_OK


def _feam_diff_trace(args) -> int:
    from repro.obs import analyze

    base_spans = _load_trace_spans(args.base)
    curr_spans = _load_trace_spans(args.curr)
    if base_spans is None or curr_spans is None:
        return EXIT_FAILURE
    base = analyze.profile(base_spans)
    curr = analyze.profile(curr_spans)
    deltas = analyze.diff_profiles(base, curr)
    print(analyze.render_diff(deltas, limit=args.limit))
    if args.fail_above is None:
        return EXIT_OK

    regressions: list[str] = []
    base_wall = sum(f.wall_total for f in base.frames.values())
    curr_wall = sum(f.wall_total for f in curr.frames.values())
    if base_wall > 0 and curr_wall > base_wall * args.fail_above:
        regressions.append(
            f"total wall {base_wall:.4f}s -> {curr_wall:.4f}s "
            f"({curr_wall / base_wall:.2f}x > {args.fail_above:g}x)")
    for delta in deltas:
        ratio = delta.wall_ratio
        if (ratio is not None and delta.base is not None
                and delta.base.wall_total >= args.min_wall
                and ratio > args.fail_above):
            regressions.append(
                f"{delta.name}: {delta.base.wall_total:.4f}s -> "
                f"{delta.curr.wall_total if delta.curr else 0.0:.4f}s "
                f"({ratio:.2f}x > {args.fail_above:g}x)")
    if regressions:
        print(f"\nREGRESSION (gate {args.fail_above:g}x):",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"\nregression gate {args.fail_above:g}x: ok", file=sys.stderr)
    return EXIT_OK


def _load_slo_rules(path: Optional[str]):
    """Rules from *path*, built-in defaults for None, None on error."""
    from repro.obs import slo as slo_mod

    if path is None:
        return slo_mod.DEFAULT_RULES
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return slo_mod.parse_rules(handle.read())
    except OSError as exc:
        print(f"cannot read rules {path!r}: {exc}", file=sys.stderr)
    except ValueError as exc:
        print(f"bad rules file {path!r}: {exc}", file=sys.stderr)
    return None


def _feam_slo(args) -> int:
    import json

    from repro import obs
    from repro.obs import slo as slo_mod

    rules = _load_slo_rules(args.rules)
    if rules is None:
        return EXIT_FAILURE

    if args.trace:
        try:
            with open(args.trace, "r", encoding="utf-8") as handle:
                parsed = obs.export.parse_jsonl(handle.read())
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace!r}: {exc}",
                  file=sys.stderr)
            return EXIT_FAILURE
        report = slo_mod.evaluate(rules, parsed.metrics)
    else:
        inputs = _build_matrix_inputs(args)
        if inputs is None:
            return EXIT_FAILURE
        sites, engine, binaries, bundles = inputs
        print(f"evaluating {len(binaries)} binaries x {len(sites)} "
              f"sites, {max(1, args.rounds)} round(s)...", file=sys.stderr)
        with obs.capture():
            for _ in range(max(1, args.rounds)):
                engine.evaluate_matrix(
                    binaries, sites, bundles=bundles or None)
            report = slo_mod.check(rules)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return EXIT_OK if report.ok else EXIT_SLO_VIOLATION


def _feam_watch(args) -> int:
    import threading
    import time as time_mod

    from repro import obs
    from repro.obs import watch as watch_mod

    interval = max(0.1, args.interval)
    out = sys.stdout
    tty = out.isatty()
    renderer = watch_mod.InPlaceRenderer(out) if tty else None
    state = watch_mod.WatchState()

    def draw(snap: dict, total_cells=None) -> None:
        before = state.advance(snap, interval)
        if tty:
            renderer.draw(watch_mod.render_frame(
                snap, before, interval, state.elapsed, total_cells))
        else:
            print(watch_mod.render_line(
                snap, before, interval, state.elapsed, total_cells),
                flush=True)

    if args.attach:
        import json as json_mod
        from urllib.request import urlopen

        base = args.attach.rstrip("/")
        deadline = (time_mod.monotonic() + args.duration
                    if args.duration is not None else None)
        misses = 0
        connected = False
        print(f"watching {base}/snapshot every {interval:g}s",
              file=sys.stderr)
        try:
            while True:
                try:
                    with urlopen(f"{base}/snapshot", timeout=5) as resp:
                        snap = json_mod.load(resp)
                    misses = 0
                    connected = True
                except (OSError, ValueError) as exc:
                    if not connected:
                        # Never reached at all: fail immediately with
                        # one clean line instead of polling a server
                        # that was wrong to begin with.
                        print(f"cannot reach {base}: {exc}",
                              file=sys.stderr)
                        return EXIT_FAILURE
                    misses += 1
                    if misses >= 3:
                        print(f"lost {base}: {exc}", file=sys.stderr)
                        return EXIT_FAILURE
                    snap = state.previous or {}
                draw(snap)
                if deadline is not None \
                        and time_mod.monotonic() >= deadline:
                    return EXIT_OK
                time_mod.sleep(interval)
        except KeyboardInterrupt:
            return EXIT_OK

    # Drive mode: run the matrix in a worker thread and render the
    # installed collector's snapshots until it finishes.
    inputs = _build_matrix_inputs(args)
    if inputs is None:
        return EXIT_FAILURE
    sites, engine, binaries, bundles = inputs
    total_cells = len(binaries) * len(sites)
    print(f"evaluating {len(binaries)} binaries x {len(sites)} "
          f"sites...", file=sys.stderr)
    results: list = []
    failures: list = []

    def run() -> None:
        try:
            results.append(engine.evaluate_matrix(
                binaries, sites, bundles=bundles or None))
        except BaseException as exc:  # surfaced on the main thread
            failures.append(exc)

    with obs.capture() as collector:
        thread = threading.Thread(target=run, name="feam-watch-matrix",
                                  daemon=True)
        thread.start()
        try:
            while thread.is_alive():
                thread.join(interval)
                draw(watch_mod.sample(collector), total_cells)
        except KeyboardInterrupt:
            print("interrupted; abandoning the matrix run",
                  file=sys.stderr)
            return EXIT_FAILURE
    if failures:
        print(f"matrix run failed: {failures[0]}", file=sys.stderr)
        return EXIT_FAILURE
    result = results[0]
    ready = sum(1 for c in result.cells if c.outcome_word == "ready")
    unknown = sum(1 for c in result.cells if c.outcome_word == "unknown")
    print(f"done: {len(result.cells)} cells, {ready} ready, "
          f"{unknown} unknown, {len(result.cells) - ready - unknown} no")
    return EXIT_OK


def _feam_query(args) -> int:
    import json as json_mod

    from repro.obs import store as store_mod
    from repro.obs import wide as wide_mod

    try:
        records = wide_mod.read_jsonl(args.events)
    except OSError as exc:
        print(f"cannot read wide events {args.events!r}: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE
    except ValueError as exc:
        print(f"bad wide events {args.events!r}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    try:
        where = [store_mod.parse_where(clause) for clause in args.where]
        aggs = [store_mod.parse_agg(spec) for spec in args.agg]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILURE
    result = store_mod.run_query(records, where=where, by=args.by,
                                 aggs=aggs, top=max(1, args.top))
    if args.json:
        print(json_mod.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(store_mod.render_result(result, where=where))
    return EXIT_OK


def _open_ledger(args):
    """The ledger named by --ledger/$FEAM_LEDGER_DIR/config defaults."""
    from repro.core.config import FeamConfig
    from repro.obs.ledger import RunLedger

    config = FeamConfig()
    return RunLedger(_ledger_dir(args, config),
                     max_runs=config.ledger_max_runs)


def _runs_import(ledger, path: str) -> int:
    """``feam runs import``: migrate a legacy BENCH_history.jsonl.

    Legacy lines come in two shapes -- matrix-bench (no ``kind``) and
    ``"kind": "fleet"`` -- and gain ``kind``/``schema`` tags plus a
    run id derived from the line's content, so re-importing the same
    file is a no-op (duplicates are skipped, not doubled).
    """
    from repro import obs
    from repro.obs import ledger as ledger_mod
    from repro.util.jsonl import dump_line, read_jsonl

    try:
        records = read_jsonl(path)
    except OSError as exc:
        print(f"cannot read history {path!r}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    existing = {run.get("run_id") for run in ledger.runs()}
    imported = skipped = 0
    for record in records:
        kind = ("legacy-fleet-bench" if record.get("kind") == "fleet"
                else "legacy-bench")
        ts = record.get("ts") or ledger_mod.utc_timestamp()
        run_id = ledger_mod.make_run_id(ts, "import", dump_line(record))
        if run_id in existing:
            skipped += 1
            continue
        bench = {key: value for key, value in record.items()
                 if key not in ("ts", "seed", "kind", "spec")}
        manifest = {
            "schema": ledger_mod.SCHEMA_VERSION,
            "run_id": run_id,
            "ts": ts,
            "kind": kind,
            "seed": record.get("seed"),
            "sites_spec": record.get("spec"),
            "bench": bench,
        }
        try:
            ledger.record(manifest)
        except OSError as exc:
            print(f"cannot record into {ledger.path}: {exc}",
                  file=sys.stderr)
            return EXIT_FAILURE
        existing.add(run_id)
        imported += 1
    obs.counter("ledger.imported").inc(imported)
    print(f"imported {imported} run(s) from {path} into {ledger.path} "
          f"({skipped} already present)")
    return EXIT_OK


def _render_runs_table(shown: list, matched: int, total: int,
                       ledger) -> str:
    """The ``feam runs`` listing (oldest first, newest last)."""
    lines = [f"run ledger {ledger.path}: {matched}/{total} run(s) match"]
    if not shown:
        lines.append("(no runs)")
        return "\n".join(lines)
    rows = []
    for run in shown:
        rollup = run.get("rollup") or {}
        outcomes = rollup.get("outcomes") or {}
        cells = rollup.get("cells")
        summary = (f"{outcomes.get('ready', 0)}r/"
                   f"{outcomes.get('unknown', 0)}u/"
                   f"{outcomes.get('no', 0)}n" if outcomes else "-")
        sim = (rollup.get("sim") or {}).get("mean")
        rows.append((str(run.get("run_id", "?")),
                     str(run.get("kind", "?")),
                     str(run.get("ts", "?")),
                     str(run.get("seed", "-")),
                     "-" if cells is None else str(cells),
                     summary,
                     "-" if sim is None else f"{sim:.4g}"))
    headers = ("run_id", "kind", "ts", "seed", "cells", "outcomes",
               "sim_mean")
    widths = [max(len(headers[i]), max(len(row[i]) for row in rows))
              for i in range(len(headers))]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _feam_runs(args) -> int:
    import json as json_mod

    from repro.obs import ledger as ledger_mod
    from repro.obs import store as store_mod

    ledger = _open_ledger(args)
    tokens = list(args.action)
    action = tokens[0] if tokens else "list"
    if action == "import":
        if len(tokens) != 2:
            print("usage: feam runs import FILE", file=sys.stderr)
            return EXIT_FAILURE
        return _runs_import(ledger, tokens[1])
    if action == "show":
        if len(tokens) != 2:
            print("usage: feam runs show REF", file=sys.stderr)
            return EXIT_FAILURE
        try:
            run = ledger.resolve(tokens[1])
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return EXIT_FAILURE
        print(json_mod.dumps(run, indent=2, sort_keys=True))
        return EXIT_OK
    if action != "list" or len(tokens) > 1:
        print(f"unknown feam runs action {tokens!r} (expected 'list', "
              f"'show REF' or 'import FILE')", file=sys.stderr)
        return EXIT_FAILURE
    try:
        where = [store_mod.parse_where(clause) for clause in args.where]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILURE
    runs = ledger.runs()
    # --where reuses the wide-event predicate machinery over the
    # flattened manifest (kind=chaos, rollup.cells>=20, ...).
    matched = [run for run in runs
               if all(clause.matches(ledger_mod.flatten(run))
                      for clause in where)]
    shown = matched[-max(1, args.top):]
    if args.json:
        print(json_mod.dumps(shown, indent=2, sort_keys=True))
    else:
        print(_render_runs_table(shown, len(matched), len(runs), ledger))
    return EXIT_OK


def _feam_compare(args) -> int:
    import json as json_mod

    from repro.obs import compare as compare_mod

    ledger = _open_ledger(args)
    try:
        base = ledger.resolve(args.base)
        curr = ledger.resolve(args.curr)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILURE
    comparison = compare_mod.compare_runs(base, curr)
    regressions = (compare_mod.gate(comparison, args.fail_above)
                   if args.fail_above is not None else [])
    if args.json:
        payload = dict(comparison)
        if args.fail_above is not None:
            payload["fail_above"] = args.fail_above
            payload["regressions"] = regressions
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        print(compare_mod.render_comparison(
            comparison, fail_above=args.fail_above))
    return EXIT_REGRESSION if regressions else EXIT_OK


def _feam_drift(args) -> int:
    import json as json_mod

    from repro.obs import compare as compare_mod

    ledger = _open_ledger(args)
    rules = ()
    if args.rules is not None:
        rules = _load_slo_rules(args.rules)
        if rules is None:
            return EXIT_FAILURE
    try:
        report = compare_mod.drift(
            ledger.runs(), window=args.window,
            tolerance=args.tolerance, rules=rules)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILURE
    if args.json:
        print(json_mod.dumps(report, indent=2, sort_keys=True))
    else:
        print(compare_mod.render_drift(report))
    return EXIT_OK if report["slo_ok"] else EXIT_SLO_VIOLATION


def _alert_engine_from_args(args, slos=None):
    """An armed AlertEngine (plus its sinks) from the alerts flags,
    or None on a bad flag."""
    from repro.obs import alerts as alerts_mod

    try:
        windows = (alerts_mod.BurnWindows.parse(args.burn)
                   if args.burn else alerts_mod.BurnWindows())
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    if slos is None:
        slos = alerts_mod.DEFAULT_ALERT_SLOS
    sinks: list = []
    if getattr(args, "timeline", None):
        try:
            sinks.append(alerts_mod.JsonlSink(args.timeline))
        except OSError as exc:
            print(f"cannot open timeline {args.timeline!r}: {exc}",
                  file=sys.stderr)
            return None
    sinks.append(alerts_mod.StderrSink())
    rules = alerts_mod.alert_rules(slos, windows=windows,
                                   for_ticks=max(1, args.for_ticks))
    return alerts_mod.AlertEngine(rules, sinks=sinks)


def _detect_anomalies(records, args, engine) -> int:
    """One anomaly-detector pass over wide events, folded into the
    alert engine; returns how many anomalies it raised."""
    from repro.core.engine import anomaly_features
    from repro.obs import anomaly as anomaly_mod

    threshold = (args.anomaly_threshold
                 if args.anomaly_threshold is not None
                 else anomaly_mod.DEFAULT_THRESHOLD)
    min_groups = (args.min_groups if args.min_groups is not None
                  else anomaly_mod.MIN_GROUPS)
    anomalies = anomaly_mod.detect(
        records, anomaly_features, threshold=threshold,
        seed=args.seed, min_groups=min_groups)
    engine.observe_anomalies(anomalies)
    return len(anomalies)


def _feam_alerts(args) -> int:
    import json as json_mod

    from repro import obs
    from repro.obs import alerts as alerts_mod
    from repro.obs import wide as wide_mod

    if args.replay:
        try:
            records = wide_mod.read_jsonl(args.replay)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.replay!r}: {exc}",
                  file=sys.stderr)
            return EXIT_FAILURE
        if not records:
            print(f"{args.replay}: no records to replay",
                  file=sys.stderr)
            return EXIT_FAILURE
        if "rollup" in records[0]:
            # Ledger manifests: one run = one tick, rollup.* rules.
            slos = (alerts_mod.DEFAULT_LEDGER_SLOS
                    if args.rules is None
                    else _load_slo_rules(args.rules))
            if slos is None:
                return EXIT_FAILURE
            engine = _alert_engine_from_args(args, slos)
            if engine is None:
                return EXIT_FAILURE
            ticks = alerts_mod.replay_ledger(records, engine)
            print(f"replayed {len(records)} ledger run(s) as "
                  f"{ticks} tick(s)", file=sys.stderr)
        else:
            slos = (None if args.rules is None
                    else _load_slo_rules(args.rules))
            if args.rules is not None and slos is None:
                return EXIT_FAILURE
            engine = _alert_engine_from_args(args, slos)
            if engine is None:
                return EXIT_FAILURE
            ticks = alerts_mod.replay_wide(records, engine,
                                           batch=max(1, args.batch))
            raised = _detect_anomalies(records, args, engine)
            print(f"replayed {len(records)} wide event(s) as {ticks} "
                  f"tick(s); anomaly detector raised {raised}",
                  file=sys.stderr)
    else:
        # Live drive mode: each matrix round is one evaluation tick;
        # an internal wide sink feeds the anomaly detector at the end.
        slos = (None if args.rules is None
                else _load_slo_rules(args.rules))
        if args.rules is not None and slos is None:
            return EXIT_FAILURE
        engine = _alert_engine_from_args(args, slos)
        if engine is None:
            return EXIT_FAILURE
        inputs = _build_matrix_inputs(args)
        if inputs is None:
            return EXIT_FAILURE
        sites, eval_engine, binaries, bundles = inputs
        wide_sink = wide_mod.WideEventSink()
        print(f"evaluating {len(binaries)} binaries x {len(sites)} "
              f"sites, {max(1, args.rounds)} round(s)...",
              file=sys.stderr)
        with obs.capture():
            for _ in range(max(1, args.rounds)):
                eval_engine.evaluate_matrix(
                    binaries, sites, bundles=bundles or None,
                    wide_sink=wide_sink)
                engine.observe(obs.metrics().to_dict())
        raised = _detect_anomalies(wide_sink.events(), args, engine)
        print(f"{engine.tick} evaluation tick(s); anomaly detector "
              f"raised {raised}", file=sys.stderr)

    if args.timeline:
        print(f"timeline: {len(engine.transitions)} transition(s) "
              f"appended to {args.timeline}", file=sys.stderr)
    engine.close()
    if args.json:
        print(json_mod.dumps(engine.to_dict(), indent=2,
                             sort_keys=True))
    else:
        print(alerts_mod.render_alerts(engine))
    return EXIT_SLO_VIOLATION if engine.firing else EXIT_OK


def _feam_serve(args) -> int:
    import time as time_mod

    from repro import obs
    from repro.obs import slo as slo_mod
    from repro.obs.serve import TelemetryServer

    rules = _load_slo_rules(args.rules)
    if rules is None:
        return EXIT_FAILURE
    inputs = _build_matrix_inputs(args)
    if inputs is None:
        return EXIT_FAILURE
    sites, engine, binaries, bundles = inputs
    ledger = _ledger_from_args(args, engine.config)
    with obs.capture() as collector:
        try:
            server = TelemetryServer(collector, host=args.host,
                                     port=args.port, rules=rules,
                                     ledger=ledger)
        except OSError as exc:
            print(f"cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return EXIT_FAILURE
        with server:
            print(f"serving {server.url}/metrics (+ /healthz /trace "
                  f"/slo /alerts /snapshot /runs)", file=sys.stderr)
            print(f"evaluating {len(binaries)} binaries x {len(sites)} "
                  f"sites, {max(1, args.rounds)} round(s)...",
                  file=sys.stderr)
            for _ in range(max(1, args.rounds)):
                engine.evaluate_matrix(
                    binaries, sites, bundles=bundles or None)
            report = slo_mod.check(rules)
            print(report.render(), file=sys.stderr)
            try:
                if args.linger < 0:
                    print("run finished; still serving -- Ctrl-C to "
                          "stop", file=sys.stderr)
                    while True:
                        time_mod.sleep(3600)
                elif args.linger:
                    time_mod.sleep(args.linger)
            except KeyboardInterrupt:
                pass
    return EXIT_OK


def main(argv: Optional[list[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "feam":
        return feam_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the FEAM paper's tables and figures.")
    parser.add_argument(
        "what", nargs="+",
        choices=sorted(_STATIC) + sorted(_EXPERIMENTAL) + ["all"],
        help="which artifact(s) to regenerate")
    parser.add_argument(
        "--seed", type=int, default=20130101,
        help="experiment seed (default: 20130101)")
    parser.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="write the evaluation run's observability trace as JSONL")
    args = parser.parse_args(argv)

    wanted = list(args.what)
    if "all" in wanted:
        wanted = sorted(_STATIC) + sorted(_EXPERIMENTAL)

    result: Optional[ExperimentResult] = None
    for what in wanted:
        if what in _STATIC:
            print(_STATIC[what]())
        else:
            if result is None:
                print("running the full evaluation "
                      "(compile matrix + 800+ migrations)...",
                      file=sys.stderr)
                from repro import obs
                from repro.evaluation.experiment import ExperimentConfig
                # The experiment always runs traced: the report's
                # observability section and --trace-out read from the
                # collector; the spans cost a few percent of a run that
                # is dominated by simulated compilation and execution.
                with obs.capture() as collector:
                    result = run_experiment(ExperimentConfig(seed=args.seed))
                if args.trace_out:
                    obs.export.write_jsonl(args.trace_out, collector)
                    print(f"trace written to {args.trace_out} "
                          f"({len(collector.spans)} spans)",
                          file=sys.stderr)
            print(_EXPERIMENTAL[what](result))
    return 0


def _run(entry: "Callable[[], int]") -> int:
    """Run a CLI entry point tolerating a closed stdout.

    ``feam top trace.jsonl | head`` closes the pipe early; dying with a
    BrokenPipeError traceback (and a nonzero status that would trip the
    exit-code contract) is wrong for a filter-friendly CLI.
    """
    try:
        return entry()
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


def console_main() -> int:
    """``feam`` console-script entry point."""
    return _run(feam_main)


if __name__ == "__main__":
    raise SystemExit(_run(main))
