"""Command-line entry point.

``python -m repro <what>`` regenerates the paper's tables and figures:

* ``table1`` .. ``table4`` -- the paper's Tables I-IV;
* ``intext`` -- the Section VI.C in-text measurements (phase durations,
  bundle sizes, failure breakdown);
* ``fig1`` .. ``fig4`` -- Figures 1-4 (textual);
* ``matrix`` -- per-site-pair migration outcomes (beyond the paper);
* ``effort`` -- the user-effort quantification (the paper's future work);
* ``ablation`` -- the determinant-ablation study;
* ``all`` -- everything (one experiment run is shared).

Everything past the figures requires running the full evaluation (about
half a minute); one run is shared across all requested artifacts.

``python -m repro feam <command>`` (also installed as the ``feam``
console script) drives the framework itself rather than the paper
artifacts:

* ``feam matrix`` -- batch-evaluate a set of binaries against every
  paper site through the cached :class:`~repro.core.engine.\
EvaluationEngine`, printing the readiness grid and cache statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.evaluation import figures, tables
from repro.evaluation.experiment import ExperimentResult, run_experiment

_STATIC = {
    "table1": tables.render_table1,
    "table2": tables.render_table2,
    "fig1": figures.render_figure1,
    "fig2": figures.render_figure2,
    "fig3": figures.render_figure3,
    "fig4": figures.render_figure4,
}

def _render_effort(result: ExperimentResult) -> str:
    from repro.evaluation.effort import render_effort
    return render_effort(result.records)


def _render_ablation(result: ExperimentResult) -> str:
    from repro.evaluation.ablation import (
        determinant_ablation,
        render_determinant_ablation,
    )
    return render_determinant_ablation(
        determinant_ablation(result.records, mode="basic"))


def _render_report(result: ExperimentResult) -> str:
    from repro.evaluation.reportgen import render_markdown_report
    return render_markdown_report(result)


_EXPERIMENTAL = {
    "table3": tables.render_table3,
    "table4": tables.render_table4,
    "intext": tables.render_intext,
    "matrix": tables.render_site_matrix,
    "effort": _render_effort,
    "ablation": _render_ablation,
    "report": _render_report,
}


def feam_main(argv: Optional[list[str]] = None) -> int:
    """The ``feam`` tool: drive the framework (not the paper artifacts)."""
    parser = argparse.ArgumentParser(
        prog="feam",
        description="Drive FEAM: batch readiness evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)
    matrix = sub.add_parser(
        "matrix",
        help="batch-evaluate binaries x sites through the evaluation "
             "engine and print the readiness grid plus cache statistics")
    matrix.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    matrix.add_argument(
        "--binaries", type=int, default=4,
        help="how many test binaries to compile (one per site, "
             "round-robin; default: 4)")
    matrix.add_argument(
        "--extended", action="store_true",
        help="also run source phases and evaluate in extended mode")
    matrix.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the per-site planner")
    args = parser.parse_args(argv)
    if args.command == "matrix":
        return _feam_matrix(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _feam_matrix(args) -> int:
    from repro.core.engine import EngineBinary, EvaluationEngine
    from repro.core.feam import Feam
    from repro.sites.catalog import build_paper_sites
    from repro.toolchain.compilers import Language

    print("building the paper's five sites...", file=sys.stderr)
    sites = build_paper_sites(args.seed, cached=False)
    engine = EvaluationEngine(max_workers=args.workers)
    feam = Feam(engine=engine)
    binaries: list[EngineBinary] = []
    bundles = {}
    for index in range(max(1, args.binaries)):
        site = sites[index % len(sites)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"app-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
        if args.extended:
            path = f"/home/user/{name}"
            site.machine.fs.write(path, linked.image, mode=0o755)
            bundles[name] = feam.run_source_phase(
                site, path, env=site.env_with_stack(stack))
    print(f"evaluating {len(binaries)} binaries x {len(sites)} sites...",
          file=sys.stderr)
    result = engine.evaluate_matrix(binaries, sites, bundles=bundles or None)
    print(result.render())
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "feam":
        return feam_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the FEAM paper's tables and figures.")
    parser.add_argument(
        "what", nargs="+",
        choices=sorted(_STATIC) + sorted(_EXPERIMENTAL) + ["all"],
        help="which artifact(s) to regenerate")
    parser.add_argument(
        "--seed", type=int, default=20130101,
        help="experiment seed (default: 20130101)")
    args = parser.parse_args(argv)

    wanted = list(args.what)
    if "all" in wanted:
        wanted = sorted(_STATIC) + sorted(_EXPERIMENTAL)

    result: Optional[ExperimentResult] = None
    for what in wanted:
        if what in _STATIC:
            print(_STATIC[what]())
        else:
            if result is None:
                print("running the full evaluation "
                      "(compile matrix + 800+ migrations)...",
                      file=sys.stderr)
                from repro.evaluation.experiment import ExperimentConfig
                result = run_experiment(ExperimentConfig(seed=args.seed))
            print(_EXPERIMENTAL[what](result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
