"""Command-line entry point.

``python -m repro <what>`` regenerates the paper's tables and figures:

* ``table1`` .. ``table4`` -- the paper's Tables I-IV;
* ``intext`` -- the Section VI.C in-text measurements (phase durations,
  bundle sizes, failure breakdown);
* ``fig1`` .. ``fig4`` -- Figures 1-4 (textual);
* ``matrix`` -- per-site-pair migration outcomes (beyond the paper);
* ``effort`` -- the user-effort quantification (the paper's future work);
* ``ablation`` -- the determinant-ablation study;
* ``all`` -- everything (one experiment run is shared).

Everything past the figures requires running the full evaluation (about
half a minute); one run is shared across all requested artifacts.

``python -m repro feam <command>`` (also installed as the ``feam``
console script) drives the framework itself rather than the paper
artifacts:

* ``feam matrix`` -- batch-evaluate a set of binaries against every
  paper site through the cached :class:`~repro.core.engine.\
EvaluationEngine`, printing the readiness grid and cache statistics
  (``--verbose`` adds per-cell cache provenance, ``--trace-out`` writes
  the run's trace as JSONL);
* ``feam trace`` -- run one real evaluation under the observability
  collector and pretty-print the span tree (every determinant check,
  the discovery step and each resolution copy);
* ``feam stats`` -- run a batch evaluation and dump the metrics
  registry (counters, gauges, histogram summaries).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.evaluation import figures, tables
from repro.evaluation.experiment import ExperimentResult, run_experiment

_STATIC = {
    "table1": tables.render_table1,
    "table2": tables.render_table2,
    "fig1": figures.render_figure1,
    "fig2": figures.render_figure2,
    "fig3": figures.render_figure3,
    "fig4": figures.render_figure4,
}

def _render_effort(result: ExperimentResult) -> str:
    from repro.evaluation.effort import render_effort
    return render_effort(result.records)


def _render_ablation(result: ExperimentResult) -> str:
    from repro.evaluation.ablation import (
        determinant_ablation,
        render_determinant_ablation,
    )
    return render_determinant_ablation(
        determinant_ablation(result.records, mode="basic"))


def _render_report(result: ExperimentResult) -> str:
    from repro.evaluation.reportgen import render_markdown_report
    return render_markdown_report(result)


_EXPERIMENTAL = {
    "table3": tables.render_table3,
    "table4": tables.render_table4,
    "intext": tables.render_intext,
    "matrix": tables.render_site_matrix,
    "effort": _render_effort,
    "ablation": _render_ablation,
    "report": _render_report,
}


def feam_main(argv: Optional[list[str]] = None) -> int:
    """The ``feam`` tool: drive the framework (not the paper artifacts)."""
    parser = argparse.ArgumentParser(
        prog="feam",
        description="Drive FEAM: batch readiness evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)
    matrix = sub.add_parser(
        "matrix",
        help="batch-evaluate binaries x sites through the evaluation "
             "engine and print the readiness grid plus cache statistics")
    matrix.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    matrix.add_argument(
        "--binaries", type=int, default=4,
        help="how many test binaries to compile (one per site, "
             "round-robin; default: 4)")
    matrix.add_argument(
        "--extended", action="store_true",
        help="also run source phases and evaluate in extended mode")
    matrix.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the per-site planner")
    matrix.add_argument(
        "--verbose", action="store_true",
        help="also print per-cell cache provenance and non-pass "
             "determinants")
    matrix.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="write the run's observability trace as JSONL")

    trace = sub.add_parser(
        "trace",
        help="run one real evaluation under the observability collector "
             "and pretty-print the span tree")
    trace.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    trace.add_argument(
        "--build-site", default="fir",
        help="site whose toolchain builds the test binary "
             "(default: fir)")
    trace.add_argument(
        "--target-site", default="ranger",
        help="site the binary is migrated to (default: ranger -- a "
             "migration whose resolution stages library copies)")
    trace.add_argument(
        "--stack", default=None, metavar="SLUG",
        help="MPI stack slug at the build site (default: its first)")
    trace.add_argument(
        "--basic", action="store_true",
        help="skip the source phase (basic prediction; no resolution)")
    trace.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="also write the trace as JSONL")

    stats = sub.add_parser(
        "stats",
        help="run a batch evaluation and dump the metrics registry")
    stats.add_argument(
        "--seed", type=int, default=20130101,
        help="world seed (default: 20130101)")
    stats.add_argument(
        "--binaries", type=int, default=4,
        help="how many test binaries to compile (default: 4)")
    stats.add_argument(
        "--extended", action="store_true",
        help="also run source phases and evaluate in extended mode")
    stats.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for the per-site planner")

    args = parser.parse_args(argv)
    if args.command == "matrix":
        return _feam_matrix(args)
    if args.command == "trace":
        return _feam_trace(args)
    if args.command == "stats":
        return _feam_stats(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _build_matrix_inputs(args):
    """Shared ``feam matrix`` / ``feam stats`` setup: sites + binaries."""
    from repro.core.engine import EngineBinary, EvaluationEngine
    from repro.core.feam import Feam
    from repro.sites.catalog import build_paper_sites
    from repro.toolchain.compilers import Language

    print("building the paper's five sites...", file=sys.stderr)
    sites = build_paper_sites(args.seed, cached=False)
    engine = EvaluationEngine(max_workers=args.workers)
    feam = Feam(engine=engine)
    binaries: list[EngineBinary] = []
    bundles = {}
    for index in range(max(1, args.binaries)):
        site = sites[index % len(sites)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"app-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
        if args.extended:
            path = f"/home/user/{name}"
            site.machine.fs.write(path, linked.image, mode=0o755)
            bundles[name] = feam.run_source_phase(
                site, path, env=site.env_with_stack(stack))
    return sites, engine, binaries, bundles


def _feam_matrix(args) -> int:
    from repro import obs

    sites, engine, binaries, bundles = _build_matrix_inputs(args)
    print(f"evaluating {len(binaries)} binaries x {len(sites)} sites...",
          file=sys.stderr)
    if args.trace_out:
        with obs.capture() as collector:
            result = engine.evaluate_matrix(
                binaries, sites, bundles=bundles or None)
        obs.export.write_jsonl(args.trace_out, collector)
        print(f"trace written to {args.trace_out} "
              f"({len(collector.spans)} spans)", file=sys.stderr)
    else:
        result = engine.evaluate_matrix(
            binaries, sites, bundles=bundles or None)
    print(result.render(verbose=args.verbose))
    return 0


def _feam_stats(args) -> int:
    from repro import obs

    sites, engine, binaries, bundles = _build_matrix_inputs(args)
    print(f"evaluating {len(binaries)} binaries x {len(sites)} sites...",
          file=sys.stderr)
    with obs.capture() as collector:
        engine.evaluate_matrix(binaries, sites, bundles=bundles or None)
    print(collector.metrics.render())
    return 0


def _feam_trace(args) -> int:
    from repro import obs
    from repro.core.feam import Feam
    from repro.sites.catalog import build_paper_sites
    from repro.toolchain.compilers import Language

    print("building the paper's five sites...", file=sys.stderr)
    sites = {s.name: s for s in build_paper_sites(args.seed, cached=False)}
    for role, name in (("build", args.build_site),
                       ("target", args.target_site)):
        if name not in sites:
            print(f"unknown {role} site {name!r}; choose from "
                  f"{', '.join(sorted(sites))}", file=sys.stderr)
            return 2
    build_site = sites[args.build_site]
    target = sites[args.target_site]
    if args.stack is not None:
        stack = next((s for s in build_site.stacks
                      if s.spec.slug == args.stack), None)
        if stack is None:
            print(f"no stack {args.stack!r} at {build_site.name}; choose "
                  f"from {', '.join(s.spec.slug for s in build_site.stacks)}",
                  file=sys.stderr)
            return 2
    else:
        stack = build_site.stacks[0]
    name = f"traced-{build_site.name}-{stack.spec.slug}"
    linked = build_site.compile_mpi_program(name, Language.FORTRAN, stack)
    path = f"/home/user/{name}"
    build_site.machine.fs.write(path, linked.image, mode=0o755)

    feam = Feam()
    bundle = None
    if not args.basic:
        print(f"source phase at {build_site.name}...", file=sys.stderr)
        bundle = feam.run_source_phase(
            build_site, path, env=build_site.env_with_stack(stack))
    target.machine.fs.write(path, linked.image, mode=0o755)
    print(f"target phase at {target.name} "
          f"({'basic' if args.basic else 'extended'})...", file=sys.stderr)
    with obs.capture() as collector:
        report = feam.run_target_phase(
            target, binary_path=path, bundle=bundle)
    print(obs.export.render_span_tree(collector.spans))
    print()
    verdict = "READY" if report.ready else "NOT READY"
    print(f"verdict: {verdict} "
          f"({len(collector.spans)} spans, "
          f"{len(collector.events.events)} events)")
    for reason in report.prediction.reasons:
        print(f"  reason: {reason}")
    if args.trace_out:
        obs.export.write_jsonl(args.trace_out, collector)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "feam":
        return feam_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the FEAM paper's tables and figures.")
    parser.add_argument(
        "what", nargs="+",
        choices=sorted(_STATIC) + sorted(_EXPERIMENTAL) + ["all"],
        help="which artifact(s) to regenerate")
    parser.add_argument(
        "--seed", type=int, default=20130101,
        help="experiment seed (default: 20130101)")
    parser.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="write the evaluation run's observability trace as JSONL")
    args = parser.parse_args(argv)

    wanted = list(args.what)
    if "all" in wanted:
        wanted = sorted(_STATIC) + sorted(_EXPERIMENTAL)

    result: Optional[ExperimentResult] = None
    for what in wanted:
        if what in _STATIC:
            print(_STATIC[what]())
        else:
            if result is None:
                print("running the full evaluation "
                      "(compile matrix + 800+ migrations)...",
                      file=sys.stderr)
                from repro import obs
                from repro.evaluation.experiment import ExperimentConfig
                # The experiment always runs traced: the report's
                # observability section and --trace-out read from the
                # collector; the spans cost a few percent of a run that
                # is dominated by simulated compilation and execution.
                with obs.capture() as collector:
                    result = run_experiment(ExperimentConfig(seed=args.seed))
                if args.trace_out:
                    obs.export.write_jsonl(args.trace_out, collector)
                    print(f"trace written to {args.trace_out} "
                          f"({len(collector.spans)} spans)",
                          file=sys.stderr)
            print(_EXPERIMENTAL[what](result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
