"""Adapters exposing the real machine behind the simulation interfaces.

Everything here is **read-only**: mutation methods raise, so FEAM code
paths that would write (staging copies, report files) fail loudly rather
than touching the host.
"""

from __future__ import annotations

import os
import platform
import posixpath
from typing import Callable, Iterator, Optional

from repro.sysmodel.distro import Distro
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import FsError
from repro.sysmodel.loader import DynamicLoader
from repro.tools.toolbox import Toolbox

#: Directory-walk depth cap: the host filesystem is unbounded, and FEAM's
#: search routines only ever need shallow library trees.
MAX_WALK_DEPTH = 6


class HostFilesystem:
    """Read-only view of the real filesystem (virtual-fs interface)."""

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def lexists(self, path: str) -> bool:
        return os.path.lexists(path)

    def is_file(self, path: str) -> bool:
        return os.path.isfile(path)

    def is_dir(self, path: str) -> bool:
        return os.path.isdir(path)

    def is_symlink(self, path: str) -> bool:
        return os.path.islink(path)

    def readlink(self, path: str) -> str:
        try:
            return os.readlink(path)
        except OSError as exc:
            raise FsError(str(exc)) from exc

    def realpath(self, path: str) -> str:
        return os.path.realpath(path)

    def size(self, path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError as exc:
            raise FsError(str(exc)) from exc

    def is_executable(self, path: str) -> bool:
        return os.path.isfile(path) and os.access(path, os.X_OK)

    def read(self, path: str) -> bytes:
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except OSError as exc:
            raise FsError(str(exc)) from exc

    def read_text(self, path: str) -> str:
        return self.read(path).decode("utf-8", errors="replace")

    def listdir(self, path: str) -> list[str]:
        try:
            return sorted(os.listdir(path))
        except OSError as exc:
            raise FsError(str(exc)) from exc

    def walk(self, top: str = "/",
             _depth: int = 0) -> Iterator[tuple[str, list[str], list[str]]]:
        """Depth-capped :func:`os.walk` (permission errors skipped)."""
        if _depth > MAX_WALK_DEPTH:
            return
        try:
            entries = sorted(os.listdir(top))
        except OSError:
            return
        dirs, files = [], []
        for name in entries:
            full = os.path.join(top, name)
            if os.path.isdir(full) and not os.path.islink(full):
                dirs.append(name)
            elif os.path.isfile(full) or os.path.islink(full):
                files.append(name)
        yield top, dirs, files
        for name in dirs:
            yield from self.walk(os.path.join(top, name), _depth + 1)

    def find_files(self, top: str = "/",
                   name_filter: Optional[Callable[[str], bool]] = None,
                   ) -> Iterator[str]:
        for dirpath, _dirs, files in self.walk(top):
            for fname in files:
                if name_filter is None or name_filter(fname):
                    yield posixpath.join(dirpath, fname)

    # -- mutation (refused) -------------------------------------------------------

    def _read_only(self, *args, **kwargs):
        raise FsError("the host filesystem adapter is read-only")

    write = write_text = write_lazy = symlink = chmod = remove = _read_only
    copy_file = install_from = makedirs = _read_only


def _detect_distro(fs: HostFilesystem) -> Distro:
    """A best-effort distro record from the real /etc and /proc files."""
    family, version = "linux", "unknown"
    if fs.is_file("/etc/os-release"):
        fields = {}
        for line in fs.read_text("/etc/os-release").splitlines():
            key, _, value = line.partition("=")
            fields[key.strip()] = value.strip().strip('"')
        family = fields.get("ID", family)
        version = fields.get("VERSION_ID", version)
    kernel = platform.release() or "unknown"
    return Distro(family=family, version=version, kernel_version=kernel,
                  gcc_banner="host toolchain")


class HostMachine:
    """The real machine behind the :class:`~repro.sysmodel.machine.Machine`
    interface FEAM's tools layer consumes.

    The loader attribute is *our* ld.so simulation resolving against the
    real filesystem -- real trusted directories, the real
    ``/etc/ld.so.conf``, real ELF bytes -- which makes its verdicts
    directly comparable with the system's ``ldd``.
    """

    def __init__(self, env: Optional[Environment] = None) -> None:
        self.hostname = platform.node() or "localhost"
        self.arch = platform.machine() or "x86_64"
        self.fs = HostFilesystem()
        self.env = env if env is not None else Environment({
            key: value for key, value in os.environ.items()
            if key in ("PATH", "LD_LIBRARY_PATH")})
        self.distro = _detect_distro(self.fs)
        self.loader = DynamicLoader(self)
        self._elf_cache: dict[str, tuple[int, object]] = {}

    @property
    def isa_support(self):
        from repro.sysmodel.machine import _ARCH_PROFILES
        profile = _ARCH_PROFILES.get(self.arch)
        if profile is None:
            # Unknown host architecture: report an empty profile rather
            # than guessing.
            return ()
        return profile

    def supports_isa(self, machine, elf_class) -> bool:
        return any(s.machine is machine and s.elf_class is elf_class
                   for s in self.isa_support)

    def uname_processor(self) -> str:
        return self.arch

    def uname_machine(self) -> str:
        return self.arch

    def read_elf(self, path: str):
        """Parse (and cache) a real ELF file."""
        from repro.elf.reader import parse_elf
        real = self.fs.realpath(path)
        size = self.fs.size(real)
        cached = self._elf_cache.get(real)
        if cached is not None and cached[0] == size:
            return cached[1]
        elf = parse_elf(self.fs.read(real)).detach()
        self._elf_cache[real] = (size, elf)
        return elf


def host_machine(env: Optional[Environment] = None) -> HostMachine:
    """The current machine as a :class:`HostMachine`."""
    return HostMachine(env=env)


def host_toolbox(env: Optional[Environment] = None) -> Toolbox:
    """A FEAM toolbox over the real machine.

    ``locate`` is disabled (a whole-filesystem walk on a real machine is
    not acceptable); FEAM's documented ``find``-over-common-directories
    fallback engages instead.
    """
    machine = host_machine(env=env)
    available = Toolbox.ALL_TOOLS - frozenset({"locate"})
    return Toolbox(machine, available)
