"""Run FEAM's analysis against the real host machine.

The simulation exists because the paper's five sites do not; but nothing
in FEAM's Binary Description Component or the dynamic-loader model is
simulation-specific.  This package adapts them to the machine the code is
running on:

* :class:`~repro.host.adapter.HostFilesystem` -- a read-only view of the
  real filesystem behind the virtual-filesystem interface;
* :class:`~repro.host.adapter.HostMachine` -- hostname/architecture/
  distro detection over the real ``/proc`` and ``/etc`` files, with our
  loader simulation resolving against the real ``/etc/ld.so.conf`` and
  trusted directories;
* :func:`~repro.host.adapter.host_toolbox` -- a toolbox whose ``objdump``
  / ``readelf`` / ``ldd`` equivalents parse the real ELF bytes on disk.

``examples/describe_host_binary.py`` uses this to produce the paper's
Figure 3 description of any real binary and to cross-check our loader's
resolution against the system's real ``ldd``.
"""

from repro.host.adapter import (
    HostFilesystem,
    HostMachine,
    host_machine,
    host_toolbox,
)

__all__ = [
    "HostFilesystem",
    "HostMachine",
    "host_machine",
    "host_toolbox",
]
