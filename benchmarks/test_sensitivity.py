"""Sensitivity sweeps over the model's free parameters.

The reproduction's stochastic rates are calibrated, not published; these
sweeps establish that the paper's qualitative conclusions hold across a
wide region of the parameter space rather than at a single point.
"""

import pytest

from repro.corpus.benchmarks import Suite
from repro.evaluation.sensitivity import (
    render_sweep,
    sweep_abi_scale,
    sweep_curse,
    sweep_transient,
)


@pytest.fixture(scope="module")
def abi_points():
    return sweep_abi_scale(scales=(0.0, 1.0, 2.0), corpus_size=20)


@pytest.fixture(scope="module")
def curse_points():
    return sweep_curse(rates=(0.0, 0.06, 0.12), corpus_size=20)


def test_abi_sweep_render(abi_points):
    print()
    print(render_sweep(abi_points))


def test_extended_bounded_below_by_curse_exposure(abi_points):
    """A structural asymmetry the sweep exposes: extended mode converts
    not-ready verdicts into ready ones (resolution), and only *ready*
    predictions can be falsified by unpredictable system errors.  With no
    ABI failures at all, extended therefore trails basic by (at most) the
    curse rate; with realistic ABI rates its hello-world probes more than
    pay that back (see the gap test below)."""
    from repro.corpus.builder import CorpusConfig
    curse = CorpusConfig().curse_probability
    for point in abi_points:
        for suite in Suite:
            floor = point.basic_accuracy[suite] - curse[suite] - 0.05
            assert point.extended_accuracy[suite] >= floor, (point, suite)


def test_extended_beats_basic_at_realistic_abi_rates(abi_points):
    """At the calibrated rate (scale 1.0) and above, extended wins."""
    for point in abi_points:
        if point.value < 1.0:
            continue
        for suite in Suite:
            assert (point.extended_accuracy[suite]
                    >= point.basic_accuracy[suite] - 0.02), (point, suite)


def test_more_abi_failures_widen_the_extended_gap(abi_points):
    """Basic accuracy falls as ABI failures rise (it cannot see them);
    extended accuracy stays roughly flat."""
    def gap(point):
        return sum((point.extended_accuracy[s] or 0)
                   - (point.basic_accuracy[s] or 0) for s in Suite)
    assert gap(abi_points[-1]) >= gap(abi_points[0]) - 1e-9


def test_curse_sweep_render(curse_points):
    print()
    print(render_sweep(curse_points))


def test_extended_accuracy_tracks_curse_rate(curse_points):
    """System errors are the unpredictable failure class: extended
    accuracy ~ 1 - curse rate, and is near-perfect with none."""
    no_curse = curse_points[0]
    for suite in Suite:
        assert no_curse.extended_accuracy[suite] >= 0.97
    heavy = curse_points[-1]
    for suite in Suite:
        assert heavy.extended_accuracy[suite] >= 1 - 0.12 - 0.08


def test_transient_faults_absorbed_by_retries():
    """The paper's five spaced attempts absorb transient faults: success
    rates barely move between 0% and 10% per-attempt transients."""
    points = sweep_transient(rates=(0.0, 0.10), corpus_size=15)
    print()
    print(render_sweep(points))
    clean, noisy = points
    for suite in Suite:
        assert abs((clean.after_success[suite] or 0)
                   - (noisy.after_success[suite] or 0)) < 0.12
