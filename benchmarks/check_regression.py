"""Regression gate: current bench numbers vs the committed baseline.

``make bench-matrix`` writes ``BENCH_matrix.json`` (and appends to the
tracked ``benchmarks/BENCH_history.jsonl``); this script compares it
against ``benchmarks/BENCH_baseline.json`` and exits **3** when the
gate trips, so CI can tell a perf regression apart from an ordinary
failure (1) or an SLO violation (2):

* *shape* numbers (cells, binaries, sites, cache hit/miss tallies)
  must match **exactly** -- a drift there is a behavioural change
  masquerading as a perf number;
* *timing* numbers (cold/warm/traced seconds) may grow up to
  ``--tolerance`` (default 25%) before failing; shrinking beyond the
  tolerance is reported as a note suggesting a baseline refresh;
* the *warm speedup* (cache efficacy) may not fall below
  ``(1 - tolerance)`` of the baseline;
* *clean-run* counters (``faults_injected``, ``retries``) must be
  zero -- the benchmark installs no fault plan, so any firing of the
  resilience path poisons the timings.

Optionally (``--trace trace.jsonl --profile-out flame.json``) it also
aggregates a trace into a flame profile artifact via
:mod:`repro.obs.analyze`, for CI to upload next to the SLO report.
With ``--ledger DIR`` a tripped gate additionally prints a ``feam
compare``-style report over the two newest bench runs in that run
ledger, so the failure comes with attribution instead of bare ratios
(requires ``PYTHONPATH=src``, like ``--trace``).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \\
        [--baseline benchmarks/BENCH_baseline.json] \\
        [--current BENCH_matrix.json] [--tolerance 0.25] \\
        [--trace trace.jsonl --profile-out flame_profile.json]
"""

from __future__ import annotations

import argparse
import json
import sys

EXIT_OK = 0
EXIT_FAILURE = 1      # missing/unreadable inputs
EXIT_REGRESSION = 3   # the gate tripped (matches ``feam diff-trace``)

#: Must match exactly between baseline and current.
SHAPE_KEYS = ("cells", "binaries", "sites", "seed")
#: May grow up to ``tolerance`` relative to the baseline.
TIMING_KEYS = ("cold_seconds", "warm_seconds", "reference_seconds",
               "traced_seconds")
#: Must be zero in the no-fault benchmark run (baseline-independent):
#: a nonzero count means the resilience path fired without a fault
#: plan installed, so the warm timings measure retries, not the cache.
CLEAN_RUN_KEYS = ("faults_injected", "retries")


def compare(baseline: dict, current: dict,
            tolerance: float = 0.25) -> tuple[list[str], list[str]]:
    """Return (failures, notes) for *current* against *baseline*."""
    failures: list[str] = []
    notes: list[str] = []

    for key in SHAPE_KEYS:
        if baseline.get(key) != current.get(key):
            failures.append(
                f"{key}: baseline {baseline.get(key)!r} != "
                f"current {current.get(key)!r} (shape must not drift)")
    base_cache = baseline.get("cache", {})
    curr_cache = current.get("cache", {})
    for key in sorted(set(base_cache) | set(curr_cache)):
        if base_cache.get(key) != curr_cache.get(key):
            failures.append(
                f"cache.{key}: baseline {base_cache.get(key)!r} != "
                f"current {curr_cache.get(key)!r} "
                f"(cache behaviour changed)")

    for key in TIMING_KEYS:
        base = baseline.get(key)
        curr = current.get(key)
        if base is None or curr is None:
            failures.append(f"{key}: missing "
                            f"(baseline={base!r}, current={curr!r})")
            continue
        if base <= 0:
            notes.append(f"{key}: baseline is {base!r}, skipped")
            continue
        ratio = curr / base
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{key}: {base:.4f}s -> {curr:.4f}s "
                f"({ratio:.2f}x > {1.0 + tolerance:.2f}x allowed)")
        elif ratio < 1.0 - tolerance:
            notes.append(
                f"{key}: {base:.4f}s -> {curr:.4f}s ({ratio:.2f}x) -- "
                f"faster than the baseline tolerance; consider "
                f"refreshing benchmarks/BENCH_baseline.json")

    for key in CLEAN_RUN_KEYS:
        value = current.get(key, 0)
        if value:
            failures.append(
                f"{key}: {value} in a no-fault benchmark run "
                f"(resilience fired; timings are not comparable)")

    base_speedup = baseline.get("warm_speedup")
    curr_speedup = current.get("warm_speedup")
    if base_speedup and curr_speedup:
        if curr_speedup < base_speedup * (1.0 - tolerance):
            failures.append(
                f"warm_speedup: {base_speedup}x -> {curr_speedup}x "
                f"(cache efficacy fell beyond {tolerance:.0%})")
    elif base_speedup and not curr_speedup:
        failures.append("warm_speedup: missing from current run")

    return failures, notes


def attribute_from_ledger(ledger_dir: str) -> str | None:
    """Compare the two newest bench runs in the ledger, for triage.

    Returns the rendered ``feam compare``-style report, or ``None``
    when the ledger holds fewer than two bench-kind runs (or cannot be
    read).  Purely advisory: the gate verdict above stands either way.
    """
    from repro.obs.compare import compare_runs, render_comparison
    from repro.obs.ledger import RunLedger

    try:
        runs = RunLedger(ledger_dir).runs()
    except (OSError, ValueError):
        return None
    benches = [run for run in runs
               if str(run.get("kind", "")).endswith("bench")]
    if len(benches) < 2:
        return None
    return render_comparison(compare_runs(benches[-2], benches[-1]))


def emit_profile(trace_path: str, out_path: str) -> None:
    """Aggregate *trace_path* into a flame-profile JSON artifact."""
    from repro.obs.analyze import profile, spans_from_jsonl_file

    prof = profile(spans_from_jsonl_file(trace_path))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(prof.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"flame profile ({prof.span_count} spans, "
          f"{len(prof.frames)} names) -> {out_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_matrix.json against the committed "
                    "baseline (exit 3 on regression).")
    parser.add_argument("--baseline",
                        default="benchmarks/BENCH_baseline.json")
    parser.add_argument("--current", default="BENCH_matrix.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative timing growth "
                             "(default: 0.25)")
    parser.add_argument("--trace", default=None, metavar="FILE.jsonl",
                        help="also aggregate this trace into a flame "
                             "profile artifact")
    parser.add_argument("--profile-out", default="flame_profile.json",
                        metavar="FILE.json",
                        help="where --trace writes the profile "
                             "(default: flame_profile.json)")
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="on regression, also print a comparison "
                             "of the two newest bench runs in this "
                             "run-ledger directory for attribution")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline!r}: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE
    try:
        with open(args.current, "r", encoding="utf-8") as handle:
            current = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read current {args.current!r}: {exc} "
              f"(run 'make bench-matrix' first)", file=sys.stderr)
        return EXIT_FAILURE

    failures, notes = compare(baseline, current, args.tolerance)
    for note in notes:
        print(f"note: {note}")
    if args.trace:
        try:
            emit_profile(args.trace, args.profile_out)
        except (OSError, ValueError) as exc:
            print(f"cannot profile trace {args.trace!r}: {exc}",
                  file=sys.stderr)
            return EXIT_FAILURE
    if failures:
        print(f"REGRESSION vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        if args.ledger:
            attribution = attribute_from_ledger(args.ledger)
            if attribution:
                print("\nattribution (two newest bench runs in "
                      f"{args.ledger}):", file=sys.stderr)
                print(attribution, file=sys.stderr)
        return EXIT_REGRESSION
    print(f"perf gate ok vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
