"""Micro-benchmarks of the substrate hot paths.

These are not paper results; they characterise the simulator itself (ELF
serialisation/parsing, loader resolution, execution) so performance
regressions in the substrate are visible.
"""

import pytest

from repro.elf import BinarySpec, parse_elf, write_elf
from repro.toolchain.compilers import Language


@pytest.fixture(scope="module")
def spec():
    return BinarySpec(
        needed=("libmpi.so.0", "libopen-rte.so.0", "libopen-pal.so.0",
                "libnsl.so.1", "libutil.so.1", "libgfortran.so.1",
                "libm.so.6", "libpthread.so.0", "libc.so.6"),
        version_requirements={
            "libc.so.6": ("GLIBC_2.2.5", "GLIBC_2.3.4"),
            "libgfortran.so.1": ("GFORTRAN_1.0",)},
        comment=("GCC: (GNU) 4.1.2",),
        payload_size=500_000)


def test_write_elf_bench(benchmark, spec):
    image = benchmark(write_elf, spec)
    assert len(image) > 500_000


def test_parse_elf_bench(benchmark, spec):
    image = write_elf(spec)
    elf = benchmark(parse_elf, image)
    assert len(elf.dynamic.needed) == 9


def test_loader_resolve_bench(benchmark, paper_sites):
    fir = next(s for s in paper_sites if s.name == "fir")
    stack = fir.find_stack("openmpi-1.4-intel")
    app = fir.compile_mpi_program("loader-bench", Language.FORTRAN, stack)
    env = fir.env_with_stack(stack)

    report = benchmark(fir.machine.loader.resolve, app.image, env)
    assert report.ok


def test_execution_bench(benchmark, paper_sites):
    india = next(s for s in paper_sites if s.name == "india")
    stack = india.find_stack("openmpi-1.4-gnu")
    app = india.compile_mpi_program("exec-bench", Language.C, stack)
    env = india.env_with_stack(stack)

    from repro.mpi.runtime import RunRequest
    result = benchmark(
        india.simulator.run,
        RunRequest(binary=app.image, stack=stack, env=env))
    assert result.ok or result.failure is not None


def test_compile_bench(benchmark, paper_sites):
    forge = next(s for s in paper_sites if s.name == "forge")
    stack = forge.find_stack("openmpi-1.4-gnu")

    linked = benchmark(forge.compile_mpi_program, "compile-bench",
                       Language.FORTRAN, stack)
    assert linked.size > 0


def test_bundle_pack_bench(benchmark, paper_sites):
    """Serialization throughput of a full source-phase bundle."""
    from repro.core import Feam
    from repro.core.bundlefile import pack_bundle, unpack_bundle

    india = next(s for s in paper_sites if s.name == "india")
    stack = india.find_stack("openmpi-1.4-intel")
    app = india.compile_mpi_program("pack-bench", Language.FORTRAN, stack)
    india.machine.fs.write("/home/user/pack-bench", app.image, mode=0o755)
    bundle = Feam().run_source_phase(
        india, "/home/user/pack-bench", env=india.env_with_stack(stack))

    archive = benchmark(pack_bundle, bundle)
    restored = unpack_bundle(archive)
    assert restored.copied_count == bundle.copied_count


def test_symbol_parse_bench(benchmark):
    """Parse throughput of a symbol-heavy library image."""
    from repro.elf.structs import DynamicSymbol

    from repro.elf.constants import ElfType

    spec = BinarySpec(
        etype=ElfType.DYN,
        soname="libbig.so.1",
        version_definitions=("libbig.so.1",) + tuple(
            f"BIG_{i}.0" for i in range(1, 20)),
        symbols=tuple(DynamicSymbol(f"big_fn_{i}", True,
                                    f"BIG_{1 + i % 19}.0")
                      for i in range(400)),
        payload_size=100_000)
    image = write_elf(spec)

    elf = benchmark(parse_elf, image)
    assert len(elf.symbols) == 400
