"""The CI persist gate: prove the crash-safe cache contract.

Four clauses, run against one shared ``--cache-dir``:

1. **warm start** -- a second *fresh-process* paper matrix against the
   same cache directory must serve >= 90% of its evaluation cells from
   the persistent store and spend at least ``--speedup``x less wall
   time inside ``evaluate_matrix`` than the cold run that filled it.
   Fresh processes matter: an in-process rerun would be served by the
   ``ShardedMap`` memory tier and prove nothing about the disk.
2. **byte identity** -- the warm run's rendered matrix (grid, summary,
   outcomes; everything except the run-shape ``cache:`` stats line)
   must be byte-identical to the cold run's.  A cache that changes
   answers is worse than no cache.
3. **quarantine** -- after a mid-file evaluation record is byte-flipped,
   the next fresh-process run must quarantine it (counted in
   ``persist.cache.quarantined``), recompute the cell, and still render
   the identical matrix.  Poison degrades to work, never to wrong.
4. **fsck** -- ``feam cache verify`` must exit nonzero on the corrupted
   store and 0 again after ``feam cache compact`` rewrites it.

Cold, warm and poisoned runs each happen in a worker subprocess (this
script re-executes itself with ``--worker``), so every run crosses a
real process boundary exactly like consecutive CI jobs or developer
sessions would.

Exit codes: 0 ok, 1 contract violation, 3 speedup budget blown.
Artifact: ``persist_gate.json``, uploaded by the ``persist-gate`` job.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time

SEED = 20130101

EXIT_OK = 0
EXIT_FAILURE = 1      # persistence contract violated
EXIT_REGRESSION = 3   # warm speedup budget blown


# -- worker: one fresh-process matrix run ------------------------------------------


def run_worker(cache_dir: str, out_path: str) -> int:
    from repro import obs
    from repro.core.engine import EngineBinary, EvaluationEngine
    from repro.core.persist import PersistentStore
    from repro.sites.generator import resolve_sites
    from repro.toolchain.compilers import Language

    sites = resolve_sites("paper", default_seed=SEED)
    binaries = []
    for index in range(4):
        site = sites[index % len(sites)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"gate-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))

    engine = EvaluationEngine(persist=PersistentStore(cache_dir))
    with obs.capture() as collector:
        started = time.perf_counter()
        result = engine.evaluate_matrix(binaries, sites)
        wall = time.perf_counter() - started
        engine.close()
    counters = collector.metrics.to_dict()["counters"]
    payload = {
        "wall_seconds": wall,
        "cells": len(result.cells),
        "rendered": result.render(),
        "outcomes": [cell.outcome_word for cell in result.cells],
        "stats": {
            "evaluation_hits": engine.stats.evaluation_hits,
            "evaluation_misses": engine.stats.evaluation_misses,
            "discovery_hits": engine.stats.discovery_hits,
            "description_hits": engine.stats.description_hits,
        },
        "counters": {key: value for key, value in counters.items()
                     if key.startswith("persist.")},
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return 0


# -- parent: orchestrate fresh processes -------------------------------------------


def _spawn(kind: str, cache_dir: str, workdir: str) -> dict:
    """Run one worker in a fresh interpreter; return its report."""
    out_path = os.path.join(workdir, f"persist_worker_{kind}.json")
    env = dict(os.environ)
    env.pop("FEAM_CACHE_DIR", None)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker",
         "--cache-dir", cache_dir, "--worker-out", out_path],
        env=env, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        raise RuntimeError(f"{kind} worker failed "
                           f"(exit {proc.returncode}):\n{proc.stderr}")
    with open(out_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _feam_cache(verb: str, cache_dir: str) -> int:
    env = dict(os.environ)
    env.pop("FEAM_CACHE_DIR", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "feam", "cache", verb,
         "--cache-dir", cache_dir],
        env=env, capture_output=True, text=True, timeout=120)
    return proc.returncode


def _grid(rendered: str) -> list[str]:
    """The rendered matrix minus its run-varying ``cache:`` line."""
    return [line for line in rendered.splitlines()
            if not line.startswith("cache:")]


def _flip_midfile_record(cache_dir: str) -> bool:
    """Corrupt the first evaluation record in place (not the tail)."""
    path = os.path.join(cache_dir, "evaluation.jsonl")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if len(lines) < 2:
        return False
    lines[0] = lines[0].replace('"payload"', '"pwnload"', 1)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return True


def run_gate(cache_dir: str, report_out: str, speedup: float,
             min_hit_rate: float) -> int:
    failures: list[str] = []
    workdir = os.path.dirname(os.path.abspath(report_out)) or "."
    shutil.rmtree(cache_dir, ignore_errors=True)

    cold = _spawn("cold", cache_dir, workdir)
    warm = _spawn("warm", cache_dir, workdir)

    # 1. Warm start: hit rate and wall-time speedup.
    cells = warm["cells"]
    hit_rate = warm["stats"]["evaluation_hits"] / max(1, cells)
    if hit_rate < min_hit_rate:
        failures.append(
            f"warm start: evaluation hit rate {hit_rate:.2f} < "
            f"{min_hit_rate:.2f} "
            f"({warm['stats']['evaluation_hits']}/{cells} cells)")
    achieved = cold["wall_seconds"] / max(warm["wall_seconds"], 1e-9)
    blown = achieved < speedup

    # 2. Byte identity, warm vs cold.
    if _grid(warm["rendered"]) != _grid(cold["rendered"]):
        failures.append("byte identity: warm rendered matrix differs "
                        "from the cold run's")

    # 3 + 4. Poison the store: fsck flags it, the run shrugs it off.
    if not _flip_midfile_record(cache_dir):
        failures.append("quarantine: store too small to corrupt "
                        "mid-file")
    verify_corrupt = _feam_cache("verify", cache_dir)
    if verify_corrupt == 0:
        failures.append("fsck: feam cache verify exited 0 on a "
                        "corrupted store")

    poisoned = _spawn("poisoned", cache_dir, workdir)
    quarantined = poisoned["counters"].get("persist.cache.quarantined",
                                           0)
    if quarantined < 1:
        failures.append("quarantine: poisoned run quarantined nothing")
    if _grid(poisoned["rendered"]) != _grid(cold["rendered"]):
        failures.append("quarantine: poisoned run's rendered matrix "
                        "differs from the cold run's")
    if poisoned["outcomes"] != cold["outcomes"]:
        failures.append("quarantine: poisoned run changed cell "
                        "outcomes")

    compact_exit = _feam_cache("compact", cache_dir)
    if compact_exit != 0:
        failures.append(f"fsck: feam cache compact exited "
                        f"{compact_exit}")
    verify_clean = _feam_cache("verify", cache_dir)
    if verify_clean != 0:
        failures.append(f"fsck: feam cache verify exited "
                        f"{verify_clean} after compact, want 0")

    payload = {
        "seed": SEED,
        "cache_dir": cache_dir,
        "cells": cells,
        "cold": {"wall_seconds": round(cold["wall_seconds"], 4),
                 "stats": cold["stats"]},
        "warm": {"wall_seconds": round(warm["wall_seconds"], 4),
                 "stats": warm["stats"],
                 "hit_rate": round(hit_rate, 4),
                 "speedup": round(achieved, 2),
                 "speedup_budget": speedup,
                 "grid_identical":
                     _grid(warm["rendered"]) == _grid(cold["rendered"])},
        "poisoned": {"quarantined": quarantined,
                     "counters": poisoned["counters"],
                     "outcomes_identical":
                         poisoned["outcomes"] == cold["outcomes"]},
        "fsck": {"verify_corrupt_exit": verify_corrupt,
                 "compact_exit": compact_exit,
                 "verify_clean_exit": verify_clean},
        "failures": failures,
    }
    with open(report_out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"persist gate: warm hit rate {hit_rate:.2f}, speedup "
          f"x{achieved:.1f} (budget x{speedup:.1f}), quarantined "
          f"{quarantined}, fsck {verify_corrupt}->{verify_clean}  "
          f"-> {report_out}")
    for failure in failures:
        print(f"PERSIST GATE: {failure}")
    if failures:
        return EXIT_FAILURE
    if blown:
        print(f"PERSIST GATE: warm run only x{achieved:.1f} faster "
              f"than cold (budget x{speedup:.1f})")
        return EXIT_REGRESSION
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate the persistent-cache durability contract.")
    parser.add_argument("--cache-dir", default=".ci-persist-cache",
                        help="cache directory (wiped at start)")
    parser.add_argument("--report-out", default="persist_gate.json",
                        help="gate report artifact path")
    parser.add_argument("--speedup", type=float, default=5.0,
                        help="required cold/warm evaluate_matrix wall "
                             "ratio (default: 5.0)")
    parser.add_argument("--min-hit-rate", type=float, default=0.9,
                        help="required warm evaluation hit rate "
                             "(default: 0.9)")
    parser.add_argument("--worker", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--worker-out", default="",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.worker:
        return run_worker(args.cache_dir, args.worker_out)
    return run_gate(args.cache_dir, args.report_out, args.speedup,
                    args.min_hit_rate)


if __name__ == "__main__":
    raise SystemExit(main())
