"""Table IV: impact of the resolution model.

Prints the regenerated table (measured vs paper) and benchmarks the
resolution-metric computation and a live resolution pass.
"""

from repro.corpus.benchmarks import Suite
from repro.evaluation.metrics import resolution_table
from repro.evaluation.tables import PAPER_TABLE4, render_table4


def test_table4_render_and_shape(experiment_result):
    print()
    print(render_table4(experiment_result))
    table = resolution_table(experiment_result.records)
    for suite in Suite:
        measured = table[suite]
        paper = PAPER_TABLE4[suite]
        assert measured["after"] > measured["before"]
        # Same regime as the paper: within ~10 points on the rates and the
        # increase lands in the "about a third more" band.
        assert abs(measured["before"] - paper["before"]) < 0.11
        assert abs(measured["after"] - paper["after"]) < 0.11
        assert 0.20 <= measured["increase"] <= 0.55


def test_resolution_metric_bench(benchmark, experiment_result):
    table = benchmark(resolution_table, experiment_result.records)
    assert set(table) == set(Suite)


def test_live_resolution_bench(benchmark, paper_sites):
    """Latency of resolving one binary's missing libraries from a bundle."""
    from repro.core import Feam
    from repro.core.discovery import EnvironmentDiscoveryComponent
    from repro.core.resolution import ResolutionModel
    from repro.toolchain.compilers import Language

    by_name = {s.name: s for s in paper_sites}
    ranger, india = by_name["ranger"], by_name["india"]
    stack = ranger.find_stack("mvapich2-1.2-gnu")
    app = ranger.compile_mpi_program("res-bench", Language.C, stack)
    ranger.machine.fs.write("/home/user/res-bench", app.image, mode=0o755)
    feam = Feam()
    bundle = feam.run_source_phase(ranger, "/home/user/res-bench",
                                   env=ranger.env_with_stack(stack))
    edc = EnvironmentDiscoveryComponent(india.toolbox())
    environment = edc.discover()
    resolver = ResolutionModel(india.toolbox(), environment)
    target_stack = india.find_stack("mvapich2-1.7a2-gnu")
    env = india.env_with_stack(target_stack)
    missing, _ = edc.missing_libraries(bundle.description, env)
    assert missing  # the 1.2-era libmpich soname

    def resolve():
        return resolver.resolve(missing, bundle, env.copy(),
                                "/home/user/stage-bench")

    plan = benchmark(resolve)
    print(f"\nresolved {len(plan.staged)}/{len(plan.decisions)} "
          f"missing libraries, staged {plan.staged_bytes / 1e6:.1f} MB")
