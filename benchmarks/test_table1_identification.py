"""Table I: MPI-implementation identification.

Regenerates the identification table and benchmarks the Table I scheme
over the full test set, asserting the paper's "100% accurate at assessing
whether a matching MPI implementation was available".
"""

from repro.core.description import identify_mpi_implementation
from repro.elf import describe_elf
from repro.evaluation.tables import render_table1


def test_table1_render():
    print()
    print(render_table1())


def test_identification_bench(benchmark, experiment_result):
    corpus = experiment_result.corpus
    needed_lists = [describe_elf(b.image).needed for b in corpus.binaries]
    expected = [b.stack_spec.kind.value for b in corpus.binaries]

    def identify_all():
        return [identify_mpi_implementation(needed)
                for needed in needed_lists]

    identified = benchmark(identify_all)
    correct = sum(1 for got, want in zip(identified, expected)
                  if got == want)
    accuracy = correct / len(expected)
    print(f"\nMPI identification accuracy over "
          f"{len(expected)} binaries: {accuracy:.1%}")
    assert accuracy == 1.0
