"""The CI telemetry gate: prove the wide-event/sampling contract.

Runs a generated fleet matrix twice -- once bare (the reference), once
under the full telemetry overlay (observability collector, wide-event
sink, tail-based span sampler) -- and asserts the overlay's contract:

1. **completeness** -- exactly one wide event per matrix cell (the
   evaluated, journal-restored and worker-failure paths all emit);
2. **sampling budget** -- span trees survive only for the cells the
   policy elects; the kept count must equal a from-scratch replay of
   the deterministic policy over the emitted events AND stay within
   ``--span-budget``, and the counters must add up
   (``kept + dropped == cells``);
3. **overhead** -- the telemetry run's wall time stays within
   ``--overhead-tolerance`` of the bare reference;
4. **consistency** -- a ``feam query``-equivalent aggregation over the
   wide events reproduces the matrix's own per-outcome cell counts;
5. **ledger overhead** -- recording the run manifest into the run
   ledger (which every ``feam matrix`` now does) must cost less than
   ``--ledger-budget-seconds``: the durable history may not tax the
   hot path.

Artifacts: the raw ``wide_events.jsonl`` stream and a
``telemetry_gate.json`` payload embedding the query summary, both
uploaded by the ``telemetry-gate`` CI job.

Exit codes mirror ``emit_bench.py``: 0 ok, 1 contract violation,
3 overhead budget blown.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro import obs
from repro.core.engine import EngineBinary, EvaluationEngine, run_rollup
from repro.obs import ledger as ledger_mod
from repro.obs.sampling import SamplingPolicy
from repro.obs.store import Aggregation, WhereClause, run_query
from repro.obs.wide import WideEventSink, read_jsonl
from repro.sites.generator import resolve_sites
from repro.toolchain.compilers import Language

SEED = 20130101

EXIT_OK = 0
EXIT_FAILURE = 1      # telemetry contract violated
EXIT_REGRESSION = 3   # overhead tolerance blown

#: The sampler's latency-SLO clause reads the wall clock; the gate pins
#: it unreachably high so the kept set stays fully deterministic.
_NO_SLO = 1e9


def _compile_binaries(sites, count: int):
    binaries = []
    pool = sites[:max(1, min(len(sites), count))]
    for index in range(count):
        site = pool[index % len(pool)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"gate-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    return binaries


def run_gate(spec: str, binaries_count: int, head_n: int,
             wide_out: str, report_out: str,
             span_budget: int | None,
             overhead_tolerance: float,
             ledger_budget_seconds: float = 0.25) -> int:
    sites = resolve_sites(spec, default_seed=SEED)
    binaries = _compile_binaries(sites, binaries_count)
    failures: list[str] = []

    # Untimed warmup: the first matrix of the process pays one-time
    # import/JIT-warmup costs that would otherwise inflate whichever
    # timed side ran first (emit_bench.py learned this the hard way).
    EvaluationEngine().evaluate_matrix(binaries, sites)

    # Bare reference: fresh engine, no collector, no sink.
    start = time.perf_counter()
    reference_result = EvaluationEngine().evaluate_matrix(binaries, sites)
    reference = time.perf_counter() - start

    # Telemetry run: fresh engine under the full overlay.  The sink
    # appends (journal semantics); the gate wants this run only.
    if os.path.exists(wide_out):
        os.unlink(wide_out)
    policy = SamplingPolicy(seed=SEED, head_n=head_n,
                            latency_slo_seconds=_NO_SLO)
    sink = WideEventSink(path=wide_out)
    with obs.capture() as collector:
        start = time.perf_counter()
        result = EvaluationEngine().evaluate_matrix(
            binaries, sites, wide_sink=sink, sampler=policy)
        telemetry = time.perf_counter() - start
    sink.close()

    cells = len(result.cells)
    events = read_jsonl(wide_out)

    # 1. Completeness: one wide event per cell, on disk and in counters.
    counters = collector.metrics.to_dict()["counters"]
    if len(events) != cells:
        failures.append(f"completeness: {len(events)} wide event(s) "
                        f"for {cells} cell(s)")
    if counters.get("obs.wide.emitted") != cells:
        failures.append(f"completeness: obs.wide.emitted = "
                        f"{counters.get('obs.wide.emitted')} != {cells}")

    # 2. Sampling budget: counters add up, the kept set matches a
    # deterministic replay of the policy, and spans survive only for
    # kept cells.
    kept = counters.get("obs.sampling.kept", 0)
    dropped = counters.get("obs.sampling.dropped", 0)
    if kept + dropped != cells:
        failures.append(f"sampling: kept {kept} + dropped {dropped} "
                        f"!= {cells} cells")
    expected_kept = sum(
        1 for event in events
        if policy.decide(event["site"], event["binary"],
                         event["outcome"], event["faulted"]).keep)
    if kept != expected_kept:
        failures.append(f"sampling: kept {kept} != policy replay "
                        f"{expected_kept}")
    cell_spans = sum(1 for span in collector.spans
                     if span.name == "engine.cell")
    if cell_spans != kept:
        failures.append(f"sampling: {cell_spans} engine.cell span(s) "
                        f"survived for {kept} kept cell(s)")
    budget = span_budget if span_budget is not None \
        else max(1, cells // 5)
    if kept > budget:
        failures.append(f"sampling: kept {kept} > span budget {budget}")

    # 4. Consistency: the store's aggregation over the wide events must
    # reproduce the matrix's own per-outcome counts (the renderer and
    # the query path must never disagree about how many cells degraded).
    by_outcome = run_query(events, by="outcome",
                           aggs=[Aggregation(fn="count")], top=10)
    queried = {group: size for group, _values, size in by_outcome.rows}
    for word in ("ready", "unknown", "no"):
        matrix_count = sum(1 for cell in result.cells
                           if cell.outcome_word == word)
        if queried.get(word, 0) != matrix_count:
            failures.append(f"consistency: query counts "
                            f"{queried.get(word, 0)} {word!r} cell(s), "
                            f"matrix has {matrix_count}")
    unknown_by_site = run_query(
        events, where=[WhereClause("outcome", "=", "unknown")],
        by="site", aggs=[Aggregation(fn="count")], top=20)

    # 3. Overhead (checked last so contract failures surface first).
    overhead = (telemetry / reference - 1.0) if reference > 0 else 0.0
    blown = overhead > overhead_tolerance

    # 5. Ledger write overhead: distilling the rollup and appending the
    # manifest is what every `feam matrix` run now pays; it must stay a
    # rounding error next to the matrix itself.
    directory = (os.environ.get("FEAM_LEDGER_DIR")
                 or ledger_mod.DEFAULT_DIR)
    manifest = {
        "kind": "telemetry-gate",
        "seed": SEED,
        "sites_spec": spec,
        "binaries": len(binaries),
    }
    start = time.perf_counter()
    manifest.update(run_rollup(result,
                               snapshot=collector.metrics.to_dict(),
                               wide_events=events))
    try:
        ledger_mod.RunLedger(directory).record(manifest)
        ledger_write = time.perf_counter() - start
    except OSError as exc:
        ledger_write = None
        failures.append(f"ledger: could not record run in "
                        f"{directory!r}: {exc}")
    if ledger_write is not None and ledger_write > ledger_budget_seconds:
        failures.append(f"ledger: rollup + record took "
                        f"{ledger_write:.3f}s > budget "
                        f"{ledger_budget_seconds:.3f}s")

    payload = {
        "spec": spec,
        "seed": SEED,
        "sites": len(sites),
        "binaries": len(binaries),
        "cells": cells,
        "wide_events": len(events),
        "sampling": {
            "head_n": head_n,
            "kept": kept,
            "dropped": dropped,
            "expected_kept": expected_kept,
            "span_budget": budget,
            "surviving_cell_spans": cell_spans,
        },
        "reference_seconds": round(reference, 4),
        "telemetry_seconds": round(telemetry, 4),
        "overhead": round(overhead, 4),
        "overhead_tolerance": overhead_tolerance,
        "ledger_write_seconds": (round(ledger_write, 4)
                                 if ledger_write is not None else None),
        "ledger_budget_seconds": ledger_budget_seconds,
        "reference_cells": len(reference_result.cells),
        "query_summary": {
            "by_outcome": by_outcome.to_dict(),
            "unknown_by_site": unknown_by_site.to_dict(),
        },
        "failures": failures,
    }
    with open(report_out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    ledger_note = (f"{ledger_write:.3f}s" if ledger_write is not None
                   else "failed")
    print(f"telemetry gate: {cells} cells, {len(events)} wide events, "
          f"kept {kept}/{cells} span tree(s) (budget {budget}), "
          f"overhead {overhead:+.1%} (tolerance "
          f"{overhead_tolerance:.0%}), ledger write {ledger_note}"
          f"  -> {report_out}")
    for failure in failures:
        print(f"TELEMETRY GATE: {failure}")
    if failures:
        return EXIT_FAILURE
    if blown:
        print(f"TELEMETRY GATE: overhead {overhead:+.1%} > "
              f"tolerance {overhead_tolerance:.0%} "
              f"(reference {reference:.2f}s, telemetry {telemetry:.2f}s)")
        return EXIT_REGRESSION
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate the wide-event/sampling telemetry contract.")
    parser.add_argument("--fleet", default="fleet:n=250,seed=7",
                        metavar="SPEC",
                        help="fleet spec (default: fleet:n=250,seed=7)")
    parser.add_argument("--binaries", type=int, default=4,
                        help="test binaries to compile (default: 4)")
    parser.add_argument("--head-n", type=int, default=25,
                        help="keep a seeded 1-in-N head sample "
                             "(default: 25)")
    parser.add_argument("--wide-out", default="wide_events.jsonl",
                        help="wide-event artifact path")
    parser.add_argument("--report-out", default="telemetry_gate.json",
                        help="gate report artifact path")
    parser.add_argument("--span-budget", type=int, default=None,
                        help="max kept span trees (default: cells / 5)")
    parser.add_argument("--overhead-tolerance", type=float, default=0.5,
                        help="max telemetry overhead vs the bare "
                             "reference run (default: 0.5 = +50%%)")
    parser.add_argument("--ledger-budget-seconds", type=float,
                        default=0.25,
                        help="max wall seconds for distilling and "
                             "recording the run-ledger manifest "
                             "(default: 0.25)")
    args = parser.parse_args(argv)
    return run_gate(args.fleet, args.binaries, args.head_n,
                    args.wide_out, args.report_out, args.span_budget,
                    args.overhead_tolerance,
                    args.ledger_budget_seconds)


if __name__ == "__main__":
    raise SystemExit(main())
