"""Resolution-depth ablation (DESIGN.md design-choice study).

How deep must the recursive copy-usability analysis recurse?  Reruns a
reduced experiment at increasing ``max_resolution_depth`` limits.
"""

import pytest

from repro.corpus.benchmarks import Suite
from repro.evaluation.ablation import (
    render_depth_ablation,
    resolution_depth_ablation,
)


@pytest.fixture(scope="module")
def depth_rows():
    return resolution_depth_ablation(depths=(0, 1, 2, 8), corpus_size=25)


def test_depth_ablation_render(depth_rows):
    print()
    print(render_depth_ablation(depth_rows))


def test_deeper_resolution_never_hurts(depth_rows):
    """Success after resolution is monotone in the depth limit."""
    for suite in Suite:
        rates = [row.after_success[suite] for row in depth_rows]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:])), rates


def test_recursion_is_needed(depth_rows):
    """Depth >= 1 stages more copies than depth 0: transitive
    dependencies (e.g. libifcore -> libimf) require recursion."""
    assert depth_rows[-1].staged_total > depth_rows[0].staged_total


def test_shallow_depth_suffices(depth_rows):
    """The paper's library graphs are shallow: depth 2 achieves what
    depth 8 does."""
    assert depth_rows[2].after_success == depth_rows[3].after_success
