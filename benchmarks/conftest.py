"""Shared fixtures for the benchmark harness.

The full Section VI experiment (compile matrix + 800+ migrations) runs
once per session; every table/figure bench reads from it.  Micro-benches
build their own small inputs.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.sites.catalog import build_paper_sites

BENCH_SEED = 20130101


@pytest.fixture(scope="session")
def experiment_result():
    """The full paper evaluation (one run per benchmark session)."""
    return run_experiment(ExperimentConfig(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def paper_sites():
    return build_paper_sites(BENCH_SEED + 1, cached=False)
