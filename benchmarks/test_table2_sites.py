"""Table II: target site characteristics.

Regenerates the site-characteristics table and benchmarks full site
materialisation (filesystem + hundreds of ELF installs).
"""

from repro.evaluation.tables import render_table2
from repro.sites.catalog import PAPER_SITE_SPECS
from repro.sites.site import Site


def test_table2_render():
    print()
    print(render_table2())


def test_site_build_bench(benchmark):
    spec = PAPER_SITE_SPECS[-1]  # fir: the largest (9 stacks)

    site = benchmark(lambda: Site(spec, seed=1))
    assert len(site.stacks) == 9
    # The build populated genuine ELF images.
    assert site.machine.fs.is_file("/opt/openmpi-1.4-intel/lib/libmpi.so.0")


def test_all_sites_build_bench(benchmark):
    def build_all():
        return [Site(spec, seed=2) for spec in PAPER_SITE_SPECS]

    sites = benchmark.pedantic(build_all, rounds=3, iterations=1)
    assert [s.name for s in sites] == [
        "ranger", "forge", "blacklight", "india", "fir"]
